"""Static protocol-table lint — the ``repro lint-protocol`` backend.

Every transition table the simulator can run with is enumerated here (one
per distinct policy-overlay combination, plus the CorePair MOESI and TCC VI
cache tables) and put through the engine's three static checks:

- **unhandled pairs** — ``(state, event)`` combinations neither handled nor
  explicitly declared illegal.  Every pair must be decided: an unhandled
  pair is a protocol hole that would only surface as a runtime
  ``ProtocolError`` on some rare interleaving.
- **unreachable states** — declared states no chain of handled transitions
  can reach from the initial state (stale vocabulary).
- **dead transitions** — handled rows whose source state is unreachable
  (they can never fire).

Shipped tables must be clean on all three; CI runs the lint on every push.
"""

from __future__ import annotations

from repro.coherence.engine import TransitionTable, state_label
from repro.coherence.policies import PRESETS


def shipped_tables() -> dict[str, TransitionTable]:
    """Every distinct transition table reachable from the policy presets.

    Tables are deduplicated by identity (the builders cache per overlay
    combination), so each returned entry is a genuinely distinct table; the
    key names the first preset (or explicit variant) that produces it.
    """
    from repro.coherence.directory import build_directory_table
    from repro.coherence.precise import build_table1
    from repro.cpu.corepair import build_corepair_table
    from repro.gpu.tcc import build_tcc_table

    tables: dict[str, TransitionTable] = {}

    def add(name: str, table: TransitionTable) -> None:
        if not any(existing is table for existing in tables.values()):
            tables[name] = table

    for preset_name, policy in PRESETS.items():
        precise = policy.kind.value != "stateless"
        add(f"fig2[{preset_name}]", build_directory_table(policy, precise=precise))
        if precise:
            add(f"table1[{preset_name}]", build_table1(policy))

    # §VII variants no preset enables by default.
    conservative = PRESETS["sharers"].named(vicdirty_invalidates_sharers=True)
    add("fig2[sharers+conservativeVicDirty]",
        build_directory_table(conservative, precise=True))
    add("table1[sharers+conservativeVicDirty]", build_table1(conservative))
    add("table1[sharers+dmaKeepsDirState]",
        build_table1(PRESETS["sharers"].named(dma_updates_dir_state=False)))

    add("corepair-moesi", build_corepair_table())
    add("tcc-vi", build_tcc_table())
    return tables


def lint_tables(
    tables: dict[str, TransitionTable] | None = None,
) -> tuple[str, bool]:
    """Lint every table; returns ``(report_text, clean)``."""
    if tables is None:
        tables = shipped_tables()
    lines: list[str] = []
    clean = True
    for name, table in tables.items():
        report = table.lint()
        pairs = sum(1 for _ in table.transitions(include_illegal=True))
        status = "OK" if not any(report.values()) else "FAIL"
        if status == "FAIL":
            clean = False
        lines.append(
            f"{status:<5} {name:<36} ({table.name}: "
            f"{len(table.states)} states x {len(table.events)} events, "
            f"{pairs} declared rows)"
        )
        for state, event in report["unhandled"]:
            lines.append(f"        unhandled pair: ({state_label(state)}, {event})")
        for state in report["unreachable"]:
            lines.append(f"        unreachable state: {state_label(state)}")
        for transition in report["dead"]:
            lines.append(
                f"        dead transition: ({state_label(transition.state)}, "
                f"{transition.event})"
            )
    lines.append(
        f"{len(tables)} table variants linted: "
        + ("all clean" if clean else "PROBLEMS FOUND")
    )
    return "\n".join(lines), clean
