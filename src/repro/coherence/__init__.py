"""The system-level directory, LLC, and coherence transaction engine.

This package is the paper's subject matter:

- :mod:`repro.coherence.llc` — the shared last-level cache: a non-inclusive
  *victim* cache, write-through in the baseline (§II-D) or write-back with
  per-line dirty bits under the §III-C optimization.
- :mod:`repro.coherence.policies` — the :class:`DirectoryPolicy` record
  holding every §III/§IV knob.
- :mod:`repro.coherence.transactions` — in-flight transaction state
  mirroring the blocked states of Figure 2.
- :mod:`repro.coherence.directory` — the baseline *stateless* directory
  (broadcast probes on every request).
- :mod:`repro.coherence.precise` — the §IV precise state-tracking directory
  (Table I): owner tracking, optional full-map or limited-pointer sharer
  tracking, directory-as-a-cache with back-invalidation on eviction.
"""

from repro.coherence.directory import DirectoryController
from repro.coherence.llc import LastLevelCache
from repro.coherence.policies import DirectoryKind, DirectoryPolicy
from repro.coherence.precise import PreciseDirectory
from repro.coherence.transactions import Transaction

__all__ = [
    "DirectoryController",
    "DirectoryKind",
    "DirectoryPolicy",
    "LastLevelCache",
    "PreciseDirectory",
    "Transaction",
]
