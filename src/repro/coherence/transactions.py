"""In-flight directory transaction state.

One transaction per line at a time; further requests to the line queue
behind it.  The ``_PM`` / ``_Pm`` / ``_M`` blocked states of Figure 2 map
onto the combination of :attr:`pending_acks` (P), :attr:`mem_outstanding`
(M), and :attr:`awaiting_unblock`.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.mem.block import LineData

if TYPE_CHECKING:
    from repro.protocol.messages import Message

_tid_counter = itertools.count()


class Transaction:
    """One coherence transaction at the system-level directory."""

    __slots__ = (
        "tid",
        "addr",
        "request",
        "fsm",
        "pending_acks",
        "mem_outstanding",
        "dirty_data",
        "any_copy_acked",
        "responded",
        "awaiting_unblock",
        "on_all_acks",
        "on_complete",
        "started_at",
        "is_eviction",
        "needs_data",
        "read_issued",
        "data_ready",
        "fetched_data",
        "prior_state",
        "victim_ack_sources",
        "partial_updates",
    )

    def __init__(self, request: "Message", is_eviction: bool = False) -> None:
        self.tid = next(_tid_counter)
        self.addr = request.addr
        self.request = request
        #: per-transaction ProtocolFSM over the directory's Figure-2 table;
        #: installed by the directory when the transaction starts.
        self.fsm = None
        self.pending_acks = 0
        self.mem_outstanding = False
        #: dirty data collected from a probe ack (the most recent wins —
        #: only one dirty owner can exist, so at most one ack carries data).
        self.dirty_data: LineData | None = None
        #: did any probed cache report holding a copy (denies Exclusive)?
        self.any_copy_acked = False
        self.responded = False
        self.awaiting_unblock = False
        #: hook run once when the last probe ack arrives.
        self.on_all_acks: Callable[[], None] | None = None
        #: hook run when the transaction fully completes (for state updates).
        self.on_complete: Callable[[], None] | None = None
        self.started_at = 0
        self.is_eviction = is_eviction
        #: does the response require line data?
        self.needs_data = False
        #: has an LLC/memory read been issued for this transaction?
        self.read_issued = False
        #: has the LLC/memory read completed?
        self.data_ready = False
        #: data returned by the LLC or memory (dirty probe data wins over it).
        self.fetched_data: LineData | None = None
        #: directory state of the line when the transaction launched
        #: (recorded by the precise directory for its update rules).
        self.prior_state: object = None
        #: caches whose probe ack was served from a victim buffer — a Vic*
        #: message from them is in flight and may need to be dropped.
        self.victim_ack_sources: set[str] = set()
        #: word-granular dirty data forwarded by probed VI caches (the TCC
        #: forwards only its *modified words*); applied on top of whatever
        #: base data serves the request.
        self.partial_updates: dict[int, int] = {}

    @property
    def blocked_on(self) -> str:
        """A Figure-2-style suffix describing what the transaction awaits."""
        p = "P" if self.pending_acks else ""
        m = "M" if self.mem_outstanding else ""
        u = "U" if self.awaiting_unblock else ""
        return f"B_{p}{m}{u}" if (p or m or u) else "B"

    @property
    def settled(self) -> bool:
        """All probes acked, memory quiet, and any required unblock seen."""
        return (
            self.pending_acks == 0
            and not self.mem_outstanding
            and not self.awaiting_unblock
        )

    def __repr__(self) -> str:
        return (
            f"Transaction(tid={self.tid}, addr={self.addr:#x}, "
            f"{self.request.mtype.value}, state={self.blocked_on})"
        )
