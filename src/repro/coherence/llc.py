"""The shared last-level cache.

The LLC is owned by the directory controller ("the directory at the system
level is backed by the LLC", §II-A); it is not a separately-networked
controller, so its access latency is charged by the directory.

It is a *victim* cache — it fills only on victim write-backs from L2s (and
on GPU write-throughs/atomics when ``useL3OnWT``), never on the refill path
from memory (§II-D).  It is therefore non-inclusive.  In the baseline it is
write-through: every LLC write is mirrored to memory by the directory.  The
§III-C optimization makes it write-back: a per-line dirty bit defers the
memory write to the LLC's own eviction of that line.
"""

from __future__ import annotations

from typing import Callable

from repro.mem.block import LineData
from repro.mem.cache_array import CacheArray
from repro.mem.replacement import ReplacementPolicy, TreePLRU
from repro.sim.stats import StatGroup


class EvictedLine:
    """A detached copy of an LLC line displaced by a victim write."""

    __slots__ = ("addr", "data", "dirty")

    def __init__(self, addr: int, data: LineData, dirty: bool) -> None:
        self.addr = addr
        self.data = data
        self.dirty = dirty

    def __repr__(self) -> str:
        return f"EvictedLine(addr={self.addr:#x}, dirty={self.dirty})"


class LastLevelCache:
    """Functional LLC model: storage, dirty bits, and hit/miss accounting.

    All methods are zero-time; the directory schedules its configured LLC
    access latency around the calls.
    """

    def __init__(
        self,
        size_bytes: int = 16 * 2**20,
        assoc: int = 16,
        writeback: bool = False,
        latency_cycles: float = 20.0,
        repl: Callable[[int], ReplacementPolicy] = TreePLRU,
    ) -> None:
        self.array = CacheArray.from_geometry(size_bytes, assoc, repl=repl)
        self.writeback = writeback
        self.latency_cycles = latency_cycles
        self.stats = StatGroup("llc")
        #: optional ProtocolTrace sink (the LLC is passive — no transition
        #: table — so tracing records accesses, not state transitions)
        self.trace = None
        self._trace_sim = None
        self._trace_name = "llc"

    # -- tracing ---------------------------------------------------------------

    def attach_trace(self, trace, sim, name: str) -> None:
        """Record this slice's accesses into a ProtocolTrace ring buffer."""
        self.trace = trace
        self._trace_sim = sim
        self._trace_name = name

    def _record(self, event: str, addr: int, detail: str) -> None:
        self.trace.record(self._trace_sim.now, self._trace_name, event, addr, detail)

    # -- read path ----------------------------------------------------------

    def read(self, addr: int) -> tuple[bool, LineData | None]:
        """Lookup for a directory read.  Misses never allocate (victim cache)."""
        line = self.array.lookup(addr)
        if line is None:
            self.stats.inc("read_misses")
            if self.trace is not None:
                self._record("LlcRead", addr, "miss")
            return False, None
        self.stats.inc("read_hits")
        if self.trace is not None:
            self._record("LlcRead", addr, "hit")
        return True, line.data

    # -- fill paths ----------------------------------------------------------

    def write_victim(
        self, addr: int, data: LineData, dirty: bool
    ) -> EvictedLine | None:
        """Install or update a victim from an L2.

        ``dirty`` says whether the victim was dirty w.r.t. memory.  In
        write-back mode the line's dirty bit is *sticky*: a later clean
        victim (e.g. an E line refilled from this same LLC line) must not
        clear it, since memory is still stale.  Returns the displaced dirty
        line needing a memory write-back, if any.
        """
        self.stats.inc("victim_writes")
        if self.trace is not None:
            self._record("LlcVictim", addr, "dirty" if dirty else "clean")
        existing = self.array.lookup(addr)
        if existing is not None:
            existing.data = data
            if self.writeback:
                existing.dirty = existing.dirty or dirty
            return None
        line, evicted = self.array.install(
            addr, state="V", data=data, dirty=dirty if self.writeback else False
        )
        del line
        return self._handle_eviction(evicted)

    def write_through(self, addr: int, data: LineData, dirty: bool) -> EvictedLine | None:
        """Install or update from a GPU write-through/atomic (``useL3OnWT``).

        ``dirty`` is True when the directory will *not* also write memory
        (write-back LLC), so this LLC copy becomes the only current one.
        """
        self.stats.inc("wt_writes")
        if self.trace is not None:
            self._record("LlcWT", addr, "dirty" if dirty else "clean")
        existing = self.array.lookup(addr)
        if existing is not None:
            existing.data = data
            if self.writeback:
                existing.dirty = existing.dirty or dirty
            else:
                existing.dirty = False
            return None
        line, evicted = self.array.install(
            addr, state="V", data=data, dirty=dirty if self.writeback else False
        )
        del line
        return self._handle_eviction(evicted)

    def apply_words(self, addr: int, updates: dict[int, int], dirty: bool) -> bool:
        """Apply a partial-line write to an existing LLC line.

        Returns True on hit.  Never allocates (a partial write cannot build
        a whole line).
        """
        existing = self.array.lookup(addr)
        if existing is None:
            return False
        data = existing.data
        for index, value in updates.items():
            data = data.with_word(index, value)
        existing.data = data
        if self.writeback:
            existing.dirty = existing.dirty or dirty
        self.stats.inc("wt_writes")
        return True

    def update_in_place(self, addr: int, data: LineData, dirty: bool) -> bool:
        """Update the line only if present (used for atomics that hit).

        Returns True on hit.  Never allocates, never evicts.
        """
        existing = self.array.lookup(addr)
        if existing is None:
            return False
        existing.data = data
        if self.writeback:
            existing.dirty = existing.dirty or dirty
        return True

    def invalidate(self, addr: int) -> EvictedLine | None:
        """Drop ``addr`` if present; returns the copy if it was dirty."""
        snapshot = self.array.invalidate(addr)
        if snapshot is None:
            return None
        self.stats.inc("invalidations")
        if self.trace is not None:
            self._record("LlcInval", addr, "dirty" if snapshot.dirty else "clean")
        if snapshot.dirty:
            return EvictedLine(snapshot.addr, snapshot.data, True)
        return None

    def _handle_eviction(self, evicted) -> EvictedLine | None:
        if evicted is None:
            return None
        self.stats.inc("evictions")
        if evicted.dirty:
            self.stats.inc("dirty_evictions")
            return EvictedLine(evicted.addr, evicted.data, True)
        return None

    # -- introspection -------------------------------------------------------

    def holds(self, addr: int) -> bool:
        return self.array.lookup(addr, touch=False) is not None

    def is_dirty(self, addr: int) -> bool:
        line = self.array.lookup(addr, touch=False)
        return bool(line is not None and line.dirty)

    def peek(self, addr: int) -> LineData | None:
        line = self.array.lookup(addr, touch=False)
        return None if line is None else line.data
