"""Tracking entries for the precise directory.

An entry records the owner (the cache whose copy may be M/O/E) and the
sharers.  Two tracking granularities exist, matching §IV of the paper:

- **owner tracking** (§IV-A): sharer *identities* are not kept, only a
  count, so invalidations to shared lines must broadcast.  The count lets
  the directory retire entries when the last sharer's VicClean arrives.
- **sharer tracking** (§IV-B): a full-map set of sharer names (or a
  limited-pointer set with an overflow flag, Table I footnote b), enabling
  multicast invalidations and back-invalidations.
"""

from __future__ import annotations


class DirEntry:
    """Owner/sharer bookkeeping attached to a directory-cache line."""

    __slots__ = ("owner", "sharers", "sharer_count", "overflow", "_pointer_limit")

    def __init__(self, track_identities: bool, pointer_limit: int | None = None) -> None:
        self.owner: str | None = None
        #: sharer identities, or None under owner-only tracking
        self.sharers: set[str] | None = set() if track_identities else None
        self.sharer_count = 0
        #: limited-pointer overflow: untracked sharers exist, so
        #: invalidations must broadcast (footnote b of Table I).
        self.overflow = False
        self._pointer_limit = pointer_limit if track_identities else None

    def add_sharer(self, name: str) -> None:
        self.sharer_count += 1
        if self.sharers is None:
            return
        if name in self.sharers:
            self.sharer_count -= 1  # already tracked; count follows the set
            return
        if self._pointer_limit is not None and len(self.sharers) >= self._pointer_limit:
            self.overflow = True
            return
        self.sharers.add(name)

    def remove_sharer(self, name: str) -> None:
        if self.sharers is not None and not self.overflow:
            # exact tracking: the count mirrors the set, so removing a
            # name that was never tracked must not drift the count
            if name in self.sharers:
                self.sharers.discard(name)
                self.sharer_count -= 1
            return
        # owner-only or overflowed tracking: identities are (partially)
        # unknown, so decrement conservatively
        if self.sharers is not None:
            self.sharers.discard(name)
        if self.sharer_count > 0:
            self.sharer_count -= 1

    def clear_sharers(self) -> None:
        if self.sharers is not None:
            self.sharers.clear()
        self.sharer_count = 0
        self.overflow = False

    def is_sharer(self, name: str) -> bool:
        """Conservatively: is ``name`` possibly a sharer?"""
        if self.sharers is None or self.overflow:
            return self.sharer_count > 0
        return name in self.sharers

    @property
    def tracks_identities(self) -> bool:
        return self.sharers is not None

    @property
    def multicast_possible(self) -> bool:
        """Can invalidations be narrowed to a tracked sharer list?"""
        return self.sharers is not None and not self.overflow

    def __repr__(self) -> str:
        who = sorted(self.sharers) if self.sharers is not None else f"~{self.sharer_count}"
        flags = "+overflow" if self.overflow else ""
        return f"DirEntry(owner={self.owner}, sharers={who}{flags})"
