"""Tracking entries for the precise directory.

An entry records the owner (the cache whose copy may be M/O/E) and the
sharers.  Two tracking granularities exist, matching §IV of the paper:

- **owner tracking** (§IV-A): sharer *identities* are not kept, only a
  count, so invalidations to shared lines must broadcast.  The count lets
  the directory retire entries when the last sharer's VicClean arrives.
- **sharer tracking** (§IV-B): a full-map set of sharer names (or a
  limited-pointer set with an overflow flag, Table I footnote b), enabling
  multicast invalidations and back-invalidations.

Storage: entry state lives in struct-of-arrays planes inside a
:class:`DirEntryStore` — parallel ``owner`` / ``sharers`` /
``sharer_count`` / ``overflow`` lists indexed by an integer slot — and a
:class:`DirEntry` is a slim view over one slot, so directories hold one
plane set instead of one bag-of-attributes object per tracked line.
Standalone ``DirEntry(...)`` construction (tests, tools) transparently
allocates from a private single-entry store.  Store slots are recycled
through a free list by :meth:`DirEntryStore.release`; the per-slot sharer
``set`` objects are kept and cleared rather than reallocated.
"""

from __future__ import annotations


class DirEntryStore:
    """Struct-of-arrays backing for a directory's tracking entries."""

    __slots__ = (
        "track_identities", "pointer_limit",
        "owner", "sharers", "sharer_count", "overflow",
        "_free", "_views",
    )

    def __init__(
        self,
        capacity: int = 0,
        track_identities: bool = True,
        pointer_limit: int | None = None,
    ) -> None:
        self.track_identities = track_identities
        self.pointer_limit = pointer_limit if track_identities else None
        # entry planes, indexed by slot
        self.owner: list[str | None] = []
        self.sharers: list[set[str] | None] = []
        self.sharer_count: list[int] = []
        self.overflow: list[bool] = []
        self._free: list[int] = []
        self._views: list["DirEntry"] = []
        for _ in range(capacity):
            self._grow()

    def _grow(self) -> int:
        slot = len(self.owner)
        self.owner.append(None)
        self.sharers.append(set() if self.track_identities else None)
        self.sharer_count.append(0)
        self.overflow.append(False)
        self._views.append(DirEntry._over(self, slot))
        self._free.append(slot)
        return slot

    def alloc(self) -> "DirEntry":
        """A cleared entry view; grows the planes when the store is full."""
        free = self._free
        if not free:
            self._grow()
        slot = free.pop()
        return self._views[slot]

    def release(self, entry: "DirEntry") -> None:
        """Return ``entry``'s slot to the free list, scrubbing its planes.

        Only entries of this store may be released; releasing is the
        caller's assertion that no live reference will touch the entry
        again (detached cache-line snapshots that merely carry it are
        fine — the precise directory never reads those).
        """
        if entry._store is not self:
            raise ValueError("entry does not belong to this store")
        slot = entry._slot
        self.owner[slot] = None
        shared = self.sharers[slot]
        if shared is not None:
            shared.clear()
        self.sharer_count[slot] = 0
        self.overflow[slot] = False
        self._free.append(slot)

    def __len__(self) -> int:
        return len(self.owner) - len(self._free)


class DirEntry:
    """Owner/sharer bookkeeping attached to a directory-cache line.

    A view over one :class:`DirEntryStore` slot; the constructor keeps the
    historical standalone form by allocating a fresh single-entry store.
    """

    __slots__ = ("_store", "_slot")

    def __init__(self, track_identities: bool, pointer_limit: int | None = None) -> None:
        store = DirEntryStore(
            capacity=1,
            track_identities=track_identities,
            pointer_limit=pointer_limit,
        )
        store._free.clear()
        self._store = store
        self._slot = 0
        # the store built its own view; rebind it so both resolve here
        store._views[0] = self

    @classmethod
    def _over(cls, store: DirEntryStore, slot: int) -> "DirEntry":
        view = cls.__new__(cls)
        view._store = store
        view._slot = slot
        return view

    # -- plane accessors ---------------------------------------------------

    @property
    def owner(self) -> str | None:
        return self._store.owner[self._slot]

    @owner.setter
    def owner(self, value: str | None) -> None:
        self._store.owner[self._slot] = value

    @property
    def sharers(self) -> set[str] | None:
        """Sharer identities, or None under owner-only tracking."""
        return self._store.sharers[self._slot]

    @property
    def sharer_count(self) -> int:
        return self._store.sharer_count[self._slot]

    @sharer_count.setter
    def sharer_count(self, value: int) -> None:
        self._store.sharer_count[self._slot] = value

    @property
    def overflow(self) -> bool:
        """Limited-pointer overflow: untracked sharers exist, so
        invalidations must broadcast (footnote b of Table I)."""
        return self._store.overflow[self._slot]

    @overflow.setter
    def overflow(self, value: bool) -> None:
        self._store.overflow[self._slot] = value

    @property
    def _pointer_limit(self) -> int | None:
        return self._store.pointer_limit

    # -- sharer bookkeeping ------------------------------------------------

    def add_sharer(self, name: str) -> None:
        store = self._store
        slot = self._slot
        store.sharer_count[slot] += 1
        shared = store.sharers[slot]
        if shared is None:
            return
        if name in shared:
            store.sharer_count[slot] -= 1  # already tracked; count follows the set
            return
        limit = store.pointer_limit
        if limit is not None and len(shared) >= limit:
            store.overflow[slot] = True
            return
        shared.add(name)

    def remove_sharer(self, name: str) -> None:
        store = self._store
        slot = self._slot
        shared = store.sharers[slot]
        if shared is not None and not store.overflow[slot]:
            # exact tracking: the count mirrors the set, so removing a
            # name that was never tracked must not drift the count
            if name in shared:
                shared.discard(name)
                store.sharer_count[slot] -= 1
            return
        # owner-only or overflowed tracking: identities are (partially)
        # unknown, so decrement conservatively
        if shared is not None:
            shared.discard(name)
        if store.sharer_count[slot] > 0:
            store.sharer_count[slot] -= 1

    def clear_sharers(self) -> None:
        store = self._store
        slot = self._slot
        shared = store.sharers[slot]
        if shared is not None:
            shared.clear()
        store.sharer_count[slot] = 0
        store.overflow[slot] = False

    def is_sharer(self, name: str) -> bool:
        """Conservatively: is ``name`` possibly a sharer?"""
        store = self._store
        slot = self._slot
        shared = store.sharers[slot]
        if shared is None or store.overflow[slot]:
            return store.sharer_count[slot] > 0
        return name in shared

    @property
    def tracks_identities(self) -> bool:
        return self._store.sharers[self._slot] is not None

    @property
    def multicast_possible(self) -> bool:
        """Can invalidations be narrowed to a tracked sharer list?"""
        slot = self._slot
        return self._store.sharers[slot] is not None and not self._store.overflow[slot]

    def __repr__(self) -> str:
        shared = self.sharers
        who = sorted(shared) if shared is not None else f"~{self.sharer_count}"
        flags = "+overflow" if self.overflow else ""
        return f"DirEntry(owner={self.owner}, sharers={who}{flags})"
