"""The system-level directory controller — baseline (stateless) version.

This implements the §II-D baseline of the paper: a *stateless* directory
that, on every permission request, broadcasts probes to the CorePair L2s
(and the TCC for write-permission requests, footnote 4) while reading the
LLC/memory in parallel, and only responds once **all** probe acks and the
data response have returned (Figure 2's ``*_PM`` states).  Victims write
both the LLC and memory (write-through LLC).

The per-transaction state machine is *declared* as a
:class:`~repro.coherence.engine.TransitionTable` over Figure 2's states —
``U`` plus the blocked states named by what the transaction still awaits
(``B``, ``B_P``, ``B_M``, ``B_PM``, and their ``..U`` unblock variants; see
:attr:`~repro.coherence.transactions.Transaction.blocked_on`).  Every
protocol event dispatches through the transaction's
:class:`~repro.coherence.engine.ProtocolFSM`, which enforces that the state
reached matches the declared table (see ``repro lint-protocol``).

The §III optimizations are policy knobs
(:class:`~repro.coherence.policies.DirectoryPolicy`) expressed as *table
overlays* by :func:`build_directory_table`:

- ``early_dirty_response`` (§III-A) adds the ``B_PU``/``B_PMU`` states —
  responded while probes are still outstanding — reachable only under this
  overlay.
- ``clean_victims_to_memory=False`` (§III-B), ``clean_victims_to_llc=False``
  (§III-B1) and ``llc_writeback`` (§III-C) swap the action bound to the
  victim-commit transition ``(B, Commit)``.
- ``use_l3_on_wt`` routes GPU write-throughs/atomics into the LLC (an
  action-level knob inside the WT/Atomic commit helpers).

The §IV precise directory subclasses this engine and overrides the
*planning* hooks (:meth:`plan_request`, :meth:`grant_state`,
:meth:`accept_victim`, :meth:`update_state_after_response`,
:meth:`prepare_entry`) — the transaction machinery is shared.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.coherence.engine import ProtocolError, ProtocolFSM, TransitionTable
from repro.coherence.llc import LastLevelCache
from repro.coherence.policies import DirectoryPolicy
from repro.coherence.transactions import Transaction
from repro.mem.block import LineData
from repro.mem.main_memory import MainMemory
from repro.protocol.atomics import apply_atomic
from repro.protocol.messages import Message
from repro.protocol.types import MoesiState, MsgType, ProbeType, RequesterKind
from repro.sim.clock import ClockDomain
from repro.sim.component import Controller

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network

__all__ = [
    "DirectoryController", "ProtocolError", "RequestPlan",
    "build_directory_table",
    "EV_LAUNCH", "EV_LLC_DATA", "EV_MEM_DATA", "EV_PROBE_ACK", "EV_UNBLOCK",
    "EV_COMMIT", "EV_DIR_EVICT", "REQUEST_EVENTS",
]


def _apply_words(data: LineData, updates: dict[int, int] | None) -> LineData:
    if updates:
        for index, value in updates.items():
            data = data.with_word(index, value)
    return data


@dataclass
class RequestPlan:
    """What a request needs before the directory can respond."""

    probe_targets: list[str] = field(default_factory=list)
    probe_type: ProbeType | None = None
    #: does the response require line data (reads, RdBlkM fills, atomics)?
    needs_data: bool = False
    #: issue the LLC/memory read immediately, in parallel with probes
    #: (the baseline always does; the precise directory defers it in O
    #: state, expecting the owner's dirty data to make it unnecessary).
    read_data_now: bool = False
    #: probe the requester too (normally excluded).  Needed when the
    #: requester does not allocate the result — a TCC system-scope atomic
    #: drops its own copy on issue, but a fill racing in behind the
    #: request would otherwise survive as a stale copy the precise
    #: directory, having dropped its tracking, can never invalidate.
    probe_requester: bool = False


#: request types whose response carries line data
_DATA_REQUESTS = frozenset(
    {MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM, MsgType.DMA_RD, MsgType.ATOMIC}
)

# -- Figure 2 events ---------------------------------------------------------

#: the ten fabric request types, by their MsgType value
REQUEST_EVENTS = tuple(
    m.value for m in (
        MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM,
        MsgType.VIC_DIRTY, MsgType.VIC_CLEAN,
        MsgType.WT, MsgType.ATOMIC, MsgType.FLUSH,
        MsgType.DMA_RD, MsgType.DMA_WR,
    )
)
EV_LAUNCH = "Launch"        #: directory pipeline latency elapsed
EV_LLC_DATA = "LlcData"     #: the LLC lookup completed (hit or miss)
EV_MEM_DATA = "MemData"     #: the memory read returned
EV_PROBE_ACK = MsgType.PROBE_ACK.value
EV_UNBLOCK = MsgType.UNBLOCK.value
EV_COMMIT = "Commit"        #: a victim write reached its LLC commit point
EV_DIR_EVICT = "DirEvict"   #: precise only: a directory-entry eviction begins

_BLOCKED_BASE = ("B", "B_P", "B_M", "B_U", "B_PM", "B_MU")
_BLOCKED_EARLY = ("B_PU", "B_PMU")

OVL_EARLY = "earlyDirtyResp (§III-A)"
OVL_NO_CLEAN_MEM = "noWBcleanVic (§III-B)"
OVL_DROP_CLEAN = "noCleanVicToLLC (§III-B1)"
OVL_LLC_WB = "llcWB (§III-C)"
OVL_CONSERVATIVE_VIC = "conservative VicDirty (§VII)"


class DirectoryController(Controller):
    """Baseline stateless system-level directory backed by the LLC."""

    kind_name = "dir"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        llc: LastLevelCache,
        memory: MainMemory,
        policy: DirectoryPolicy | None = None,
        latency_cycles: float = 20.0,
        service_cycles: float = 2.0,
    ) -> None:
        super().__init__(sim, name, clock, service_cycles=service_cycles)
        self.network = network
        self.llc = llc
        self.memory = memory
        self.policy = policy or DirectoryPolicy()
        self.latency_cycles = latency_cycles
        self.fsm_table = build_directory_table(self.policy, precise=False)
        self._active: dict[int, Transaction] = {}
        self._waiting: dict[int, deque[Message]] = {}
        #: per line: caches whose next Vic* must be dropped because a
        #: system-level write already consumed (superseded) its data via a
        #: probe ack out of the victim buffer.
        self._stale_victims: dict[int, set[str]] = {}
        #: admission queue when dir_max_transactions (the TBE count) is hit
        self._admission: deque[Message] = deque()
        self._l2_names: list[str] | None = None
        self._tcc_names: list[str] | None = None

    def fsm_tables(self):
        """The declared tables this controller dispatches through."""
        return (self.fsm_table,)

    # -- peers ----------------------------------------------------------------

    @property
    def l2_names(self) -> list[str]:
        if self._l2_names is None:
            self._l2_names = sorted(self.network.endpoints_of_kind("l2"))
        return self._l2_names

    @property
    def tcc_names(self) -> list[str]:
        if self._tcc_names is None:
            self._tcc_names = sorted(self.network.endpoints_of_kind("tcc"))
        return self._tcc_names

    def all_cache_names(self) -> list[str]:
        return self.l2_names + self.tcc_names

    # -- FSM plumbing ----------------------------------------------------------

    def _fig2_next(self, txn: Transaction) -> str:
        """Derive the Figure-2 state a transaction is in right now."""
        if self._active.get(txn.addr) is not txn:
            return "U"
        return txn.blocked_on

    # -- message dispatch ------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MsgType.PROBE_ACK:
            self._on_probe_ack(msg)
        elif msg.mtype is MsgType.UNBLOCK:
            self._on_unblock(msg)
        elif msg.mtype.is_request:
            self._accept_request(msg)
        else:
            raise ProtocolError(f"directory received unexpected {msg!r}")

    def _accept_request(self, msg: Message) -> None:
        self.stats.inc("requests")
        self.stats.inc(f"requests.{msg.mtype.value}")
        txn = self._active.get(msg.addr)
        if txn is not None:
            txn.fsm.fire(msg.mtype.value, self, msg.addr, msg)
            return
        limit = self.policy.dir_max_transactions
        if limit is not None and len(self._active) >= limit:
            # out of transaction buffers (TBEs): stall at admission, before
            # any per-line state machine exists
            self.stats.inc("admission_stalls")
            self._admission.append(msg)
            return
        self._start(msg)

    def _start(self, msg: Message) -> None:
        txn = Transaction(msg)
        txn.started_at = self.now
        txn.fsm = ProtocolFSM(self.fsm_table, "U")
        self._active[msg.addr] = txn
        txn.fsm.fire(msg.mtype.value, self, msg.addr, txn)

    def _act_start_request(self, txn: Transaction) -> None:
        self.schedule(self.latency_cycles, self._launch, arg=txn)
        return None  # single declared next: B

    def _act_queue_request(self, msg: Message) -> None:
        self.stats.inc("requests_queued")
        self._waiting.setdefault(msg.addr, deque()).append(msg)
        return None  # stays in the current blocked state

    # -- transaction launch ------------------------------------------------------

    def _launch(self, txn: Transaction) -> None:
        txn.fsm.fire(EV_LAUNCH, self, txn.addr, txn)

    def _act_launch(self, txn: Transaction) -> str:
        if not self.prepare_entry(txn):
            # parked (or retrying); the entry-eviction path will relaunch us
            return self._fig2_next(txn)
        mtype = txn.request.mtype
        if mtype.is_victim:
            self._handle_victim(txn)
        elif mtype is MsgType.FLUSH:
            self._handle_flush(txn)
        else:
            self._handle_permission(txn)
        return self._fig2_next(txn)

    def relaunch(self, txn: Transaction) -> None:
        """Re-fire ``Launch`` after an entry eviction made space."""
        self._launch(txn)

    def _handle_permission(self, txn: Transaction) -> None:
        plan = self.plan_request(txn)
        txn.needs_data = plan.needs_data
        targets = list(plan.probe_targets) if plan.probe_requester else [
            t for t in plan.probe_targets if t != txn.request.requester
        ]
        if targets:
            if plan.probe_type is None:
                raise ProtocolError(f"probe targets without a probe type for {txn!r}")
            self._send_probes(txn, targets, plan.probe_type)
        if plan.needs_data and plan.read_data_now:
            self._read_llc_then_memory(txn)
        self._maybe_finish_permission(txn)

    def _send_probes(self, txn: Transaction, targets: list[str], ptype: ProbeType) -> None:
        txn.pending_acks += len(targets)
        self.stats.inc("probes_sent", len(targets))
        self.stats.inc(
            "probes_sent.inv" if ptype is ProbeType.INVALIDATE else "probes_sent.down",
            len(targets),
        )
        for target in targets:
            self.network.send(Message.probe(self.name, target, txn.addr, ptype, txn.tid))

    # -- data fetch (LLC backed by memory) ----------------------------------------

    def _read_llc_then_memory(self, txn: Transaction) -> None:
        txn.read_issued = True
        self.schedule(self.llc.latency_cycles, self._fire_llc_data, arg=txn)

    def _fire_llc_data(self, txn: Transaction) -> None:
        txn.fsm.fire(EV_LLC_DATA, self, txn.addr, txn)

    def _act_llc_data(self, txn: Transaction) -> str:
        hit, data = self.llc.read(txn.addr)
        if hit:
            txn.fetched_data = data
            txn.data_ready = True
            self._maybe_finish_permission(txn)
            return self._fig2_next(txn)
        txn.mem_outstanding = True
        self._mem_read(
            txn.addr, lambda mem_data: self._on_mem_data(txn, mem_data),
            source=txn.request.requester,
        )
        return self._fig2_next(txn)

    def _on_mem_data(self, txn: Transaction, data: LineData) -> None:
        txn.fsm.fire(EV_MEM_DATA, self, txn.addr, (txn, data))

    def _act_mem_data(self, ctx: tuple) -> str:
        txn, data = ctx
        txn.mem_outstanding = False
        if not txn.data_ready:
            txn.fetched_data = data
            txn.data_ready = True
        self._maybe_finish_permission(txn)
        self._maybe_complete(txn)
        return self._fig2_next(txn)

    def _mem_read(
        self, addr: int, callback: Callable[[LineData], None],
        source: str | None = None,
    ) -> None:
        self.stats.inc("mem_reads")
        self.memory.read(addr, callback, source=source or self.name)

    def _mem_write(
        self, addr: int, data: LineData, source: str | None = None
    ) -> None:
        self.stats.inc("mem_writes")
        self.memory.write(addr, data, source=source or self.name)

    # -- probe acks / unblocks ------------------------------------------------------

    def _on_probe_ack(self, msg: Message) -> None:
        txn = self._active.get(msg.addr)
        if txn is None or msg.tid != txn.tid:
            raise ProtocolError(f"orphan probe ack {msg!r}")
        txn.fsm.fire(EV_PROBE_ACK, self, msg.addr, (txn, msg))

    def _act_probe_ack(self, ctx: tuple) -> str:
        txn, msg = ctx
        txn.pending_acks -= 1
        if msg.had_copy:
            txn.any_copy_acked = True
        if msg.from_victim:
            txn.victim_ack_sources.add(msg.src)
        if msg.dirty and msg.data is not None:
            if txn.dirty_data is not None:
                raise ProtocolError(f"two dirty probe acks for {txn!r}")
            txn.dirty_data = msg.data
        if msg.word_updates:
            # word-granular dirty forwarding (WB-mode TCC/TCP probes)
            txn.partial_updates.update(msg.word_updates)
        if txn.pending_acks == 0 and txn.on_all_acks is not None:
            hook, txn.on_all_acks = txn.on_all_acks, None
            hook()
            return self._fig2_next(txn)
        self._maybe_finish_permission(txn)
        self._maybe_complete(txn)
        return self._fig2_next(txn)

    def _on_unblock(self, msg: Message) -> None:
        txn = self._active.get(msg.addr)
        if txn is None or msg.tid != txn.tid:
            raise ProtocolError(f"orphan unblock {msg!r}")
        txn.fsm.fire(EV_UNBLOCK, self, msg.addr, txn)

    def _act_unblock(self, txn: Transaction) -> str:
        txn.awaiting_unblock = False
        self._maybe_complete(txn)
        return self._fig2_next(txn)

    # -- permission completion -------------------------------------------------------

    def _maybe_finish_permission(self, txn: Transaction) -> None:
        if txn.responded or txn.is_eviction:
            return
        mtype = txn.request.mtype
        if mtype.is_victim or mtype is MsgType.FLUSH:
            return
        # §III-A: early response from the first dirty ack, downgrades only.
        if (
            self.policy.early_dirty_response
            and mtype.is_read_permission
            and txn.dirty_data is not None
        ):
            self.stats.inc("early_dirty_responses")
            self._respond(txn)
            return
        if txn.pending_acks > 0:
            return
        if txn.needs_data and txn.dirty_data is None and not txn.data_ready:
            if not txn.read_issued:
                # Deferred read: the precise directory expected the owner's
                # dirty data but the owner turned out to hold E (clean).
                self.stats.inc("deferred_data_reads")
                self._read_llc_then_memory(txn)
            return
        self._respond(txn)

    def _respond(self, txn: Transaction) -> None:
        txn.responded = True
        req = txn.request
        mtype = req.mtype
        data = txn.dirty_data if txn.dirty_data is not None else txn.fetched_data
        if mtype in (MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM):
            state = self.grant_state(txn)
            if data is None and txn.needs_data:
                raise ProtocolError(f"responding without data for {txn!r}")
            # data may legitimately be None for an elided-read upgrade
            # (RdBlkM from the tracked holder): the requester keeps its copy.
            # Word-granular dirty data forwarded by probed VI caches rides
            # along and is applied by the receiver on top of its base.
            self.network.send(
                Message(
                    MsgType.DATA_RESP, self.name, req.requester, txn.addr,
                    data=data, state=state,
                    word_updates=dict(txn.partial_updates) or None,
                    dirty=txn.dirty_data is not None, tid=txn.tid,
                )
            )
            if req.requester_kind is RequesterKind.CPU_L2:
                txn.awaiting_unblock = True
        elif mtype is MsgType.DMA_RD:
            if data is None:
                raise ProtocolError(f"DMA read without data for {txn!r}")
            data = _apply_words(data, txn.partial_updates)
            resp = Message(MsgType.DMA_RESP, self.name, req.requester, txn.addr,
                           data=data, tid=txn.tid)
            self.network.send(resp)
        elif mtype is MsgType.DMA_WR:
            self._commit_dma_write(txn)
        elif mtype is MsgType.WT:
            self._commit_write_through(txn)
        elif mtype is MsgType.ATOMIC:
            self._commit_atomic(txn, data)
        else:  # pragma: no cover - dispatch is exhaustive
            raise ProtocolError(f"cannot respond to {txn!r}")
        self.update_state_after_response(txn)
        self._maybe_complete(txn)

    def _commit_dma_write(self, txn: Transaction) -> None:
        """DMA writes go to memory and invalidate any LLC copy (the paper:
        DMA accesses do not update the L3)."""
        req = txn.request
        if req.data is None:
            raise ProtocolError(f"DMA write without data: {req!r}")
        self._mark_superseded_victims(txn)
        self.llc.invalidate(txn.addr)  # dropped copy is superseded by req.data
        self._mem_write(txn.addr, req.data, source=req.requester)
        self.network.send(
            Message(MsgType.DMA_RESP, self.name, req.requester, txn.addr, tid=txn.tid)
        )

    def _commit_write_through(self, txn: Transaction) -> None:
        """GPU write-through / write-back: system-visible write (full line
        for TCC write-backs, word-masked for streaming write-throughs)."""
        req = txn.request
        self._mark_superseded_victims(txn)
        if req.data is not None:
            self._system_write(
                txn.addr, _apply_words(req.data, txn.partial_updates),
                source=req.requester,
            )
        elif req.word_updates:
            if txn.dirty_data is not None:
                # A CPU cache held the line dirty (false sharing): merge the
                # masked write onto the probed-out dirty data so the CPU's
                # words in the rest of the line are not lost.  Word-granular
                # dirty data from probed VI caches merges the same way, with
                # the committing WT winning overlaps.
                merged = _apply_words(txn.dirty_data, txn.partial_updates)
                merged = _apply_words(merged, req.word_updates)
                self._system_write(txn.addr, merged, source=req.requester)
            else:
                combined = dict(txn.partial_updates)
                combined.update(req.word_updates)
                self._system_write_masked(
                    txn.addr, combined, source=req.requester
                )
        else:
            raise ProtocolError(f"WT without data: {req!r}")
        self.network.send(
            Message(MsgType.WT_ACK, self.name, req.requester, txn.addr, tid=txn.tid)
        )

    def _commit_atomic(self, txn: Transaction, base: LineData | None) -> None:
        """System-scope atomic, executed here for full-system visibility."""
        req = txn.request
        if base is None:
            raise ProtocolError(f"atomic without base data: {txn!r}")
        base = _apply_words(base, txn.partial_updates)
        # dirty words the requesting TCC carried along when it bypassed
        # (invalidated) its own modified copy
        base = _apply_words(base, req.word_updates)
        self._mark_superseded_victims(txn)
        new_data, old_value = apply_atomic(
            base, req.word, req.atomic_op, req.operand, req.compare
        )
        self._system_write(txn.addr, new_data, source=req.requester)
        self.network.send(
            Message(
                MsgType.ATOMIC_RESP, self.name, req.requester, txn.addr,
                result=old_value, tid=txn.tid,
            )
        )

    def _mark_superseded_victims(self, txn: Transaction) -> None:
        """After a system-level write consumed victim-buffer data via probe
        acks, the still-in-flight Vic* messages from those caches carry
        *older* data than what was just committed — they must be dropped on
        arrival or they would clobber the write."""
        if txn.victim_ack_sources:
            self._stale_victims.setdefault(txn.addr, set()).update(
                txn.victim_ack_sources
            )

    def _system_write(
        self, addr: int, data: LineData, source: str | None = None
    ) -> None:
        """A write at system-level visibility (WT/atomic commit point).

        With ``useL3OnWT`` the LLC is written (and, unless the LLC is
        write-back, memory as well).  Without it the write bypasses the LLC
        straight to memory; a stale LLC copy must then be dropped (its dirty
        data, if any, is superseded by this full-line write).
        """
        if self.policy.use_l3_on_wt:
            dirty_in_llc = self.policy.llc_writeback
            displaced = self.llc.write_through(addr, data, dirty=dirty_in_llc)
            if displaced is not None:
                self._mem_write(displaced.addr, displaced.data)
            if not self.policy.llc_writeback:
                self._mem_write(addr, data, source=source)
        else:
            # Bypass mode: memory is the destination; an existing LLC copy
            # is updated in place so it never goes stale (see DESIGN.md).
            self.llc.update_in_place(addr, data, dirty=False)
            self._mem_write(addr, data, source=source)

    def _system_write_masked(
        self, addr: int, updates: dict[int, int], source: str | None = None
    ) -> None:
        """A partial-line system-visible write.

        The LLC copy (if any) is always kept coherent by applying the words
        in place; a write-back LLC under ``useL3OnWT`` absorbs the write,
        every other combination also writes memory.  A partial line can
        never *allocate* in the LLC.
        """
        absorb = self.policy.use_l3_on_wt and self.policy.llc_writeback
        hit = self.llc.apply_words(addr, updates, dirty=absorb)
        if hit and absorb:
            return
        self.stats.inc("mem_writes")
        self.memory.write_words(addr, updates, source=source or self.name)

    # -- victims ---------------------------------------------------------------------

    def _handle_victim(self, txn: Transaction) -> None:
        req = txn.request
        if req.data is None:
            raise ProtocolError(f"victim without data: {req!r}")
        superseded = self._stale_victims.get(txn.addr)
        if superseded is not None and req.requester in superseded:
            superseded.discard(req.requester)
            if not superseded:
                del self._stale_victims[txn.addr]
            accepted = False
            self.stats.inc("superseded_victims_dropped")
        else:
            accepted = self.accept_victim(txn)
        self.schedule(self.llc.latency_cycles, self._fire_victim_commit,
                      arg=(txn, accepted))

    def _fire_victim_commit(self, ctx: tuple) -> None:
        txn = ctx[0]
        txn.fsm.fire(EV_COMMIT, self, txn.addr, ctx)

    def _finish_victim(self, txn: Transaction, accepted: bool) -> str:
        """Shared tail of every victim-commit action: ack and complete."""
        req = txn.request
        if not accepted:
            self.stats.inc("stale_victims_dropped")
        self.network.send(
            Message(MsgType.WB_ACK, self.name, req.requester, txn.addr, tid=txn.tid)
        )
        txn.responded = True
        self.update_state_after_response(txn)
        self._maybe_complete(txn)
        return self._fig2_next(txn)

    # victim-commit actions — one per §III policy overlay (selected by
    # build_directory_table; see _select_victim_commit)

    def _act_victim_commit_baseline(self, ctx: tuple) -> str:
        """§II-D baseline: every victim writes the LLC and memory."""
        txn, accepted = ctx
        if accepted:
            req = txn.request
            dirty = req.mtype is MsgType.VIC_DIRTY
            displaced = self.llc.write_victim(req.addr, req.data, dirty=dirty)
            if displaced is not None:
                self._mem_write(displaced.addr, displaced.data)
            self._mem_write(req.addr, req.data, source=req.requester)
        return self._finish_victim(*ctx)

    def _act_victim_commit_no_clean_mem(self, ctx: tuple) -> str:
        """§III-B: clean victims skip the memory write (LLC only)."""
        txn, accepted = ctx
        if accepted:
            req = txn.request
            dirty = req.mtype is MsgType.VIC_DIRTY
            displaced = self.llc.write_victim(req.addr, req.data, dirty=dirty)
            if displaced is not None:
                self._mem_write(displaced.addr, displaced.data)
            if dirty:
                self._mem_write(req.addr, req.data, source=req.requester)
        return self._finish_victim(*ctx)

    def _act_victim_commit_drop_clean(self, ctx: tuple) -> str:
        """§III-B1: clean victims are dropped entirely."""
        txn, accepted = ctx
        if accepted:
            req = txn.request
            if req.mtype is MsgType.VIC_DIRTY:
                displaced = self.llc.write_victim(req.addr, req.data, dirty=True)
                if displaced is not None:
                    self._mem_write(displaced.addr, displaced.data)
                self._mem_write(req.addr, req.data, source=req.requester)
        return self._finish_victim(*ctx)

    def _act_victim_commit_llc_only(self, ctx: tuple) -> str:
        """§III-C llcWB: victims write only the LLC; its dirty bit defers
        the memory write to the LLC's own eviction."""
        txn, accepted = ctx
        if accepted:
            req = txn.request
            dirty = req.mtype is MsgType.VIC_DIRTY
            displaced = self.llc.write_victim(req.addr, req.data, dirty=dirty)
            if displaced is not None:
                self._mem_write(displaced.addr, displaced.data)
        return self._finish_victim(*ctx)

    def _act_victim_commit_generic(self, ctx: tuple) -> str:
        """Fallback for knob combinations outside the named §III overlays."""
        txn, accepted = ctx
        if accepted:
            self._write_victim(txn.request)
        return self._finish_victim(*ctx)

    def _write_victim(self, req: Message) -> None:
        dirty = req.mtype is MsgType.VIC_DIRTY
        policy = self.policy
        displaced = None
        if dirty or policy.clean_victims_to_llc:
            displaced = self.llc.write_victim(req.addr, req.data, dirty=dirty)
        if displaced is not None:
            # Write-back LLC evicting a dirty line: the deferred memory write.
            self._mem_write(displaced.addr, displaced.data)
        if policy.llc_writeback:
            return  # no victim writes memory directly (§III-C)
        if dirty or policy.clean_victims_to_memory:
            self._mem_write(req.addr, req.data, source=req.requester)

    # -- flush --------------------------------------------------------------------------

    def _handle_flush(self, txn: Transaction) -> None:
        req = txn.request
        self.network.send(
            Message(MsgType.FLUSH_ACK, self.name, req.requester, txn.addr, tid=txn.tid)
        )
        txn.responded = True
        self._maybe_complete(txn)

    # -- completion -----------------------------------------------------------------------

    def _maybe_complete(self, txn: Transaction) -> None:
        if not txn.responded or not txn.settled:
            return
        current = self._active.get(txn.addr)
        if current is not txn:
            return  # already completed
        del self._active[txn.addr]
        elapsed = self.now - txn.started_at
        self.stats.inc("transactions_completed")
        self.stats.inc("latency_ticks", elapsed)
        per_type = self.stats.child("txn")
        per_type.inc(f"{txn.request.mtype.value}.count")
        per_type.inc(f"{txn.request.mtype.value}.latency_ticks", elapsed)
        if txn.on_complete is not None:
            txn.on_complete()
        queue = self._waiting.get(txn.addr)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._waiting[txn.addr]
            self._start(nxt)
        self._admit()

    def _admit(self) -> None:
        """Start admission-stalled requests while TBEs are free."""
        limit = self.policy.dir_max_transactions
        if limit is None:
            return
        pending = len(self._admission)
        while pending and len(self._active) < limit:
            pending -= 1
            msg = self._admission.popleft()
            if msg.addr in self._active:
                self._waiting.setdefault(msg.addr, deque()).append(msg)
            else:
                self._start(msg)

    # -- planning hooks (overridden by the precise directory) ------------------------------

    def plan_request(self, txn: Transaction) -> RequestPlan:
        """Baseline: broadcast probes on everything; read data in parallel.

        Read-permission requests send downgrade probes to the L2s only (the
        TCC never forwards data and cannot be dirty towards a reader);
        write-permission requests broadcast invalidations to L2s and TCC
        (footnote 4 of the paper).
        """
        mtype = txn.request.mtype
        plan = RequestPlan(needs_data=mtype in _DATA_REQUESTS)
        plan.read_data_now = plan.needs_data
        if mtype.is_write_permission:
            plan.probe_targets = self.all_cache_names()
            plan.probe_type = ProbeType.INVALIDATE
        elif mtype.is_read_permission:
            plan.probe_targets = list(self.l2_names)
            plan.probe_type = ProbeType.DOWNGRADE
        return plan

    def grant_state(self, txn: Transaction) -> MoesiState:
        """Baseline grant: E only when no cache acked holding a copy."""
        mtype = txn.request.mtype
        if mtype is MsgType.RDBLKM:
            return MoesiState.M
        if mtype is MsgType.RDBLKS:
            return MoesiState.S
        if txn.dirty_data is not None or txn.any_copy_acked:
            return MoesiState.S
        return MoesiState.E

    def accept_victim(self, txn: Transaction) -> bool:
        """Baseline: the stateless directory writes every victim."""
        return True

    def prepare_entry(self, txn: Transaction) -> bool:
        """Ensure tracking space exists.  Baseline tracks nothing."""
        return True

    def update_state_after_response(self, txn: Transaction) -> None:
        """State bookkeeping after the response.  Baseline keeps none."""

    # -- deadlock/debug ------------------------------------------------------------------------

    def pending_work(self) -> str | None:
        if self._active:
            sample = next(iter(self._active.values()))
            return f"{len(self._active)} active transactions (e.g. {sample!r})"
        if self._waiting:
            return f"{sum(map(len, self._waiting.values()))} queued requests"
        if self._admission:
            return f"{len(self._admission)} admission-stalled requests"
        return None


# -- Figure 2 table ----------------------------------------------------------------


def _dispatch_dir_evict(ctl, ctx) -> str:
    # virtual dispatch: the action is defined by PreciseDirectory
    return ctl._act_dir_evict(ctx)


def _select_victim_commit(policy: DirectoryPolicy):
    """Map the §III victim-policy knobs to a (action, overlay-name) pair."""
    combo = (
        policy.clean_victims_to_llc,
        policy.clean_victims_to_memory,
        policy.llc_writeback,
    )
    if policy.llc_writeback:
        if policy.clean_victims_to_llc:
            return DirectoryController._act_victim_commit_llc_only, OVL_LLC_WB
        return DirectoryController._act_victim_commit_generic, "custom victim policy"
    if combo == (True, True, False):
        return DirectoryController._act_victim_commit_baseline, None
    if combo == (True, False, False):
        return DirectoryController._act_victim_commit_no_clean_mem, OVL_NO_CLEAN_MEM
    if combo == (False, False, False):
        return DirectoryController._act_victim_commit_drop_clean, OVL_DROP_CLEAN
    return DirectoryController._act_victim_commit_generic, "custom victim policy"


_TABLE_CACHE: dict[tuple, TransitionTable] = {}


def build_directory_table(policy: DirectoryPolicy, precise: bool) -> TransitionTable:
    """Build (and cache) the Figure-2 transaction table for a policy.

    §III policies select overlays: early_dirty_response adds the
    ``B_PU``/``B_PMU`` states, the victim knobs swap the ``(B, Commit)``
    action, and the §VII conservative-VicDirty variant lets a victim commit
    end in ``B_P`` (sharer invalidations in flight).  A precise directory
    additionally handles ``DirEvict`` (entry evictions run as transactions).
    """
    early = policy.early_dirty_response
    conservative_vic = bool(precise and policy.vicdirty_invalidates_sharers)
    vic_action, vic_overlay = _select_victim_commit(policy)
    key = (precise, early, conservative_vic, vic_action)
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached

    D = DirectoryController
    states = ("U",) + _BLOCKED_BASE + (_BLOCKED_EARLY if early else ())
    events = REQUEST_EVENTS + (
        EV_LAUNCH, EV_LLC_DATA, EV_MEM_DATA, EV_PROBE_ACK, EV_UNBLOCK, EV_COMMIT,
    ) + ((EV_DIR_EVICT,) if precise else ())
    name = "dir-fig2/" + ("precise" if precise else "stateless")
    table = TransitionTable(name, states, events, initial="U")

    # Requests: U starts a transaction; any blocked state queues behind it.
    table.on("U", REQUEST_EVENTS, "B", action=D._act_start_request,
             note="allocate a TBE and schedule the launch (Fig. 2 U -> B)")
    for blocked in states[1:]:
        table.on(blocked, REQUEST_EVENTS, blocked, action=D._act_queue_request,
                 note="line busy: queue behind the active transaction")

    # Launch: plan probes / data reads, or commit victims and flushes.
    table.on("B", EV_LAUNCH, ("B", "B_P", "B_U", "U"), action=D._act_launch,
             note="plan probes/data (Fig. 2 B -> B_P); B_U = elided-read "
                  "upgrade respond; U = probe-free commit (WT/flush)")

    # LLC lookup completion: hit -> respond path, miss -> memory read.
    table.on("B", EV_LLC_DATA, ("B_M", "B_U", "U"), action=D._act_llc_data,
             note="LLC hit responds (Fig. 2 B -> B_U/U); miss goes to memory (B_M)")
    table.on("B_P", EV_LLC_DATA, ("B_P", "B_PM"), action=D._act_llc_data,
             note="data ready/miss while probes outstanding (Fig. 2 B_P -> B_PM)")
    table.on("B_U", EV_LLC_DATA, ("B_U", "B_MU"), action=D._act_llc_data,
             note="read still in flight after a dirty-ack response")
    table.on("U", EV_LLC_DATA, "U", action=D._act_llc_data,
             note="late LLC return after the unblock already completed the "
                  "transaction; a miss still issues the (modelled) memory read")
    if early:
        table.on("B_PU", EV_LLC_DATA, ("B_PU", "B_PMU"), action=D._act_llc_data,
                 overlay=OVL_EARLY)

    # Memory read completion.
    table.on("B_M", EV_MEM_DATA, ("B_U", "U"), action=D._act_mem_data,
             note="respond from memory data (Fig. 2 B_M -> U)")
    table.on("B_PM", EV_MEM_DATA, "B_P", action=D._act_mem_data)
    table.on("B_MU", EV_MEM_DATA, "B_U", action=D._act_mem_data)
    table.on("U", EV_MEM_DATA, "U", action=D._act_mem_data,
             note="late memory return for an already-completed transaction")
    if early:
        table.on("B_PMU", EV_MEM_DATA, "B_PU", action=D._act_mem_data,
                 overlay=OVL_EARLY)

    # Probe acks.
    probe_ack = D._act_probe_ack
    table.on("B_P", EV_PROBE_ACK,
             ("B_P", "B", "B_U", "U") + (("B_PU",) if early else ()),
             action=probe_ack,
             note="collect dirty data; last ack responds or defers the read")
    table.on("B_PM", EV_PROBE_ACK,
             ("B_PM", "B_M", "B_MU") + (("B_PMU",) if early else ()),
             action=probe_ack)
    if early:
        table.on("B_PU", EV_PROBE_ACK, ("B_PU", "B_U"), action=probe_ack,
                 overlay=OVL_EARLY,
                 note="acks draining after the §III-A early response")
        table.on("B_PMU", EV_PROBE_ACK, ("B_PMU", "B_MU"), action=probe_ack,
                 overlay=OVL_EARLY)

    # Unblocks close CPU fill transactions.
    table.on("B_U", EV_UNBLOCK, "U", action=D._act_unblock,
             note="requester installed the line (Fig. 2 -> U)")
    table.on("B_MU", EV_UNBLOCK, "B_M", action=D._act_unblock)
    if early:
        table.on("B_PU", EV_UNBLOCK, "B_P", action=D._act_unblock,
                 overlay=OVL_EARLY)
        table.on("B_PMU", EV_UNBLOCK, "B_PM", action=D._act_unblock,
                 overlay=OVL_EARLY)

    # Victim commit (the LLC-latency write point).
    commit_nexts = ("U", "B_P") if conservative_vic else ("U",)
    table.on("B", EV_COMMIT, commit_nexts, action=vic_action,
             overlay=OVL_CONSERVATIVE_VIC if conservative_vic else vic_overlay,
             note="write the victim per the §III policy and ack"
                  + ("; B_P = §VII sharer invalidations in flight"
                     if conservative_vic else ""))

    # Precise only: a directory-entry eviction runs as its own transaction.
    if precise:
        table.on("U", EV_DIR_EVICT, ("B_P", "U"), action=_dispatch_dir_evict,
                 note="§IV-A1 entry eviction: back-invalidate tracked "
                      "holders (B_P) or finish immediately (U)")

    # Everything else is explicitly illegal: the engine raises if it fires.
    early_states = _BLOCKED_EARLY if early else ()
    table.illegal(("U",) + tuple(s for s in _BLOCKED_BASE if s != "B")
                  + early_states, EV_LAUNCH,
                  note="launch fires exactly once, out of B")
    table.illegal(("B_M", "B_PM", "B_MU") + (("B_PMU",) if early else ()),
                  EV_LLC_DATA, note="the LLC lookup already completed")
    table.illegal(("B", "B_P", "B_U") + (("B_PU",) if early else ()),
                  EV_MEM_DATA, note="no memory read outstanding")
    table.illegal(("U", "B", "B_M", "B_U", "B_MU"), EV_PROBE_ACK,
                  note="no probes outstanding (an extra ack is a protocol bug)")
    table.illegal(("U", "B", "B_P", "B_M", "B_PM"), EV_UNBLOCK,
                  note="no response awaiting an unblock")
    table.illegal(tuple(s for s in states if s != "B"), EV_COMMIT,
                  note="victim commits happen once, out of B")
    if precise:
        table.illegal(tuple(s for s in states if s != "U"), EV_DIR_EVICT,
                      note="entry evictions only start on idle lines")

    _TABLE_CACHE[key] = table
    return table
