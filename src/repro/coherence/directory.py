"""The system-level directory controller — baseline (stateless) version.

This implements the §II-D baseline of the paper: a *stateless* directory
that, on every permission request, broadcasts probes to the CorePair L2s
(and the TCC for write-permission requests, footnote 4) while reading the
LLC/memory in parallel, and only responds once **all** probe acks and the
data response have returned (Figure 2's ``*_PM`` states).  Victims write
both the LLC and memory (write-through LLC).

The §III optimizations are policy knobs on this same engine
(:class:`~repro.coherence.policies.DirectoryPolicy`):

- ``early_dirty_response`` (§III-A) responds to the requester from the
  first dirty probe ack, for downgrade probes only.
- ``clean_victims_to_memory=False`` (§III-B) skips the memory write for
  clean victims; ``clean_victims_to_llc=False`` (§III-B1) drops them
  entirely.
- ``llc_writeback`` (§III-C) makes all victims LLC-only, with the LLC dirty
  bit deferring memory writes to LLC eviction; ``use_l3_on_wt`` routes GPU
  write-throughs/atomics into the LLC as well.

The §IV precise directory subclasses this engine and overrides the
*planning* hooks (:meth:`plan_request`, :meth:`grant_state`,
:meth:`accept_victim`, :meth:`update_state_after_response`,
:meth:`prepare_entry`) — the transaction machinery is shared.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.coherence.llc import LastLevelCache
from repro.coherence.policies import DirectoryPolicy
from repro.coherence.transactions import Transaction
from repro.mem.block import LineData
from repro.mem.main_memory import MainMemory
from repro.protocol.atomics import apply_atomic
from repro.protocol.messages import Message
from repro.protocol.types import MoesiState, MsgType, ProbeType, RequesterKind
from repro.sim.clock import ClockDomain
from repro.sim.component import Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network


class ProtocolError(SimulationError):
    """An illegal message or transition reached the directory."""


def _apply_words(data: LineData, updates: dict[int, int] | None) -> LineData:
    if updates:
        for index, value in updates.items():
            data = data.with_word(index, value)
    return data


@dataclass
class RequestPlan:
    """What a request needs before the directory can respond."""

    probe_targets: list[str] = field(default_factory=list)
    probe_type: ProbeType | None = None
    #: does the response require line data (reads, RdBlkM fills, atomics)?
    needs_data: bool = False
    #: issue the LLC/memory read immediately, in parallel with probes
    #: (the baseline always does; the precise directory defers it in O
    #: state, expecting the owner's dirty data to make it unnecessary).
    read_data_now: bool = False


#: request types whose response carries line data
_DATA_REQUESTS = frozenset(
    {MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM, MsgType.DMA_RD, MsgType.ATOMIC}
)


class DirectoryController(Controller):
    """Baseline stateless system-level directory backed by the LLC."""

    kind_name = "dir"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        llc: LastLevelCache,
        memory: MainMemory,
        policy: DirectoryPolicy | None = None,
        latency_cycles: float = 20.0,
        service_cycles: float = 2.0,
    ) -> None:
        super().__init__(sim, name, clock, service_cycles=service_cycles)
        self.network = network
        self.llc = llc
        self.memory = memory
        self.policy = policy or DirectoryPolicy()
        self.latency_cycles = latency_cycles
        self._active: dict[int, Transaction] = {}
        self._waiting: dict[int, deque[Message]] = {}
        #: per line: caches whose next Vic* must be dropped because a
        #: system-level write already consumed (superseded) its data via a
        #: probe ack out of the victim buffer.
        self._stale_victims: dict[int, set[str]] = {}
        #: admission queue when dir_max_transactions (the TBE count) is hit
        self._admission: deque[Message] = deque()
        self._l2_names: list[str] | None = None
        self._tcc_names: list[str] | None = None
        #: verification hook: called with (self, addr) when a transaction
        #: completes.  Installed by repro.verify.
        self.on_transaction_complete: Callable[["DirectoryController", int], None] | None = None
        #: optional ProtocolTrace (repro.sim.tracing) for protocol debugging
        self.trace = None

    # -- peers ----------------------------------------------------------------

    @property
    def l2_names(self) -> list[str]:
        if self._l2_names is None:
            self._l2_names = sorted(self.network.endpoints_of_kind("l2"))
        return self._l2_names

    @property
    def tcc_names(self) -> list[str]:
        if self._tcc_names is None:
            self._tcc_names = sorted(self.network.endpoints_of_kind("tcc"))
        return self._tcc_names

    def all_cache_names(self) -> list[str]:
        return self.l2_names + self.tcc_names

    # -- message dispatch ------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MsgType.PROBE_ACK:
            self._on_probe_ack(msg)
        elif msg.mtype is MsgType.UNBLOCK:
            self._on_unblock(msg)
        elif msg.mtype.is_request:
            self._accept_request(msg)
        else:
            raise ProtocolError(f"directory received unexpected {msg!r}")

    def _accept_request(self, msg: Message) -> None:
        self.stats.inc("requests")
        self.stats.inc(f"requests.{msg.mtype.value}")
        if self.trace is not None:
            self.trace.record(self.now, self.name, "request", msg.addr,
                              f"{msg.mtype.value} from {msg.src}")
        if msg.addr in self._active:
            self.stats.inc("requests_queued")
            self._waiting.setdefault(msg.addr, deque()).append(msg)
            return
        limit = self.policy.dir_max_transactions
        if limit is not None and len(self._active) >= limit:
            # out of transaction buffers (TBEs): stall at admission
            self.stats.inc("admission_stalls")
            self._admission.append(msg)
            return
        self._start(msg)

    def _start(self, msg: Message) -> None:
        txn = Transaction(msg)
        txn.started_at = self.now
        self._active[msg.addr] = txn
        self.schedule(self.latency_cycles, self._launch, arg=txn)

    # -- transaction launch ------------------------------------------------------

    def _launch(self, txn: Transaction) -> None:
        if not self.prepare_entry(txn):
            return  # parked; the entry-eviction path will relaunch us
        mtype = txn.request.mtype
        if mtype.is_victim:
            self._handle_victim(txn)
        elif mtype is MsgType.FLUSH:
            self._handle_flush(txn)
        else:
            self._handle_permission(txn)

    def relaunch(self, txn: Transaction) -> None:
        """Re-enter :meth:`_launch` after an entry eviction made space."""
        self._launch(txn)

    def _handle_permission(self, txn: Transaction) -> None:
        plan = self.plan_request(txn)
        txn.needs_data = plan.needs_data
        targets = [t for t in plan.probe_targets if t != txn.request.requester]
        if targets:
            if plan.probe_type is None:
                raise ProtocolError(f"probe targets without a probe type for {txn!r}")
            self._send_probes(txn, targets, plan.probe_type)
        if plan.needs_data and plan.read_data_now:
            self._read_llc_then_memory(txn)
        self._maybe_finish_permission(txn)

    def _send_probes(self, txn: Transaction, targets: list[str], ptype: ProbeType) -> None:
        txn.pending_acks += len(targets)
        self.stats.inc("probes_sent", len(targets))
        self.stats.inc(
            "probes_sent.inv" if ptype is ProbeType.INVALIDATE else "probes_sent.down",
            len(targets),
        )
        if self.trace is not None:
            self.trace.record(
                self.now, self.name, "probe", txn.addr,
                f"{ptype.value} -> {','.join(targets)}",
            )
        for target in targets:
            self.network.send(Message.probe(self.name, target, txn.addr, ptype, txn.tid))

    # -- data fetch (LLC backed by memory) ----------------------------------------

    def _read_llc_then_memory(self, txn: Transaction) -> None:
        txn.read_issued = True

        def after_llc() -> None:
            hit, data = self.llc.read(txn.addr)
            if hit:
                txn.fetched_data = data
                txn.data_ready = True
                self._maybe_finish_permission(txn)
                return
            txn.mem_outstanding = True
            self._mem_read(txn.addr, lambda mem_data: self._on_mem_data(txn, mem_data))

        self.schedule(self.llc.latency_cycles, after_llc)

    def _on_mem_data(self, txn: Transaction, data: LineData) -> None:
        txn.mem_outstanding = False
        if not txn.data_ready:
            txn.fetched_data = data
            txn.data_ready = True
        self._maybe_finish_permission(txn)
        self._maybe_complete(txn)

    def _mem_read(self, addr: int, callback: Callable[[LineData], None]) -> None:
        self.stats.inc("mem_reads")
        self.memory.read(addr, callback)

    def _mem_write(self, addr: int, data: LineData) -> None:
        self.stats.inc("mem_writes")
        self.memory.write(addr, data)

    # -- probe acks / unblocks ------------------------------------------------------

    def _on_probe_ack(self, msg: Message) -> None:
        txn = self._active.get(msg.addr)
        if txn is None or msg.tid != txn.tid:
            raise ProtocolError(f"orphan probe ack {msg!r}")
        if txn.pending_acks <= 0:
            raise ProtocolError(f"unexpected extra probe ack {msg!r} for {txn!r}")
        txn.pending_acks -= 1
        if msg.had_copy:
            txn.any_copy_acked = True
        if msg.from_victim:
            txn.victim_ack_sources.add(msg.src)
        if msg.dirty and msg.data is not None:
            if txn.dirty_data is not None:
                raise ProtocolError(f"two dirty probe acks for {txn!r}")
            txn.dirty_data = msg.data
        if msg.word_updates:
            # word-granular dirty forwarding (WB-mode TCC/TCP probes)
            txn.partial_updates.update(msg.word_updates)
        if txn.pending_acks == 0 and txn.on_all_acks is not None:
            hook, txn.on_all_acks = txn.on_all_acks, None
            hook()
            return
        self._maybe_finish_permission(txn)
        self._maybe_complete(txn)

    def _on_unblock(self, msg: Message) -> None:
        txn = self._active.get(msg.addr)
        if txn is None or msg.tid != txn.tid:
            raise ProtocolError(f"orphan unblock {msg!r}")
        if not txn.awaiting_unblock:
            raise ProtocolError(f"unblock for non-blocked {txn!r}")
        txn.awaiting_unblock = False
        self._maybe_complete(txn)

    # -- permission completion -------------------------------------------------------

    def _maybe_finish_permission(self, txn: Transaction) -> None:
        if txn.responded or txn.is_eviction:
            return
        mtype = txn.request.mtype
        if mtype.is_victim or mtype is MsgType.FLUSH:
            return
        # §III-A: early response from the first dirty ack, downgrades only.
        if (
            self.policy.early_dirty_response
            and mtype.is_read_permission
            and txn.dirty_data is not None
        ):
            self.stats.inc("early_dirty_responses")
            self._respond(txn)
            return
        if txn.pending_acks > 0:
            return
        if txn.needs_data and txn.dirty_data is None and not txn.data_ready:
            if not txn.read_issued:
                # Deferred read: the precise directory expected the owner's
                # dirty data but the owner turned out to hold E (clean).
                self.stats.inc("deferred_data_reads")
                self._read_llc_then_memory(txn)
            return
        self._respond(txn)

    def _respond(self, txn: Transaction) -> None:
        txn.responded = True
        req = txn.request
        mtype = req.mtype
        if self.trace is not None:
            self.trace.record(self.now, self.name, "respond", txn.addr,
                              f"{mtype.value} -> {req.requester} ({txn.blocked_on})")
        data = txn.dirty_data if txn.dirty_data is not None else txn.fetched_data
        if mtype in (MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM):
            state = self.grant_state(txn)
            if data is None and txn.needs_data:
                raise ProtocolError(f"responding without data for {txn!r}")
            # data may legitimately be None for an elided-read upgrade
            # (RdBlkM from the tracked holder): the requester keeps its copy.
            # Word-granular dirty data forwarded by probed VI caches rides
            # along and is applied by the receiver on top of its base.
            self.network.send(
                Message(
                    MsgType.DATA_RESP, self.name, req.requester, txn.addr,
                    data=data, state=state,
                    word_updates=dict(txn.partial_updates) or None,
                    dirty=txn.dirty_data is not None, tid=txn.tid,
                )
            )
            if req.requester_kind is RequesterKind.CPU_L2:
                txn.awaiting_unblock = True
        elif mtype is MsgType.DMA_RD:
            if data is None:
                raise ProtocolError(f"DMA read without data for {txn!r}")
            data = _apply_words(data, txn.partial_updates)
            resp = Message(MsgType.DMA_RESP, self.name, req.requester, txn.addr,
                           data=data, tid=txn.tid)
            self.network.send(resp)
        elif mtype is MsgType.DMA_WR:
            self._commit_dma_write(txn)
        elif mtype is MsgType.WT:
            self._commit_write_through(txn)
        elif mtype is MsgType.ATOMIC:
            self._commit_atomic(txn, data)
        else:  # pragma: no cover - dispatch is exhaustive
            raise ProtocolError(f"cannot respond to {txn!r}")
        self.update_state_after_response(txn)
        self._maybe_complete(txn)

    def _commit_dma_write(self, txn: Transaction) -> None:
        """DMA writes go to memory and invalidate any LLC copy (the paper:
        DMA accesses do not update the L3)."""
        req = txn.request
        if req.data is None:
            raise ProtocolError(f"DMA write without data: {req!r}")
        self._mark_superseded_victims(txn)
        self.llc.invalidate(txn.addr)  # dropped copy is superseded by req.data
        self._mem_write(txn.addr, req.data)
        self.network.send(
            Message(MsgType.DMA_RESP, self.name, req.requester, txn.addr, tid=txn.tid)
        )

    def _commit_write_through(self, txn: Transaction) -> None:
        """GPU write-through / write-back: system-visible write (full line
        for TCC write-backs, word-masked for streaming write-throughs)."""
        req = txn.request
        self._mark_superseded_victims(txn)
        if req.data is not None:
            self._system_write(txn.addr, _apply_words(req.data, txn.partial_updates))
        elif req.word_updates:
            if txn.dirty_data is not None:
                # A CPU cache held the line dirty (false sharing): merge the
                # masked write onto the probed-out dirty data so the CPU's
                # words in the rest of the line are not lost.  Word-granular
                # dirty data from probed VI caches merges the same way, with
                # the committing WT winning overlaps.
                merged = _apply_words(txn.dirty_data, txn.partial_updates)
                merged = _apply_words(merged, req.word_updates)
                self._system_write(txn.addr, merged)
            else:
                combined = dict(txn.partial_updates)
                combined.update(req.word_updates)
                self._system_write_masked(txn.addr, combined)
        else:
            raise ProtocolError(f"WT without data: {req!r}")
        self.network.send(
            Message(MsgType.WT_ACK, self.name, req.requester, txn.addr, tid=txn.tid)
        )

    def _commit_atomic(self, txn: Transaction, base: LineData | None) -> None:
        """System-scope atomic, executed here for full-system visibility."""
        req = txn.request
        if base is None:
            raise ProtocolError(f"atomic without base data: {txn!r}")
        base = _apply_words(base, txn.partial_updates)
        # dirty words the requesting TCC carried along when it bypassed
        # (invalidated) its own modified copy
        base = _apply_words(base, req.word_updates)
        self._mark_superseded_victims(txn)
        new_data, old_value = apply_atomic(
            base, req.word, req.atomic_op, req.operand, req.compare
        )
        self._system_write(txn.addr, new_data)
        self.network.send(
            Message(
                MsgType.ATOMIC_RESP, self.name, req.requester, txn.addr,
                result=old_value, tid=txn.tid,
            )
        )

    def _mark_superseded_victims(self, txn: Transaction) -> None:
        """After a system-level write consumed victim-buffer data via probe
        acks, the still-in-flight Vic* messages from those caches carry
        *older* data than what was just committed — they must be dropped on
        arrival or they would clobber the write."""
        if txn.victim_ack_sources:
            self._stale_victims.setdefault(txn.addr, set()).update(
                txn.victim_ack_sources
            )

    def _system_write(self, addr: int, data: LineData) -> None:
        """A write at system-level visibility (WT/atomic commit point).

        With ``useL3OnWT`` the LLC is written (and, unless the LLC is
        write-back, memory as well).  Without it the write bypasses the LLC
        straight to memory; a stale LLC copy must then be dropped (its dirty
        data, if any, is superseded by this full-line write).
        """
        if self.policy.use_l3_on_wt:
            dirty_in_llc = self.policy.llc_writeback
            displaced = self.llc.write_through(addr, data, dirty=dirty_in_llc)
            if displaced is not None:
                self._mem_write(displaced.addr, displaced.data)
            if not self.policy.llc_writeback:
                self._mem_write(addr, data)
        else:
            # Bypass mode: memory is the destination; an existing LLC copy
            # is updated in place so it never goes stale (see DESIGN.md).
            self.llc.update_in_place(addr, data, dirty=False)
            self._mem_write(addr, data)

    def _system_write_masked(self, addr: int, updates: dict[int, int]) -> None:
        """A partial-line system-visible write.

        The LLC copy (if any) is always kept coherent by applying the words
        in place; a write-back LLC under ``useL3OnWT`` absorbs the write,
        every other combination also writes memory.  A partial line can
        never *allocate* in the LLC.
        """
        absorb = self.policy.use_l3_on_wt and self.policy.llc_writeback
        hit = self.llc.apply_words(addr, updates, dirty=absorb)
        if hit and absorb:
            return
        self.stats.inc("mem_writes")
        self.memory.write_words(addr, updates)

    # -- victims ---------------------------------------------------------------------

    def _handle_victim(self, txn: Transaction) -> None:
        req = txn.request
        if req.data is None:
            raise ProtocolError(f"victim without data: {req!r}")
        superseded = self._stale_victims.get(txn.addr)
        if superseded is not None and req.requester in superseded:
            superseded.discard(req.requester)
            if not superseded:
                del self._stale_victims[txn.addr]
            accepted = False
            self.stats.inc("superseded_victims_dropped")
        else:
            accepted = self.accept_victim(txn)

        def finish() -> None:
            if accepted:
                self._write_victim(req)
            else:
                self.stats.inc("stale_victims_dropped")
            self.network.send(
                Message(MsgType.WB_ACK, self.name, req.requester, txn.addr, tid=txn.tid)
            )
            txn.responded = True
            self.update_state_after_response(txn)
            self._maybe_complete(txn)

        self.schedule(self.llc.latency_cycles, finish)

    def _write_victim(self, req: Message) -> None:
        dirty = req.mtype is MsgType.VIC_DIRTY
        policy = self.policy
        displaced = None
        if dirty or policy.clean_victims_to_llc:
            displaced = self.llc.write_victim(req.addr, req.data, dirty=dirty)
        if displaced is not None:
            # Write-back LLC evicting a dirty line: the deferred memory write.
            self._mem_write(displaced.addr, displaced.data)
        if policy.llc_writeback:
            return  # no victim writes memory directly (§III-C)
        if dirty or policy.clean_victims_to_memory:
            self._mem_write(req.addr, req.data)

    # -- flush --------------------------------------------------------------------------

    def _handle_flush(self, txn: Transaction) -> None:
        req = txn.request
        self.network.send(
            Message(MsgType.FLUSH_ACK, self.name, req.requester, txn.addr, tid=txn.tid)
        )
        txn.responded = True
        self._maybe_complete(txn)

    # -- completion -----------------------------------------------------------------------

    def _maybe_complete(self, txn: Transaction) -> None:
        if not txn.responded or not txn.settled:
            return
        current = self._active.get(txn.addr)
        if current is not txn:
            return  # already completed
        del self._active[txn.addr]
        elapsed = self.now - txn.started_at
        self.stats.inc("transactions_completed")
        self.stats.inc("latency_ticks", elapsed)
        per_type = self.stats.child("txn")
        per_type.inc(f"{txn.request.mtype.value}.count")
        per_type.inc(f"{txn.request.mtype.value}.latency_ticks", elapsed)
        if self.trace is not None:
            self.trace.record(self.now, self.name, "complete", txn.addr,
                              f"{txn.request.mtype.value} tid={txn.tid}")
        if txn.on_complete is not None:
            txn.on_complete()
        if self.on_transaction_complete is not None:
            self.on_transaction_complete(self, txn.addr)
        queue = self._waiting.get(txn.addr)
        if queue:
            nxt = queue.popleft()
            if not queue:
                del self._waiting[txn.addr]
            self._start(nxt)
        self._admit()

    def _admit(self) -> None:
        """Start admission-stalled requests while TBEs are free."""
        limit = self.policy.dir_max_transactions
        if limit is None:
            return
        pending = len(self._admission)
        while pending and len(self._active) < limit:
            pending -= 1
            msg = self._admission.popleft()
            if msg.addr in self._active:
                self._waiting.setdefault(msg.addr, deque()).append(msg)
            else:
                self._start(msg)

    # -- planning hooks (overridden by the precise directory) ------------------------------

    def plan_request(self, txn: Transaction) -> RequestPlan:
        """Baseline: broadcast probes on everything; read data in parallel.

        Read-permission requests send downgrade probes to the L2s only (the
        TCC never forwards data and cannot be dirty towards a reader);
        write-permission requests broadcast invalidations to L2s and TCC
        (footnote 4 of the paper).
        """
        mtype = txn.request.mtype
        plan = RequestPlan(needs_data=mtype in _DATA_REQUESTS)
        plan.read_data_now = plan.needs_data
        if mtype.is_write_permission:
            plan.probe_targets = self.all_cache_names()
            plan.probe_type = ProbeType.INVALIDATE
        elif mtype.is_read_permission:
            plan.probe_targets = list(self.l2_names)
            plan.probe_type = ProbeType.DOWNGRADE
        return plan

    def grant_state(self, txn: Transaction) -> MoesiState:
        """Baseline grant: E only when no cache acked holding a copy."""
        mtype = txn.request.mtype
        if mtype is MsgType.RDBLKM:
            return MoesiState.M
        if mtype is MsgType.RDBLKS:
            return MoesiState.S
        if txn.dirty_data is not None or txn.any_copy_acked:
            return MoesiState.S
        return MoesiState.E

    def accept_victim(self, txn: Transaction) -> bool:
        """Baseline: the stateless directory writes every victim."""
        return True

    def prepare_entry(self, txn: Transaction) -> bool:
        """Ensure tracking space exists.  Baseline tracks nothing."""
        return True

    def update_state_after_response(self, txn: Transaction) -> None:
        """State bookkeeping after the response.  Baseline keeps none."""

    # -- deadlock/debug ------------------------------------------------------------------------

    def pending_work(self) -> str | None:
        if self._active:
            sample = next(iter(self._active.values()))
            return f"{len(self._active)} active transactions (e.g. {sample!r})"
        if self._waiting:
            return f"{sum(map(len, self._waiting.values()))} queued requests"
        if self._admission:
            return f"{len(self._admission)} admission-stalled requests"
        return None
