"""Declarative protocol engine: tables, per-line FSMs, and transition hooks.

The paper specifies its protocols as explicit state tables — Figure 2 for
the stateless directory's transaction states, Table I for the precise
directory — and gem5's SLICC (the paper's substrate) compiles exactly such
tables into controllers.  This module is the reproduction's analogue: each
controller *declares* its protocol as a :class:`TransitionTable`
(``state × event -> guard / action / next-states``) and dispatches every
protocol event through a :class:`ProtocolFSM`, which

- looks up the declared transitions for ``(state, event)`` and picks the
  first whose guard passes,
- runs the action (the same imperative code as before the refactor, now
  addressable per transition),
- **verifies the resulting state is one of the declared next-states** —
  undeclared drift raises :class:`ProtocolError` instead of silently
  diverging from the paper's tables,
- and feeds ``(state, event, next_state)`` to any attached
  :class:`TransitionHook` (tracing, invariant checking, counters).

Because the tables are data, they can be *linted* statically
(:meth:`TransitionTable.unhandled_pairs`,
:meth:`TransitionTable.unreachable_states`,
:meth:`TransitionTable.dead_transitions` — surfaced by the
``repro lint-protocol`` CLI) and enumerated by tests, so the code and the
paper's tables cannot drift apart.

Policy variants (§III A/B/B1/C, §VII) are expressed as *overlays*: a table
is copied and select transitions are added or replaced under an overlay
name, so ``repro lint-protocol --describe`` shows exactly which rows a
policy changes.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterable, Iterator

from repro.sim.event_queue import SimulationError
from repro.sim.stats import StatGroup


class ProtocolError(SimulationError):
    """An illegal message or transition reached a protocol controller."""


def state_label(state: object) -> str:
    """Human-readable label for a table state (enum member or string)."""
    return state.value if isinstance(state, enum.Enum) else str(state)


#: ``action(controller, ctx) -> next_state | None`` — None means "take the
#: single declared next state" (only legal when exactly one is declared).
Action = Callable[[object, object], object]
#: ``guard(controller, ctx) -> bool`` — declaration order decides priority.
Guard = Callable[[object, object], bool]


class Transition:
    """One declared ``(state, event)`` row of a protocol table."""

    __slots__ = ("state", "event", "next_states", "action", "guard",
                 "kind", "note", "overlay")

    def __init__(
        self,
        state: object,
        event: str,
        next_states: tuple,
        action: Action | None,
        guard: Guard | None,
        kind: str,
        note: str,
        overlay: str | None,
    ) -> None:
        self.state = state
        self.event = event
        self.next_states = next_states
        self.action = action
        self.guard = guard
        self.kind = kind  # "handled" | "illegal"
        self.note = note
        self.overlay = overlay

    def __repr__(self) -> str:
        nexts = ",".join(state_label(s) for s in self.next_states) or "-"
        return (
            f"Transition({state_label(self.state)} x {self.event} -> {nexts}"
            f"{' [illegal]' if self.kind == 'illegal' else ''})"
        )


def _as_tuple(value) -> tuple:
    if isinstance(value, (tuple, list, set, frozenset)):
        return tuple(value)
    return (value,)


class TransitionTable:
    """A declarative ``state × event`` protocol table.

    States and events are hashable labels (enum members or strings).  Every
    pair must be either handled (:meth:`on`) or explicitly declared illegal
    (:meth:`illegal`) for the table to lint clean — "unhandled" means the
    protocol author never thought about the pair.
    """

    def __init__(self, name: str, states: Iterable, events: Iterable[str],
                 initial: object) -> None:
        self.name = name
        self.states = tuple(states)
        self.events = tuple(events)
        self.initial = initial
        if initial not in self.states:
            raise ValueError(f"{name}: initial state {initial!r} not in states")
        self._map: dict[tuple, tuple[Transition, ...]] = {}

    # -- declaration ----------------------------------------------------------

    def on(
        self,
        states,
        events,
        next_states,
        action: Action | None = None,
        guard: Guard | None = None,
        note: str = "",
        overlay: str | None = None,
    ) -> "TransitionTable":
        """Declare handled transition(s); accepts single labels or iterables."""
        nexts = _as_tuple(next_states)
        for state in _as_tuple(states):
            for event in _as_tuple(events):
                self._check_labels(state, event, nexts)
                transition = Transition(
                    state, event, nexts, action, guard, "handled", note, overlay
                )
                self._add(transition)
        return self

    def illegal(self, states, events, note: str = "",
                overlay: str | None = None) -> "TransitionTable":
        """Declare that ``(state, event)`` must never fire (raises if it does)."""
        for state in _as_tuple(states):
            for event in _as_tuple(events):
                self._check_labels(state, event, ())
                self._add(Transition(state, event, (), self._raise_illegal,
                                     None, "illegal", note, overlay))
        return self

    def replace(self, states, events, next_states, action: Action | None = None,
                guard: Guard | None = None, note: str = "",
                overlay: str | None = None) -> "TransitionTable":
        """Overlay helper: drop existing rows for the pair(s), then declare."""
        for state in _as_tuple(states):
            for event in _as_tuple(events):
                self._map.pop((state, event), None)
        return self.on(next_states=next_states, states=states, events=events,
                       action=action, guard=guard, note=note, overlay=overlay)

    def copy(self, name: str | None = None) -> "TransitionTable":
        """A shallow copy for building policy overlays."""
        table = TransitionTable(name or self.name, self.states, self.events,
                                self.initial)
        table._map = dict(self._map)
        return table

    def _check_labels(self, state, event, nexts: tuple) -> None:
        if state not in self.states:
            raise ValueError(f"{self.name}: unknown state {state!r}")
        if event not in self.events:
            raise ValueError(f"{self.name}: unknown event {event!r}")
        for nxt in nexts:
            if nxt not in self.states:
                raise ValueError(f"{self.name}: unknown next state {nxt!r}")

    def _add(self, transition: Transition) -> None:
        key = (transition.state, transition.event)
        existing = self._map.get(key, ())
        if existing and existing[-1].guard is None:
            # a row after an unguarded row could never fire
            raise ValueError(
                f"{self.name}: {state_label(transition.state)} x "
                f"{transition.event} already has an unguarded transition"
            )
        self._map[key] = existing + (transition,)

    @staticmethod
    def _raise_illegal(controller, ctx):  # pragma: no cover - via ProtocolFSM
        raise AssertionError("illegal transitions are raised by ProtocolFSM")

    # -- queries ---------------------------------------------------------------

    def lookup(self, state, event) -> tuple[Transition, ...]:
        return self._map.get((state, event), ())

    def transitions(self, include_illegal: bool = False) -> Iterator[Transition]:
        for entries in self._map.values():
            for transition in entries:
                if include_illegal or transition.kind == "handled":
                    yield transition

    def declared_nexts(self, state, event) -> tuple:
        """Union of next-states over all handled rows of ``(state, event)``."""
        nexts: list = []
        for transition in self.lookup(state, event):
            for nxt in transition.next_states:
                if nxt not in nexts:
                    nexts.append(nxt)
        return tuple(nexts)

    # -- lint ------------------------------------------------------------------

    def unhandled_pairs(self) -> list[tuple]:
        """(state, event) pairs neither handled nor declared illegal."""
        return [
            (state, event)
            for state in self.states
            for event in self.events
            if (state, event) not in self._map
        ]

    def reachable_states(self) -> set:
        """States reachable from ``initial`` via declared next-states."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for event in self.events:
                for transition in self.lookup(state, event):
                    if transition.kind != "handled":
                        continue
                    for nxt in transition.next_states:
                        if nxt not in seen:
                            seen.add(nxt)
                            frontier.append(nxt)
        return seen

    def unreachable_states(self) -> list:
        reachable = self.reachable_states()
        return [state for state in self.states if state not in reachable]

    def dead_transitions(self) -> list[Transition]:
        """Handled transitions that can never fire (source state unreachable)."""
        reachable = self.reachable_states()
        return [
            transition for transition in self.transitions()
            if transition.state not in reachable
        ]

    def lint(self) -> dict:
        """All three static checks, as a report dict (see lint-protocol CLI)."""
        return {
            "unhandled": self.unhandled_pairs(),
            "unreachable": self.unreachable_states(),
            "dead": self.dead_transitions(),
        }

    # -- rendering -------------------------------------------------------------

    def describe(self) -> str:
        """Aligned text rendering of the declared (handled) transitions."""
        rows = []
        for state in self.states:
            for event in self.events:
                for transition in self.lookup(state, event):
                    if transition.kind != "handled":
                        continue
                    nexts = ",".join(state_label(s) for s in transition.next_states)
                    tag = f" [{transition.overlay}]" if transition.overlay else ""
                    note = f"  # {transition.note}" if transition.note else ""
                    rows.append(
                        f"  {state_label(state):<6} x {event:<10} -> "
                        f"{nexts:<14}{tag}{note}"
                    )
        header = (
            f"{self.name}: {len(self.states)} states, {len(self.events)} events, "
            f"{sum(1 for _ in self.transitions())} transitions"
        )
        return "\n".join([header] + rows)

    def __repr__(self) -> str:
        return f"TransitionTable({self.name!r}, {len(self._map)} pairs)"


class ProtocolFSM:
    """Per-line protocol state machine dispatching through a table.

    Sits on the per-event hot path (one instance per in-flight directory
    transaction / per resident cache line), hence ``__slots__``.
    """

    __slots__ = ("table", "state")

    def __init__(self, table: TransitionTable, state: object) -> None:
        self.table = table
        self.state = state

    def fire(self, event: str, owner, addr: int, ctx=None):
        """Dispatch ``event``: guard-select a transition, run its action,
        enforce the declared next-states, advance, and notify hooks.

        ``owner`` is the controller the action methods are bound to; it must
        expose an ``fsm_hooks`` tuple (possibly empty).
        """
        state = self.state
        table = self.table
        transitions = table._map.get((state, event))
        if not transitions:
            raise ProtocolError(
                f"{table.name}: unhandled event {event!r} in state "
                f"{state_label(state)} (addr={addr:#x})"
            )
        for transition in transitions:
            guard = transition.guard
            if guard is None or guard(owner, ctx):
                break
        else:
            raise ProtocolError(
                f"{self.table.name}: no guard matched for {event!r} in state "
                f"{state_label(state)} (addr={addr:#x})"
            )
        if transition.kind == "illegal":
            raise ProtocolError(
                f"{self.table.name}: illegal event {event!r} in state "
                f"{state_label(state)} (addr={addr:#x})"
                + (f": {transition.note}" if transition.note else "")
            )
        action = transition.action
        next_state = action(owner, ctx) if action is not None else None
        declared = transition.next_states
        if next_state is None:
            if len(declared) != 1:
                raise ProtocolError(
                    f"{self.table.name}: {state_label(state)} x {event} has "
                    f"{len(declared)} declared next states; the action must "
                    "return one"
                )
            next_state = declared[0]
        elif next_state not in declared:
            raise ProtocolError(
                f"{self.table.name}: {state_label(state)} x {event} reached "
                f"undeclared state {state_label(next_state)} (declared: "
                f"{[state_label(s) for s in declared]}, addr={addr:#x})"
            )
        self.state = next_state
        hooks = owner.fsm_hooks
        if hooks:
            for hook in hooks:
                hook.on_transition(owner, addr, state, event, next_state, table)
        return next_state

    def __repr__(self) -> str:
        return f"ProtocolFSM({self.table.name}, {state_label(self.state)})"


class TransitionHook:
    """Observer interface for protocol transitions (tracing, invariants,
    counters).  Attach with ``controller.add_fsm_hook(hook)``.

    ``table`` is the :class:`TransitionTable` the transition fired through
    — one controller may dispatch through several (a precise directory
    runs both the Fig. 2 transaction table and the Table I entry table),
    so hooks that aggregate per-table (coverage) get the identity for
    free instead of guessing from state vocabulary.
    """

    __slots__ = ()

    def on_transition(self, controller, addr: int, state, event: str,
                      next_state, table=None) -> None:
        raise NotImplementedError


class RecordingHook(TransitionHook):
    """Test/debug hook: appends ``(controller_name, addr, state, event,
    next_state)`` tuples to :attr:`records`."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        self.records: list[tuple] = []

    def on_transition(self, controller, addr, state, event, next_state,
                      table=None) -> None:
        self.records.append((controller.name, addr, state, event, next_state))

    def sequence(self, addr: int | None = None) -> list[tuple]:
        """The (state, event, next_state) triples, optionally per-address."""
        return [
            (state_label(state), event, state_label(next_state))
            for name, a, state, event, next_state in self.records
            if addr is None or a == addr
        ]


class TransitionStats(TransitionHook):
    """Per-``(state, event)`` transition counters in a standalone StatGroup.

    The group is deliberately *not* registered with the simulator, so
    attaching this hook never changes ``ApuSystem.all_stats()`` (and thus
    cannot perturb the golden-stats snapshot); read :attr:`stats` directly.
    """

    __slots__ = ("stats",)

    def __init__(self, name: str = "fsm") -> None:
        self.stats = StatGroup(name)

    def on_transition(self, controller, addr, state, event, next_state,
                      table=None) -> None:
        self.stats.inc(
            f"{controller.name}.{state_label(state)}.{event}"
        )


class TransitionCoverage(TransitionHook):
    """Set-valued sibling of :class:`TransitionStats`: which table *rows*
    fired, not how often.

    Every transition adds one ``(table_name, state, event)`` triple —
    exactly the key the static lint enumerates rows by — so the coverage a
    run achieved can be diffed directly against
    :meth:`TransitionTable.lint`: a handled row that is reachable per lint
    but absent from :attr:`seen` was never exercised.  This is the feedback
    signal the litmus fuzzer (``repro fuzz``) steers by.
    """

    __slots__ = ("seen",)

    def __init__(self) -> None:
        self.seen: set[tuple[str, str, str]] = set()

    def on_transition(self, controller, addr, state, event, next_state,
                      table=None) -> None:
        name = table.name if table is not None else type(controller).__name__
        self.seen.add((name, state_label(state), event))

    def attach(self, *controllers) -> "TransitionCoverage":
        for controller in controllers:
            controller.add_fsm_hook(self)
        return self

    def attach_system(self, system) -> "TransitionCoverage":
        """Observe every table-driven controller (the passive LLC slices
        have no transition table, hence no rows to cover)."""
        return self.attach(*system.directories, *system.corepairs,
                           *system.tccs)

    def triples(self) -> list[tuple[str, str, str]]:
        """The covered rows as a sorted, JSON-stable list."""
        return sorted(self.seen)
