"""The §IV precise state-tracking system-level directory.

Tracks each line known to be cached above in one of three stable states —
``I`` (uncached), ``S`` (clean-shared), ``O`` (owned/exclusive/modified
somewhere) — plus the transient ``B`` while a directory entry is being
evicted.  Owner tracking alone enables:

- eliding *all* probes for requests to ``I`` and (for reads) ``S`` lines,
- probing only the owner (instead of broadcasting) for ``O`` lines,
- eliding the LLC/memory read when the owner's dirty data will serve the
  request, or when the requester itself is the tracked holder (upgrades).

Sharer tracking additionally narrows invalidations from broadcasts to
multicasts over the tracked sharer list (full-map by default, or a
limited-pointer list with broadcast-on-overflow).

The directory is itself a set-associative cache of entries; allocating into
a full set evicts a victim entry with back-invalidations to its tracked
holders (§IV-A1).  The transition rules implement Table I of the paper,
including its footnoted special cases; deviations are documented inline and
in DESIGN.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.coherence.directory import (
    EV_DIR_EVICT,
    DirectoryController,
    ProtocolError,
    RequestPlan,
    build_directory_table,
)
from repro.coherence.directory_entry import DirEntry, DirEntryStore
from repro.coherence.engine import ProtocolFSM, TransitionTable
from repro.coherence.llc import LastLevelCache
from repro.coherence.policies import DirectoryPolicy
from repro.coherence.transactions import Transaction
from repro.mem.cache_array import CacheArray, CacheLine
from repro.mem.main_memory import MainMemory
from repro.protocol.messages import Message
from repro.protocol.types import DirState, MoesiState, MsgType, ProbeType, RequesterKind
from repro.sim.clock import ClockDomain

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network

#: request types that allocate a tracking entry on a directory miss.
#: WT does not allocate: the TCC does not write-allocate in WT mode, so
#: there is nothing new to track.
_ALLOCATING = frozenset({MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM})

#: retry delay (directory cycles) when every way of a set is transaction-busy
_ALLOC_RETRY_CYCLES = 20.0

#: Table I events: the nine fabric requests that reach the state-update
#: point (Flush never changes directory state), plus entry evictions.
_T1_REQUESTS = tuple(
    m.value for m in (
        MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM,
        MsgType.VIC_DIRTY, MsgType.VIC_CLEAN,
        MsgType.WT, MsgType.ATOMIC, MsgType.DMA_RD, MsgType.DMA_WR,
    )
)
EV_EVICT_DONE = "EvictDone"  #: entry-eviction back-invalidations all acked


class PreciseDirectory(DirectoryController):
    """Owner- or sharer-tracking directory (``DirectoryKind.OWNER``/``SHARERS``)."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        llc: LastLevelCache,
        memory: MainMemory,
        policy: DirectoryPolicy,
        latency_cycles: float = 20.0,
        service_cycles: float = 2.0,
    ) -> None:
        super().__init__(
            sim, name, clock, network, llc, memory, policy,
            latency_cycles=latency_cycles, service_cycles=service_cycles,
        )
        policy.validate()
        if not policy.is_precise:
            raise ValueError("PreciseDirectory requires kind OWNER or SHARERS")
        # Replace the stateless Figure-2 table with the precise variant
        # (adds the DirEvict transitions) and declare Table I.
        self.fsm_table = build_directory_table(policy, precise=True)
        self.table1 = build_table1(policy)
        num_sets = max(1, policy.dir_entries // policy.dir_assoc)
        ways = min(policy.dir_assoc, policy.dir_entries)
        self.dir_cache = CacheArray(num_sets, ways)
        # struct-of-arrays entry planes, sized to the directory cache;
        # slots recycle through the store's free list as entries retire.
        self._entry_store = DirEntryStore(
            capacity=num_sets * ways,
            track_identities=policy.tracks_sharers,
            pointer_limit=policy.sharer_pointer_limit,
        )

    def fsm_tables(self):
        """Both declared tables: Figure-2 transactions and Table I entries."""
        return (self.fsm_table, self.table1)

    # -- entry helpers --------------------------------------------------------

    def _new_entry(self) -> DirEntry:
        return self._entry_store.alloc()

    def entry_line(self, addr: int, touch: bool = False) -> CacheLine | None:
        return self.dir_cache.lookup(addr, touch=touch)

    def dir_state(self, addr: int) -> DirState:
        line = self.entry_line(addr)
        return DirState.I if line is None else line.state

    def _holder_targets(self, line: CacheLine, include_owner: bool) -> list[str]:
        """Invalidation targets for a tracked line: multicast when the
        sharer identities are known, broadcast otherwise."""
        entry: DirEntry = line.meta
        targets: list[str] = []
        if line.state is DirState.O and include_owner and entry.owner is not None:
            targets.append(entry.owner)
        if entry.sharer_count > 0 or entry.overflow:
            if entry.multicast_possible:
                targets.extend(entry.sharers)  # type: ignore[arg-type]
            else:
                targets = list(dict.fromkeys(targets + self.all_cache_names()))
        return targets

    # -- allocation / eviction (§IV-A1) -----------------------------------------

    def prepare_entry(self, txn: Transaction) -> bool:
        line = self.entry_line(txn.addr, touch=True)
        if line is not None:
            txn.prior_state = line.state
            return True
        txn.prior_state = DirState.I
        if txn.request.mtype not in _ALLOCATING:
            return True
        if self.policy.is_readonly(txn.addr):
            # Declared read-only region (future work from the paper's
            # conclusion): reads are served untracked — no entry, no
            # probes, shared grant.  Writing a declared read-only region
            # violates the contract, like a page-protection fault.
            if txn.request.mtype is MsgType.RDBLKM:
                raise ProtocolError(
                    f"write-permission request to read-only region: {txn.request!r}"
                )
            self.stats.inc("readonly_reads_untracked")
            return True
        victim = self.dir_cache.choose_victim(txn.addr, cost_of=self._eviction_cost)
        if not victim.valid:
            self.dir_cache.install(
                txn.addr, state=DirState.B, meta=self._new_entry()
            )
            return True
        if victim.addr in self._active:
            # Every way busy with a transaction: retry shortly (re-fires
            # Launch out of the still-blocked B state).
            self.stats.inc("alloc_retries")
            self.schedule(_ALLOC_RETRY_CYCLES, self._launch, arg=txn)
            return False
        self._start_entry_eviction(victim, then=txn)
        return False

    def _eviction_cost(self, line: CacheLine) -> tuple[int, int, int]:
        busy = 1 if line.addr in self._active else 0
        if not self.policy.state_aware_dir_replacement:
            return (busy, 0, 0)
        # §VII future work: prefer unmodified entries with fewest sharers.
        entry: DirEntry = line.meta
        modified = 1 if line.state is DirState.O else 0
        return (busy, modified, entry.sharer_count)

    def _start_entry_eviction(self, victim: CacheLine, then: Transaction) -> None:
        """Evict a directory entry: back-invalidate its tracked holders,
        write any dirty data to the LLC, then relaunch the parked request.

        The eviction runs as its own Figure-2 transaction (``DirEvict`` out
        of ``U``); the entry walks Table I's ``S/O -> B -> I``.
        """
        self.stats.inc("dir_evictions")
        evict_req = Message(MsgType.PROBE, self.name, self.name, victim.addr)
        evict_txn = Transaction(evict_req, is_eviction=True)
        evict_txn.started_at = self.now
        evict_txn.fsm = ProtocolFSM(self.fsm_table, "U")
        self._active[victim.addr] = evict_txn
        evict_txn.on_complete = lambda: self.relaunch(then)
        evict_txn.fsm.fire(EV_DIR_EVICT, self, victim.addr, (evict_txn, victim))

    def _act_dir_evict(self, ctx: tuple) -> str:
        evict_txn, victim = ctx
        # targets must be computed before Table I's S/O -> B flip (the
        # owner is only probed while the entry still shows O)
        targets = self._holder_targets(victim, include_owner=True)
        ProtocolFSM(self.table1, victim.state).fire(
            EV_DIR_EVICT, self, victim.addr, victim
        )
        self.stats.inc("backward_invalidations", len(targets))
        if targets:
            evict_txn.on_all_acks = lambda: self._finish_eviction(evict_txn, victim)
            self._send_probes(evict_txn, targets, ProbeType.INVALIDATE)
        else:
            self._finish_eviction(evict_txn, victim)
        return self._fig2_next(evict_txn)

    def _finish_eviction(self, evict_txn: Transaction, victim: CacheLine) -> None:
        ProtocolFSM(self.table1, DirState.B).fire(
            EV_EVICT_DONE, self, victim.addr, (evict_txn, victim)
        )
        evict_txn.responded = True
        self._maybe_complete(evict_txn)

    def _act_t1_evict_begin(self, victim: CacheLine) -> DirState:
        victim.state = DirState.B  # Table I's transient B: requests stall
        return DirState.B

    def _act_t1_evict_done(self, ctx: tuple) -> DirState:
        evict_txn, victim = ctx
        if evict_txn.dirty_data is not None:
            displaced = self.llc.write_victim(
                victim.addr, evict_txn.dirty_data, dirty=True
            )
            if displaced is not None:
                self._mem_write(displaced.addr, displaced.data)
            if not self.policy.llc_writeback:
                self._mem_write(victim.addr, evict_txn.dirty_data)
        self._drop_entry(victim)
        return DirState.I

    # -- request planning (Table I) ------------------------------------------------

    def plan_request(self, txn: Transaction) -> RequestPlan:
        req = txn.request
        mtype = req.mtype
        state: DirState = txn.prior_state  # type: ignore[assignment]
        line = self.entry_line(txn.addr)
        entry: DirEntry | None = line.meta if line is not None else None
        plan = RequestPlan(needs_data=mtype in {
            MsgType.RDBLK, MsgType.RDBLKS, MsgType.RDBLKM, MsgType.DMA_RD, MsgType.ATOMIC,
        })

        requester_is_tracked_holder = (
            entry is not None
            and req.requester_kind is RequesterKind.CPU_L2
            and (
                (state is DirState.O and entry.owner == req.requester)
                or (
                    state is DirState.S
                    and entry.tracks_identities
                    and not entry.overflow
                    and req.requester in (entry.sharers or ())
                )
            )
        )

        if mtype.is_read_permission:
            if state is DirState.O:
                assert entry is not None and entry.owner is not None
                plan.probe_targets = [entry.owner]
                plan.probe_type = ProbeType.DOWNGRADE
                # Expect the owner's dirty data; fall back to a deferred
                # LLC/memory read if the owner turns out to hold E (clean).
                plan.read_data_now = False
            else:
                # I: nothing cached above.  S: LLC/memory guaranteed
                # coherent.  Either way, no probes (the paper's main win).
                plan.read_data_now = plan.needs_data
        elif mtype.is_write_permission:
            if self.policy.is_readonly(txn.addr):
                raise ProtocolError(
                    f"write-permission request to read-only region: {req!r}"
                )
            plan.probe_type = ProbeType.INVALIDATE
            if mtype is MsgType.ATOMIC:
                # The atomic commits here, not at the requester: a tracked
                # requester copy (a fill that raced in behind the atomic)
                # must be invalidated like any other holder's, or it
                # outlives the dropped directory entry as stale data.
                plan.probe_requester = True
            if state is DirState.O:
                assert line is not None
                plan.probe_targets = self._holder_targets(line, include_owner=True)
            elif state is DirState.S:
                assert line is not None
                plan.probe_targets = self._holder_targets(line, include_owner=False)
            if requester_is_tracked_holder and mtype is MsgType.RDBLKM:
                # Upgrade: the requester already holds the data; elide the
                # LLC/memory read entirely ("the LLC reads are elided").
                plan.needs_data = False
                self.stats.inc("upgrade_data_elided")
            else:
                plan.read_data_now = plan.needs_data and state is not DirState.O
        return plan

    def grant_state(self, txn: Transaction) -> MoesiState:
        mtype = txn.request.mtype
        if mtype is MsgType.RDBLKM:
            return MoesiState.M
        if mtype is MsgType.RDBLKS:
            return MoesiState.S
        if self.policy.is_readonly(txn.addr):
            # untracked read-only line: never exclusive (E could silently
            # become M without anyone knowing)
            return MoesiState.S
        # RdBlk: in S the response is forced shared (it comes from the LLC
        # without consulting the sharers); in O, any surviving copy denies
        # exclusivity; in I (or an O whose owner vanished), grant E.
        state: DirState = txn.prior_state  # type: ignore[assignment]
        if state is DirState.S:
            return MoesiState.S
        if txn.dirty_data is not None or txn.any_copy_acked:
            return MoesiState.S
        return MoesiState.E

    # -- victims ----------------------------------------------------------------------

    def accept_victim(self, txn: Transaction) -> bool:
        req = txn.request
        line = self.entry_line(txn.addr)
        if line is None:
            return False  # stale: the entry was evicted/overwritten meanwhile
        entry: DirEntry = line.meta
        if req.mtype is MsgType.VIC_DIRTY:
            return line.state is DirState.O and entry.owner == req.requester
        # VicClean: from the owner (an E line, footnote g) or from a sharer
        # — including a dirty sharer of an O line (footnote h: non-owner
        # copies evict clean, the owner keeps the write-back duty).
        if line.state is DirState.O and (
            entry.owner == req.requester or entry.is_sharer(req.requester)
        ):
            return True
        if line.state is DirState.S and entry.is_sharer(req.requester):
            return True
        return False

    # -- state updates (Table I) ----------------------------------------------------------

    def update_state_after_response(self, txn: Transaction) -> None:
        """Fire the Table I transition for the completed request.

        The FSM starts from :attr:`~Transaction.prior_state` — the stable
        state recorded when the transaction launched (the line is blocked in
        between, so nothing else can move it) — and each action reports the
        resulting stable state, which the engine checks against Table I's
        declared next-states.
        """
        prior: DirState = txn.prior_state  # type: ignore[assignment]
        ProtocolFSM(self.table1, prior).fire(
            txn.request.mtype.value, self, txn.addr, txn
        )

    # -- Table I actions (return the resulting stable state) --------------------

    def _act_t1_read(self, txn: Transaction) -> DirState:
        line = self.entry_line(txn.addr)
        if line is None and self.policy.is_readonly(txn.addr):
            return DirState.I  # untracked read-only read: nothing to record
        self._update_after_read(txn, line)
        return self.dir_state(txn.addr)

    def _act_t1_rdblkm(self, txn: Transaction) -> DirState:
        self._update_after_rdblkm(txn, self.entry_line(txn.addr))
        return self.dir_state(txn.addr)

    def _act_t1_wt(self, txn: Transaction) -> DirState:
        self._update_after_wt(txn, self.entry_line(txn.addr))
        return self.dir_state(txn.addr)

    def _act_t1_drop(self, txn: Transaction) -> DirState:
        self._drop_entry(self.entry_line(txn.addr))
        return DirState.I

    def _act_t1_keep(self, txn: Transaction) -> DirState:
        return self.dir_state(txn.addr)

    def _act_t1_dma_rd(self, txn: Transaction) -> DirState:
        line = self.entry_line(txn.addr)
        if line is not None and line.state is DirState.O:
            entry: DirEntry = line.meta
            if txn.dirty_data is not None:
                pass  # dirty owner answered the probe and keeps write-back duty
            elif txn.any_copy_acked:
                # Footnote f analogue: the owner held E and the DMA probe
                # downgraded it to S; the line is now clean-shared.
                old_owner = entry.owner
                line.state = DirState.S
                entry.owner = None
                if old_owner is not None:
                    entry.add_sharer(old_owner)
            else:
                # The owner's copy was gone (victim in flight, later dropped
                # as stale): surviving sharers keep a clean-shared entry.
                entry.owner = None
                if entry.sharer_count > 0 or entry.overflow:
                    line.state = DirState.S
                else:
                    self._drop_entry(line)
        return self.dir_state(txn.addr)

    def _act_t1_victim(self, txn: Transaction) -> DirState:
        self._update_after_victim(txn, self.entry_line(txn.addr))
        return self.dir_state(txn.addr)

    def _update_after_read(self, txn: Transaction, line: CacheLine | None) -> None:
        req = txn.request
        state: DirState = txn.prior_state  # type: ignore[assignment]
        if line is None:
            raise ProtocolError(f"read response without a directory entry: {txn!r}")
        entry: DirEntry = line.meta
        requester = req.requester
        is_cpu = req.requester_kind is RequesterKind.CPU_L2
        granted = self.grant_state(txn)
        if state is DirState.I:
            if granted is MoesiState.E and is_cpu:
                line.state = DirState.O
                entry.owner = requester
                entry.clear_sharers()
            else:
                line.state = DirState.S
                entry.owner = None
                entry.clear_sharers()
                entry.add_sharer(requester)
        elif state is DirState.S:
            line.state = DirState.S
            entry.add_sharer(requester)
        else:  # O
            if txn.dirty_data is not None:
                # Owner downgraded M->O (or stayed O); requester joins dirty-shared.
                line.state = DirState.O
                entry.add_sharer(requester)
            elif txn.any_copy_acked:
                # Footnotes d/f: the owner actually held E and downgraded to
                # S; the line is now clean-shared under the LLC/memory.
                old_owner = entry.owner
                line.state = DirState.S
                entry.owner = None
                if old_owner is not None:
                    entry.add_sharer(old_owner)
                entry.add_sharer(requester)
            else:
                # The owner's copy was gone (victim in flight, later dropped
                # as stale): the requester becomes the new tracked holder.
                if granted is MoesiState.E and is_cpu:
                    line.state = DirState.O
                    entry.owner = requester
                    entry.clear_sharers()
                else:
                    line.state = DirState.S
                    entry.owner = None
                    entry.clear_sharers()
                    entry.add_sharer(requester)

    def _update_after_rdblkm(self, txn: Transaction, line: CacheLine | None) -> None:
        if line is None:
            raise ProtocolError(f"RdBlkM response without a directory entry: {txn!r}")
        entry: DirEntry = line.meta
        line.state = DirState.O
        entry.owner = txn.request.requester
        entry.clear_sharers()

    def _update_after_wt(self, txn: Transaction, line: CacheLine | None) -> None:
        req = txn.request
        if line is None:
            return  # untracked line; nothing changes (WT never allocates)
        if req.is_writeback:
            # TCC eviction/flush write-back: the TCC no longer holds the
            # line and every other holder was just invalidated.
            self._drop_entry(line)
            return
        # Streaming write-through: every holder except the writing TCC was
        # invalidated; the TCC keeps its copy only if it had one.
        entry: DirEntry = line.meta
        keeps_copy = entry.is_sharer(req.requester) or (
            line.state is DirState.O and entry.owner == req.requester
        )
        if not keeps_copy:
            self._drop_entry(line)
            return
        line.state = DirState.S
        entry.owner = None
        entry.clear_sharers()
        entry.add_sharer(req.requester)

    def _update_after_victim(self, txn: Transaction, line: CacheLine | None) -> None:
        if line is None:
            return  # stale victim, already dropped
        req = txn.request
        entry: DirEntry = line.meta
        if line.state is DirState.O and entry.owner == req.requester:
            # Owner write-back (VicDirty) or E eviction (VicClean).  The
            # LLC is now coherent with any remaining dirty sharers
            # (footnote h), so the line becomes clean-shared or dies.
            # (§VII: the conservative alternative deallocates the entry and
            # invalidates those sharers, costing extra probes.)
            entry.owner = None
            if entry.sharer_count > 0 or entry.overflow:
                if self.policy.vicdirty_invalidates_sharers:
                    self._invalidate_sharers_and_drop(line)
                else:
                    line.state = DirState.S
            else:
                self._drop_entry(line)
        elif line.state is DirState.S and req.mtype is MsgType.VIC_CLEAN:
            entry.remove_sharer(req.requester)
            if entry.sharer_count == 0 and not entry.overflow:
                self._drop_entry(line)
        elif (
            line.state is DirState.O
            and req.mtype is MsgType.VIC_CLEAN
            and entry.is_sharer(req.requester)
        ):
            # a (possibly dirty) sharer of an owned line evicted clean
            entry.remove_sharer(req.requester)
        # Stale victims (accept_victim returned False) change nothing.

    def _invalidate_sharers_and_drop(self, line: CacheLine) -> None:
        """§VII conservative VicDirty handling: deallocate the entry and
        invalidate the remaining (dirty) sharers.  The probes ride on the
        still-active victim transaction, which completes once they ack."""
        txn = self._active[line.addr]
        targets = [
            t for t in self._holder_targets(line, include_owner=False)
            if t != txn.request.requester
        ]
        self._drop_entry(line)
        if targets:
            self.stats.inc("vicdirty_sharer_invalidations", len(targets))
            self._send_probes(txn, targets, ProbeType.INVALIDATE)

    def _drop_entry(self, line: CacheLine | None) -> None:
        if line is not None:
            entry = line.meta
            self.dir_cache.invalidate(line.addr)
            if entry is not None:
                self._entry_store.release(entry)

    # -- introspection for verification ---------------------------------------------------

    def snapshot_entry(self, addr: int) -> tuple[DirState, DirEntry | None]:
        line = self.entry_line(addr)
        if line is None:
            return DirState.I, None
        return line.state, line.meta


# -- Table I --------------------------------------------------------------------


_T1_CACHE: dict[tuple, TransitionTable] = {}

OVL_DMA_KEEPS_STATE = "DMA leaves dir state (dma_updates_dir_state=False)"
OVL_CONSERVATIVE_VIC = "conservative VicDirty (§VII)"


def build_table1(policy: DirectoryPolicy) -> TransitionTable:
    """Declare the paper's Table I over the stable states ``I/S/O`` (plus
    the transient ``B`` of an entry eviction).

    Multiple declared next-states mirror Table I's footnoted splits: e.g.
    ``(I, RdBlk) -> O|S|I`` is "grant E to a lone CPU reader (track as O,
    footnote a), else S" with ``I`` covering untracked read-only regions,
    and ``(O, RdBlk) -> O|S`` is footnotes d/f (the owner's ack decides
    whether the line stays dirty-owned or decays to clean-shared).
    """
    key = (policy.dma_updates_dir_state, policy.vicdirty_invalidates_sharers)
    cached = _T1_CACHE.get(key)
    if cached is not None:
        return cached

    P = PreciseDirectory
    states = (DirState.I, DirState.S, DirState.O, DirState.B)
    events = _T1_REQUESTS + (EV_DIR_EVICT, EV_EVICT_DONE)
    table = TransitionTable("dir-table1", states, events, initial=DirState.I)
    I, S, O, B = DirState.I, DirState.S, DirState.O, DirState.B
    rd = (MsgType.RDBLK.value, MsgType.RDBLKS.value)
    rdm = MsgType.RDBLKM.value
    wt = MsgType.WT.value
    atomic = MsgType.ATOMIC.value
    dma_rd = MsgType.DMA_RD.value
    dma_wr = MsgType.DMA_WR.value
    vic_d = MsgType.VIC_DIRTY.value
    vic_c = MsgType.VIC_CLEAN.value

    # I: nothing tracked above.
    table.on(I, MsgType.RDBLK.value, (O, S, I), action=P._act_t1_read,
             note="lone CPU reader granted E is tracked as O (fn. a); GPU or "
                  "forced-shared readers as S; read-only regions untracked")
    table.on(I, MsgType.RDBLKS.value, (S, I), action=P._act_t1_read,
             note="shared-read fill; I only for untracked read-only regions")
    table.on(I, rdm, O, action=P._act_t1_rdblkm,
             note="write fill: requester becomes owner")
    table.on(I, wt, I, action=P._act_t1_wt,
             note="WT never allocates (the TCC does not write-allocate)")
    table.on(I, atomic, I, action=P._act_t1_drop)
    table.on(I, dma_rd, I, action=P._act_t1_keep, note="DMA reads don't track")
    table.on(I, dma_wr, I,
             action=P._act_t1_drop if policy.dma_updates_dir_state
             else P._act_t1_keep)
    table.on(I, (vic_d, vic_c), I, action=P._act_t1_victim,
             note="stale victim: the entry was already evicted")

    # S: clean-shared under the LLC/memory.
    table.on(S, rd, S, action=P._act_t1_read, note="another sharer joins")
    table.on(S, rdm, O, action=P._act_t1_rdblkm,
             note="upgrade: sharers invalidated, requester owns")
    table.on(S, wt, (S, I), action=P._act_t1_wt,
             note="holders invalidated; the writing TCC keeps its copy only "
                  "if it was a tracked sharer")
    table.on(S, atomic, I, action=P._act_t1_drop,
             note="system-scope atomic invalidates every copy")
    table.on(S, dma_rd, S, action=P._act_t1_keep)
    if policy.dma_updates_dir_state:
        table.on(S, dma_wr, I, action=P._act_t1_drop,
                 note="DMA write invalidates the tracked copies")
    else:
        table.on(S, dma_wr, S, action=P._act_t1_keep,
                 overlay=OVL_DMA_KEEPS_STATE)
    table.on(S, vic_c, (S, I), action=P._act_t1_victim,
             note="sharer leaves; last one frees the entry")
    table.on(S, vic_d, S, action=P._act_t1_victim,
             note="VicDirty from a non-owner is stale: dropped, no change")

    # O: owned (E/M/O somewhere above); the owner holds write-back duty.
    table.on(O, rd, (O, S), action=P._act_t1_read,
             note="dirty owner keeps O (fn. d); an E owner downgrades to S "
                  "(fn. f); a vanished owner hands the line to the requester")
    table.on(O, rdm, O, action=P._act_t1_rdblkm,
             note="ownership transfers to the requester")
    table.on(O, wt, (S, I), action=P._act_t1_wt,
             note="write-back frees the entry; streaming WT may keep the TCC")
    table.on(O, atomic, I, action=P._act_t1_drop)
    table.on(O, dma_rd, (O, S, I), action=P._act_t1_dma_rd,
             note="DMA read probes the owner: a dirty owner answers and "
                  "keeps O (fn. d); a clean E owner downgrades to S (fn. f); "
                  "a vanished owner leaves sharers clean-shared or frees "
                  "the entry")
    if policy.dma_updates_dir_state:
        table.on(O, dma_wr, I, action=P._act_t1_drop)
    else:
        table.on(O, dma_wr, O, action=P._act_t1_keep,
                 overlay=OVL_DMA_KEEPS_STATE)
    if policy.vicdirty_invalidates_sharers:
        table.on(O, (vic_d, vic_c), (O, I), action=P._act_t1_victim,
                 overlay=OVL_CONSERVATIVE_VIC,
                 note="owner write-back deallocates and invalidates the "
                      "remaining sharers (§VII); non-owner victims keep O")
    else:
        table.on(O, (vic_d, vic_c), (O, S, I), action=P._act_t1_victim,
                 note="owner write-back: remaining sharers become clean-shared "
                      "(fn. h) or the entry dies; non-owner victims keep O")

    # Entry evictions (§IV-A1): S/O -> B while back-invalidating, then I.
    table.on((S, O), EV_DIR_EVICT, B, action=P._act_t1_evict_begin,
             note="entry eviction begins: requests to the line stall")
    table.on(B, EV_EVICT_DONE, I, action=P._act_t1_evict_done,
             note="holders acked: write dirty data to the LLC, free the entry")

    # Illegal pairs: B is only visible to the eviction machinery (requests
    # to a B line queue at the Figure-2 layer and launch after EvictDone).
    table.illegal(B, _T1_REQUESTS,
                  note="blocked entry: requests queue behind the eviction")
    table.illegal((I, B), EV_DIR_EVICT,
                  note="only resident stable entries are eviction victims")
    table.illegal((I, S, O), EV_EVICT_DONE,
                  note="no eviction in progress")

    _T1_CACHE[key] = table
    return table
