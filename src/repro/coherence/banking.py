"""Address-interleaved directory banking (§VII: distributed directories).

The paper reserves distributed directories as future work and notes the
state-tracking directory "can be made compatible" with them.  We implement
the standard design: N directory banks, each owning the lines whose line
number is congruent to its index mod N, each backed by its own LLC slice.
Requests route by address; only the TCC's Flush fence fans out to every
bank (it orders *all* prior write-throughs).

A :class:`DirectoryMap` is accepted anywhere a directory name is: a plain
string behaves as a single-bank map.
"""

from __future__ import annotations

from repro.mem.address import LINE_BYTES


class DirectoryMap:
    """Routes line addresses to directory bank names."""

    def __init__(self, bank_names: list[str]) -> None:
        if not bank_names:
            raise ValueError("a directory map needs at least one bank")
        self.bank_names = list(bank_names)

    def bank_of(self, addr: int) -> str:
        index = (addr // LINE_BYTES) % len(self.bank_names)
        return self.bank_names[index]

    def all_banks(self) -> list[str]:
        return list(self.bank_names)

    def __len__(self) -> int:
        return len(self.bank_names)

    def __repr__(self) -> str:
        return f"DirectoryMap({self.bank_names})"


def as_directory_map(target: "str | DirectoryMap") -> DirectoryMap:
    """Normalize a directory name or map into a map."""
    if isinstance(target, DirectoryMap):
        return target
    return DirectoryMap([target])
