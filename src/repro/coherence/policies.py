"""Directory/LLC policy knobs — one field per idea in the paper.

The experiment harness builds systems that differ *only* in one of these
records, so every measured delta is attributable to a single knob, exactly
like the per-optimization bars of Figures 4-7.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace


class DirectoryKind(enum.Enum):
    """Which directory implementation services the system."""

    STATELESS = "stateless"   # the gem5 baseline (§II-D)
    OWNER = "owner"           # precise directory, owner tracking only (§IV-A)
    SHARERS = "sharers"       # precise directory, owner + sharer tracking (§IV-B)


@dataclass(frozen=True)
class DirectoryPolicy:
    """Every §III / §IV knob, with baseline defaults.

    Baseline = stateless directory, write-through LLC, clean and dirty
    victims written both to the LLC and to memory, probes broadcast on every
    permission request.
    """

    kind: DirectoryKind = DirectoryKind.STATELESS

    #: §III-A: respond to the requester from the first dirty probe ack
    #: instead of waiting for all acks plus the LLC/memory response.
    early_dirty_response: bool = False

    #: §III-B: when False, clean victims are written to the LLC only,
    #: saving the memory write (dirty victims unaffected).
    clean_victims_to_memory: bool = True

    #: §III-B1: when False, clean victims are not cached in the LLC either
    #: (they are "lost in the air").
    clean_victims_to_llc: bool = True

    #: §III-C: write-back LLC. Victims (clean or dirty) only write the LLC;
    #: the LLC line's dirty bit defers the memory write to LLC eviction.
    #: Implies clean_victims_to_memory is ignored (no victim writes memory).
    llc_writeback: bool = False

    #: gem5's useL3OnWT: GPU write-throughs and system-scope atomics also
    #: write the LLC instead of bypassing it straight to memory.
    use_l3_on_wt: bool = False

    #: §IV-B: cap on tracked sharers (limited-pointer directory).  None
    #: means a full-map bitmap; on overflow the entry falls back to
    #: broadcasting invalidations (Table I footnote b).
    sharer_pointer_limit: int | None = None

    #: Precise directory geometry: number of tracking entries and ways.
    dir_entries: int = 262_144  # 256 KB of 1 B entries (Table II)
    dir_assoc: int = 32

    #: §VII future work: directory replacement prefers unmodified entries
    #: with the fewest sharers (state-aware PLRU) over plain Tree-PLRU.
    state_aware_dir_replacement: bool = False

    #: Whether DMA requests update precise-directory state (see DESIGN.md;
    #: False keeps the paper's literal "no state alteration" and relies on
    #: the safe-but-stale probe fallback path).
    dma_updates_dir_state: bool = True

    #: §VII (second idea): on a VicDirty from the owner, the default keeps
    #: the remaining dirty sharers tracked (the O→S transition of Table I —
    #: "need not invalidate dirty sharers").  The conservative alternative
    #: invalidates them and deallocates the entry, costing extra probes.
    vicdirty_invalidates_sharers: bool = False

    #: Future work from the paper's conclusion: address regions guaranteed
    #: read-only are not tracked by the precise directory — reads are
    #: served without allocating entries (or probing).  Writes into a
    #: declared region fall back to broadcast invalidations for safety.
    readonly_regions: tuple[tuple[int, int], ...] = ()

    #: §VII (third idea): number of address-interleaved directory banks
    #: (1 = the paper's monolithic directory).
    dir_banks: int = 1

    #: Maximum concurrent transactions per directory bank (gem5's TBE
    #: count).  None = unbounded.  Requests beyond the limit stall in the
    #: directory's admission queue.
    dir_max_transactions: int | None = None

    def named(self, **changes: object) -> "DirectoryPolicy":
        """A copy with some knobs changed."""
        return replace(self, **changes)

    @property
    def is_precise(self) -> bool:
        return self.kind is not DirectoryKind.STATELESS

    @property
    def tracks_sharers(self) -> bool:
        return self.kind is DirectoryKind.SHARERS

    def validate(self) -> None:
        if self.dir_entries < 1 or self.dir_assoc < 1:
            raise ValueError("directory geometry must be positive")
        if self.sharer_pointer_limit is not None and self.sharer_pointer_limit < 1:
            raise ValueError("sharer_pointer_limit must be >= 1 or None")
        if self.sharer_pointer_limit is not None and not self.tracks_sharers:
            raise ValueError("sharer_pointer_limit requires kind=SHARERS")
        if self.dir_banks < 1:
            raise ValueError("dir_banks must be >= 1")
        if self.dir_max_transactions is not None and self.dir_max_transactions < 1:
            raise ValueError("dir_max_transactions must be >= 1 or None")
        for start, end in self.readonly_regions:
            if end <= start:
                raise ValueError(f"bad read-only region [{start:#x}, {end:#x})")

    def is_readonly(self, addr: int) -> bool:
        return any(start <= addr < end for start, end in self.readonly_regions)


# Named policy presets used throughout the benchmarks, mirroring the bar
# labels of Figures 4-7.
BASELINE = DirectoryPolicy()
EARLY_DIRTY = BASELINE.named(early_dirty_response=True)
NO_WB_CLEAN_VIC = BASELINE.named(clean_victims_to_memory=False)
NO_CLEAN_VIC_TO_LLC = BASELINE.named(
    clean_victims_to_memory=False, clean_victims_to_llc=False
)
LLC_WB = BASELINE.named(clean_victims_to_memory=False, llc_writeback=True)
LLC_WB_USEL3 = LLC_WB.named(use_l3_on_wt=True)
OWNER_TRACKING = LLC_WB_USEL3.named(kind=DirectoryKind.OWNER)
SHARER_TRACKING = LLC_WB_USEL3.named(kind=DirectoryKind.SHARERS)

PRESETS: dict[str, DirectoryPolicy] = {
    "baseline": BASELINE,
    "earlyDirtyResp": EARLY_DIRTY,
    "noWBcleanVic": NO_WB_CLEAN_VIC,
    "noCleanVicToLLC": NO_CLEAN_VIC_TO_LLC,
    "llcWB": LLC_WB,
    "llcWB+useL3OnWT": LLC_WB_USEL3,
    "owner": OWNER_TRACKING,
    "sharers": SHARER_TRACKING,
}
