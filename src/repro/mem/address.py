"""Address arithmetic for a 64-byte-line, 4-byte-word memory system."""

from __future__ import annotations

LINE_BYTES = 64
BYTES_PER_WORD = 4
WORDS_PER_LINE = LINE_BYTES // BYTES_PER_WORD

_LINE_MASK = ~(LINE_BYTES - 1)


def line_addr(addr: int) -> int:
    """The line-aligned base address containing byte address ``addr``."""
    return addr & _LINE_MASK


def word_index(addr: int) -> int:
    """The index of the 4-byte word within its line."""
    return (addr & (LINE_BYTES - 1)) // BYTES_PER_WORD


def make_addr(line_number: int, word: int = 0) -> int:
    """Byte address of ``word`` in the ``line_number``-th line of memory."""
    if not 0 <= word < WORDS_PER_LINE:
        raise ValueError(f"word index {word} out of range [0, {WORDS_PER_LINE})")
    return line_number * LINE_BYTES + word * BYTES_PER_WORD
