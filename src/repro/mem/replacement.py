"""Replacement policies for set-associative structures.

The paper's caches use Tree-PLRU (Table II).  Its future-work section (§VII)
proposes a directory replacement policy that avoids victimizing lines with
many sharers or in modified states; :class:`StateAwarePLRU` implements that
idea — victims are chosen by a caller-supplied cost key, with Tree-PLRU
breaking ties — and is benchmarked in the ablation suite.
"""

from __future__ import annotations

import copy
from typing import Callable, Iterable


class ReplacementPolicy:
    """Per-set replacement state.  One instance per cache set."""

    def __init__(self, ways: int) -> None:
        self.ways = ways

    def touch(self, way: int) -> None:
        """Record an access to ``way``."""
        raise NotImplementedError

    def victim(self) -> int:
        """Choose the way to replace."""
        raise NotImplementedError


class LRU(ReplacementPolicy):
    """Exact least-recently-used."""

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order = list(range(ways))  # least recent first

    def touch(self, way: int) -> None:
        self._order.remove(way)
        self._order.append(way)

    def victim(self) -> int:
        return self._order[0]


class TreePLRU(ReplacementPolicy):
    """Tree pseudo-LRU over the next power of two of ``ways``.

    Internal nodes hold one bit each: 0 means "the LRU side is the left
    subtree", 1 means right.  Touching a way flips the bits on its root path
    to point away from it; the victim walk follows the bits.  For non-power-
    of-two associativities the walk is re-run with the reached leaf marked
    most-recent until it lands on a real way (bounded by tree height).
    """

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._leaves = 1
        while self._leaves < ways:
            self._leaves *= 2
        # bits[1] is the root; children of node i are 2i and 2i+1.
        self._bits = [0] * self._leaves

    def touch(self, way: int) -> None:
        node = 1
        span = self._leaves
        base = 0
        while span > 1:
            span //= 2
            if way < base + span:
                self._bits[node] = 1  # LRU side is now the right
                node = 2 * node
            else:
                self._bits[node] = 0
                node = 2 * node + 1
                base += span
        # leaf reached; nothing stored at leaves

    def victim(self) -> int:
        for _attempt in range(self._leaves):
            node = 1
            span = self._leaves
            base = 0
            while span > 1:
                span //= 2
                if self._bits[node] == 0:
                    node = 2 * node
                else:
                    node = 2 * node + 1
                    base += span
            if base < self.ways:
                return base
            # Padding leaf (non-power-of-two ways): mark it recent and retry.
            self.touch(base)
        raise RuntimeError("TreePLRU failed to find a victim")  # pragma: no cover


class StateAwarePLRU(TreePLRU):
    """Tree-PLRU that first filters candidates by a replacement cost key.

    ``cost_of(way)`` returns an orderable cost (lower = cheaper to evict,
    e.g. unmodified lines with fewest sharers).  Among the minimum-cost ways
    the PLRU walk's preference decides.  This is the §VII future-work
    directory replacement policy.
    """

    def __init__(self, ways: int, cost_of: Callable[[int], tuple | int] | None = None) -> None:
        super().__init__(ways)
        self.cost_of = cost_of

    def victim(self) -> int:
        if self.cost_of is None:
            return super().victim()
        costs = [self.cost_of(way) for way in range(self.ways)]
        cheapest = min(costs)
        candidates = [way for way, cost in enumerate(costs) if cost == cheapest]
        if len(candidates) == 1:
            return candidates[0]
        plru_choice = super().victim()
        if plru_choice in candidates:
            return plru_choice
        # Fall back to the candidate the PLRU bits consider least recent:
        # walk candidates in PLRU preference order by repeatedly victimizing.
        return preferred_order(self, candidates)[0]


def policy_factory(name: str) -> Callable[[int], ReplacementPolicy]:
    """Look up a replacement-policy constructor by name."""
    table: dict[str, Callable[[int], ReplacementPolicy]] = {
        "lru": LRU,
        "tree_plru": TreePLRU,
        "state_aware_plru": StateAwarePLRU,
    }
    try:
        return table[name]
    except KeyError:
        raise ValueError(
            f"unknown replacement policy {name!r}; choose from {sorted(table)}"
        ) from None


def _enumerate_preference(clone: ReplacementPolicy) -> list[int]:
    """Drain ``clone``'s full victim preference by repeated victimize+touch.

    Each round asks for the victim, records it, and touches it (making it
    most-recent) so the next round surfaces the next-preferred way.  The
    caller must pass a disposable copy — the walk mutates the policy state.
    """
    ranking: list[int] = []
    remaining = set(range(clone.ways))
    leaves = getattr(clone, "_leaves", clone.ways)
    guard = 4 * leaves * leaves + 16
    while remaining:
        guard -= 1
        if guard < 0:  # pragma: no cover - defensive against bad policies
            raise RuntimeError(
                f"replacement policy {clone!r} did not yield all ways"
            )
        victim = clone.victim()
        if victim in remaining:
            ranking.append(victim)
            remaining.discard(victim)
        clone.touch(victim)
    return ranking


def preferred_order(
    policy: ReplacementPolicy, ways: Iterable[int] | None = None
) -> list[int]:
    """Rank ``ways`` (default: all of them) from most- to least-preferred
    victim, without disturbing the live policy state.

    For :class:`StateAwarePLRU` with a cost function the ranking is by
    ``(cost, PLRU recency)``; for every other policy it is the pure
    recency order obtained by repeatedly victimizing a copy.
    """
    requested = list(range(policy.ways)) if ways is None else list(ways)
    invalid = [way for way in requested if not 0 <= way < policy.ways]
    if invalid:
        raise ValueError(f"ways out of range for {policy.ways}-way policy: {invalid}")
    if isinstance(policy, StateAwarePLRU) and policy.cost_of is not None:
        # Cost-based victims never surface expensive ways, so enumerate the
        # underlying tree instead and order by (cost, PLRU preference).
        tree = TreePLRU(policy.ways)
        tree._bits = list(policy._bits)
        plru_rank = {way: r for r, way in enumerate(_enumerate_preference(tree))}
        return sorted(requested, key=lambda way: (policy.cost_of(way), plru_rank[way]))
    rank = {
        way: r for r, way in enumerate(_enumerate_preference(copy.deepcopy(policy)))
    }
    return sorted(requested, key=lambda way: rank[way])
