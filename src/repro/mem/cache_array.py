"""Set-associative tag/data arrays.

:class:`CacheArray` is the storage substrate shared by every cache in the
system — CPU L1/L2, GPU TCP/TCC/SQC, the LLC, and the directory cache (whose
"lines" are tracking entries rather than data).  Protocol state is opaque to
the array: controllers store whatever state enum they use in
:attr:`CacheLine.state` and extra tracking info in :attr:`CacheLine.meta`.

Storage layout: line state lives in struct-of-arrays *planes* — parallel
lists (``_addr``, ``_state``, ``_data``, ``_dirty``, ``_meta``, ``_valid``)
indexed by the flat slot ``set_idx * ways + way`` — rather than one Python
object per line.  Controllers keep the object-style API: :meth:`lookup` and
friends hand out a per-slot :class:`_LineView` whose attributes read and
write the planes, so ``line.state = X`` works exactly as before.  Hot paths
can skip the view entirely with the index API (:meth:`find`,
:meth:`find_touch` plus the plane lists), turning lookup/touch/state-update
into dict-get + list indexing.

Replacement: arrays built with the default :class:`TreePLRU` keep the whole
per-set tree in one integer (bit ``n`` of ``_plru[set]`` is node ``n`` of
the tree) — ``touch`` is a single masked or using per-way masks precomputed
from the reference implementation, and ``victim`` is a memoized
``bits -> (way, bits_after)`` table populated by running the reference walk,
so the chosen victims (including the non-power-of-two padding-leaf retries,
which mutate the tree) are bit-identical to the object policies.  Any other
replacement policy falls back to one policy object per set, as before.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.mem.address import LINE_BYTES
from repro.mem.block import LineData
from repro.mem.replacement import ReplacementPolicy, TreePLRU, preferred_order


class CacheLine:
    """A detached line snapshot (evictions, invalidations).

    Resident lines are :class:`_LineView` objects backed by the array's
    planes; this plain record carries the same attributes for lines that
    have left the array.
    """

    __slots__ = ("valid", "addr", "state", "data", "dirty", "meta", "set_idx", "way")

    def __init__(self) -> None:
        self.valid = False
        self.addr = -1  # line-aligned address when valid
        self.state: Any = None
        self.data: LineData | None = None
        self.dirty = False
        self.meta: Any = None
        # geometry position (-1 for detached snapshots).
        self.set_idx = -1
        self.way = -1

    def reset(self) -> None:
        self.valid = False
        self.addr = -1
        self.state = None
        self.data = None
        self.dirty = False
        self.meta = None

    def __repr__(self) -> str:
        if not self.valid:
            return "CacheLine(invalid)"
        return (
            f"CacheLine(addr={self.addr:#x}, state={self.state}, "
            f"dirty={self.dirty})"
        )


class _LineView:
    """A live window onto one slot of the array's planes.

    One view per slot, built once with the array; identity is stable, so
    holding a view across time behaves exactly like holding the old
    per-way ``CacheLine`` object (it always shows the slot's *current*
    occupant).
    """

    __slots__ = ("_array", "_slot")

    def __init__(self, array: "CacheArray", slot: int) -> None:
        self._array = array
        self._slot = slot

    @property
    def valid(self) -> bool:
        return self._array._valid[self._slot]

    @valid.setter
    def valid(self, value: bool) -> None:
        self._array._valid[self._slot] = value

    @property
    def addr(self) -> int:
        return self._array._addr[self._slot]

    @addr.setter
    def addr(self, value: int) -> None:
        self._array._addr[self._slot] = value

    @property
    def state(self) -> Any:
        return self._array._state[self._slot]

    @state.setter
    def state(self, value: Any) -> None:
        self._array._state[self._slot] = value

    @property
    def data(self) -> LineData | None:
        return self._array._data[self._slot]

    @data.setter
    def data(self, value: LineData | None) -> None:
        self._array._data[self._slot] = value

    @property
    def dirty(self) -> bool:
        return self._array._dirty[self._slot]

    @dirty.setter
    def dirty(self, value: bool) -> None:
        self._array._dirty[self._slot] = value

    @property
    def meta(self) -> Any:
        return self._array._meta[self._slot]

    @meta.setter
    def meta(self, value: Any) -> None:
        self._array._meta[self._slot] = value

    @property
    def set_idx(self) -> int:
        return self._slot // self._array.ways

    @property
    def way(self) -> int:
        return self._slot % self._array.ways

    def reset(self) -> None:
        array = self._array
        slot = self._slot
        array._valid[slot] = False
        array._addr[slot] = -1
        array._state[slot] = None
        array._data[slot] = None
        array._dirty[slot] = False
        array._meta[slot] = None

    def __repr__(self) -> str:
        if not self.valid:
            return "CacheLine(invalid)"
        return (
            f"CacheLine(addr={self.addr:#x}, state={self.state}, "
            f"dirty={self.dirty})"
        )


# -- integer Tree-PLRU ------------------------------------------------------
#
# Shared per-associativity tables, derived from the reference TreePLRU so
# the two can never disagree: touch masks force the same node bits the
# reference touch forces, and the victim memo replays the reference walk
# (including padding-leaf retries) once per distinct bit pattern.

#: ways -> (touch_and_masks, touch_or_masks, victim_memo, leaves)
_PLRU_GEOMETRY: dict[int, tuple[list[int], list[int], dict[int, tuple[int, int]], int]] = {}


def _bits_to_int(bits: list[int]) -> int:
    value = 0
    for node in range(1, len(bits)):
        if bits[node]:
            value |= 1 << node
    return value


def _int_to_bits(value: int, leaves: int) -> list[int]:
    return [(value >> node) & 1 for node in range(leaves)]


def _plru_geometry(ways: int) -> tuple[list[int], list[int], dict[int, tuple[int, int]], int]:
    geo = _PLRU_GEOMETRY.get(ways)
    if geo is None:
        probe = TreePLRU(ways)
        leaves = probe._leaves
        all_ones = [0] + [1] * (leaves - 1)
        touch_and: list[int] = []
        touch_or: list[int] = []
        for way in range(ways):
            probe._bits = [0] * leaves
            probe.touch(way)
            touch_or.append(_bits_to_int(probe._bits))
            probe._bits = list(all_ones)
            probe.touch(way)
            touch_and.append(_bits_to_int(probe._bits))
        geo = _PLRU_GEOMETRY[ways] = (touch_and, touch_or, {}, leaves)
    return geo


class CacheArray:
    """A ``num_sets`` x ``ways`` array with pluggable replacement.

    Addresses passed in must already be line-aligned; the set index is
    ``(addr / 64) mod num_sets`` and the full line address doubles as tag.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        repl: Callable[[int], ReplacementPolicy] = TreePLRU,
    ) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError(f"bad geometry: {num_sets} sets x {ways} ways")
        self.num_sets = num_sets
        self.ways = ways
        slots = num_sets * ways
        # struct-of-arrays line state
        self._valid = [False] * slots
        self._addr = [-1] * slots
        self._state: list[Any] = [None] * slots
        self._data: list[Any] = [None] * slots
        self._dirty = [False] * slots
        self._meta: list[Any] = [None] * slots
        self._views = [_LineView(self, slot) for slot in range(slots)]
        #: line-aligned address -> flat slot index
        self._index: dict[int, int] = {}
        # replacement state: integer trees for the default TreePLRU,
        # one policy object per set otherwise.
        self._repl_factory = repl
        if repl is TreePLRU:
            touch_and, touch_or, victim_memo, leaves = _plru_geometry(ways)
            self._plru: list[int] | None = [0] * num_sets
            self._victim_memo = victim_memo
            self._plru_leaves = leaves
            # per-slot touch masks (indexable straight from the flat slot)
            self._touch_and = [touch_and[slot % ways] for slot in range(slots)]
            self._touch_or = [touch_or[slot % ways] for slot in range(slots)]
            self._repl: list[ReplacementPolicy] | None = None
        else:
            self._plru = None
            self._repl = [repl(ways) for _ in range(num_sets)]

    @classmethod
    def from_geometry(
        cls,
        size_bytes: int,
        assoc: int,
        line_bytes: int = LINE_BYTES,
        repl: Callable[[int], ReplacementPolicy] = TreePLRU,
    ) -> "CacheArray":
        """Build from a (size, associativity) pair as in Table II."""
        lines = max(1, size_bytes // line_bytes)
        ways = min(assoc, lines)
        num_sets = max(1, lines // ways)
        return cls(num_sets, ways, repl)

    # -- lookups ----------------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr // LINE_BYTES) % self.num_sets

    def find(self, addr: int) -> int:
        """Flat slot index of the valid line holding ``addr``, or -1."""
        slot = self._index.get(addr)
        return -1 if slot is None else slot

    def find_touch(self, addr: int) -> int:
        """:meth:`find` plus a replacement touch on hit — the fused hot-path
        lookup (one dict get and one masked or for Tree-PLRU arrays)."""
        slot = self._index.get(addr)
        if slot is None:
            return -1
        plru = self._plru
        if plru is not None:
            set_idx = slot // self.ways
            plru[set_idx] = (plru[set_idx] & self._touch_and[slot]) | self._touch_or[slot]
        else:
            self._repl[slot // self.ways].touch(slot % self.ways)
        return slot

    def lookup(self, addr: int, touch: bool = True) -> "_LineView | None":
        """The valid line holding ``addr``, or None."""
        slot = self._index.get(addr)
        if slot is None:
            return None
        if touch:
            plru = self._plru
            if plru is not None:
                set_idx = slot // self.ways
                plru[set_idx] = (
                    (plru[set_idx] & self._touch_and[slot]) | self._touch_or[slot]
                )
            else:
                self._repl[slot // self.ways].touch(slot % self.ways)
        return self._views[slot]

    def view(self, slot: int) -> "_LineView":
        """The live view for a flat slot index (pairs with :meth:`find`)."""
        return self._views[slot]

    def touch(self, line: "_LineView | CacheLine") -> None:
        self.touch_slot(line.set_idx * self.ways + line.way)

    def touch_slot(self, slot: int) -> None:
        plru = self._plru
        if plru is not None:
            set_idx = slot // self.ways
            plru[set_idx] = (plru[set_idx] & self._touch_and[slot]) | self._touch_or[slot]
        else:
            self._repl[slot // self.ways].touch(slot % self.ways)

    # -- replacement internals --------------------------------------------

    def _fast_victim(self, set_idx: int) -> int:
        """Reference-identical Tree-PLRU victim from the integer tree.

        Non-power-of-two walks mutate the tree (padding-leaf retries), so
        the memo stores and re-applies the post-walk bits too.
        """
        plru = self._plru
        bits = plru[set_idx]
        memo = self._victim_memo
        hit = memo.get(bits)
        if hit is None:
            probe = TreePLRU(self.ways)
            probe._bits = _int_to_bits(bits, self._plru_leaves)
            way = probe.victim()
            hit = memo[bits] = (way, _bits_to_int(probe._bits))
        way, after = hit
        if after != bits:
            plru[set_idx] = after
        return way

    def _policy_of(self, set_idx: int) -> ReplacementPolicy:
        """A policy object mirroring ``set_idx``'s current replacement state
        (for the cost-ranked victim path's ``preferred_order``)."""
        if self._plru is None:
            return self._repl[set_idx]
        probe = TreePLRU(self.ways)
        probe._bits = _int_to_bits(self._plru[set_idx], self._plru_leaves)
        return probe

    # -- allocation -------------------------------------------------------

    def choose_victim(
        self, addr: int, cost_of: Callable[["_LineView"], Any] | None = None
    ) -> "_LineView":
        """The line to overwrite when installing ``addr``: an invalid way if
        any, else the replacement policy's pick.  Does not modify the line
        planes (the Tree-PLRU walk itself may rotate padding bits, exactly
        as the reference policy does).

        ``cost_of`` optionally ranks valid lines by eviction cost (lower is
        cheaper); the replacement policy only breaks ties among the cheapest.
        This hook implements the paper's §VII state-aware directory
        replacement.
        """
        set_idx = (addr // LINE_BYTES) % self.num_sets
        base = set_idx * self.ways
        valid = self._valid
        views = self._views
        for way in range(self.ways):
            if not valid[base + way]:
                return views[base + way]
        if self._plru is not None:
            victim_way = self._fast_victim(set_idx)
        else:
            victim_way = self._repl[set_idx].victim()
        if cost_of is None:
            return views[base + victim_way]
        costs = [cost_of(views[base + way]) for way in range(self.ways)]
        cheapest = min(costs)
        candidates = [way for way, cost in enumerate(costs) if cost == cheapest]
        if victim_way in candidates:
            return views[base + victim_way]
        return views[base + preferred_order(self._policy_of(set_idx), candidates)[0]]

    def install(
        self,
        addr: int,
        state: Any,
        data: LineData | None = None,
        dirty: bool = False,
        meta: Any = None,
    ) -> tuple["_LineView", CacheLine | None]:
        """Install ``addr``; returns ``(line, evicted_copy)``.

        ``evicted_copy`` is a detached :class:`CacheLine` snapshot of the
        victim if a valid line had to be replaced (None otherwise).  The
        caller is responsible for acting on the eviction (write-back,
        back-invalidation, ...).
        """
        slot = self.find_touch(addr)
        if slot >= 0:
            self._state[slot] = state
            if data is not None:
                self._data[slot] = data
            self._dirty[slot] = dirty
            if meta is not None:
                self._meta[slot] = meta
            return self._views[slot], None

        victim = self.choose_victim(addr)
        slot = victim._slot
        evicted: CacheLine | None = None
        if self._valid[slot]:
            evicted = CacheLine()
            evicted.valid = True
            evicted.addr = self._addr[slot]
            evicted.state = self._state[slot]
            evicted.data = self._data[slot]
            evicted.dirty = self._dirty[slot]
            evicted.meta = self._meta[slot]
            del self._index[self._addr[slot]]
        self._valid[slot] = True
        self._addr[slot] = addr
        self._state[slot] = state
        self._data[slot] = data
        self._dirty[slot] = dirty
        self._meta[slot] = meta
        self._index[addr] = slot
        self.touch_slot(slot)
        return victim, evicted

    def invalidate(self, addr: int) -> CacheLine | None:
        """Invalidate ``addr`` if present; returns a detached snapshot."""
        slot = self._index.pop(addr, None)
        if slot is None:
            return None
        snapshot = CacheLine()
        snapshot.valid = True
        snapshot.addr = self._addr[slot]
        snapshot.state = self._state[slot]
        snapshot.data = self._data[slot]
        snapshot.dirty = self._dirty[slot]
        snapshot.meta = self._meta[slot]
        self._valid[slot] = False
        self._addr[slot] = -1
        self._state[slot] = None
        self._data[slot] = None
        self._dirty[slot] = False
        self._meta[slot] = None
        return snapshot

    # -- iteration --------------------------------------------------------

    def iter_valid(self) -> Iterator["_LineView"]:
        views = self._views
        return iter([views[slot] for slot in self._index.values()])

    def occupancy(self) -> int:
        return len(self._index)

    def set_of(self, addr: int) -> list["_LineView"]:
        base = self.set_index(addr) * self.ways
        return self._views[base:base + self.ways]

    def __contains__(self, addr: int) -> bool:
        return addr in self._index

    def __len__(self) -> int:
        return self.num_sets * self.ways
