"""Set-associative tag/data arrays.

:class:`CacheArray` is the storage substrate shared by every cache in the
system — CPU L1/L2, GPU TCP/TCC/SQC, the LLC, and the directory cache (whose
"lines" are tracking entries rather than data).  Protocol state is opaque to
the array: controllers store whatever state enum they use in
:attr:`CacheLine.state` and extra tracking info in :attr:`CacheLine.meta`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.mem.address import LINE_BYTES
from repro.mem.block import LineData
from repro.mem.replacement import ReplacementPolicy, TreePLRU, preferred_order


class CacheLine:
    """One way of one set."""

    __slots__ = ("valid", "addr", "state", "data", "dirty", "meta", "set_idx", "way")

    def __init__(self) -> None:
        self.valid = False
        self.addr = -1  # line-aligned address when valid
        self.state: Any = None
        self.data: LineData | None = None
        self.dirty = False
        self.meta: Any = None
        # geometry position, assigned once when the array is built (-1 for
        # detached snapshots); lets ``touch`` skip the per-access way scan.
        self.set_idx = -1
        self.way = -1

    def reset(self) -> None:
        self.valid = False
        self.addr = -1
        self.state = None
        self.data = None
        self.dirty = False
        self.meta = None

    def __repr__(self) -> str:
        if not self.valid:
            return "CacheLine(invalid)"
        return (
            f"CacheLine(addr={self.addr:#x}, state={self.state}, "
            f"dirty={self.dirty})"
        )


class CacheArray:
    """A ``num_sets`` x ``ways`` array with pluggable replacement.

    Addresses passed in must already be line-aligned; the set index is
    ``(addr / 64) mod num_sets`` and the full line address doubles as tag.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        repl: Callable[[int], ReplacementPolicy] = TreePLRU,
    ) -> None:
        if num_sets < 1 or ways < 1:
            raise ValueError(f"bad geometry: {num_sets} sets x {ways} ways")
        self.num_sets = num_sets
        self.ways = ways
        self._sets = [[CacheLine() for _ in range(ways)] for _ in range(num_sets)]
        for set_idx, set_ways in enumerate(self._sets):
            for way, line in enumerate(set_ways):
                line.set_idx = set_idx
                line.way = way
        self._repl = [repl(ways) for _ in range(num_sets)]
        self._index: dict[int, CacheLine] = {}

    @classmethod
    def from_geometry(
        cls,
        size_bytes: int,
        assoc: int,
        line_bytes: int = LINE_BYTES,
        repl: Callable[[int], ReplacementPolicy] = TreePLRU,
    ) -> "CacheArray":
        """Build from a (size, associativity) pair as in Table II."""
        lines = max(1, size_bytes // line_bytes)
        ways = min(assoc, lines)
        num_sets = max(1, lines // ways)
        return cls(num_sets, ways, repl)

    # -- lookups ----------------------------------------------------------

    def set_index(self, addr: int) -> int:
        return (addr // LINE_BYTES) % self.num_sets

    def lookup(self, addr: int, touch: bool = True) -> CacheLine | None:
        """The valid line holding ``addr``, or None."""
        line = self._index.get(addr)
        if line is None:
            return None
        if touch:
            self.touch(line)
        return line

    def touch(self, line: CacheLine) -> None:
        self._repl[line.set_idx].touch(line.way)

    # -- allocation -------------------------------------------------------

    def choose_victim(
        self, addr: int, cost_of: Callable[[CacheLine], Any] | None = None
    ) -> CacheLine:
        """The line to overwrite when installing ``addr``: an invalid way if
        any, else the replacement policy's pick.  Does not modify the array.

        ``cost_of`` optionally ranks valid lines by eviction cost (lower is
        cheaper); the replacement policy only breaks ties among the cheapest.
        This hook implements the paper's §VII state-aware directory
        replacement.
        """
        index = self.set_index(addr)
        ways = self._sets[index]
        for line in ways:
            if not line.valid:
                return line
        victim_way = self._repl[index].victim()
        if cost_of is None:
            return ways[victim_way]
        costs = [cost_of(line) for line in ways]
        cheapest = min(costs)
        candidates = [w for w, cost in enumerate(costs) if cost == cheapest]
        if victim_way in candidates:
            return ways[victim_way]
        return ways[preferred_order(self._repl[index], candidates)[0]]

    def install(
        self,
        addr: int,
        state: Any,
        data: LineData | None = None,
        dirty: bool = False,
        meta: Any = None,
    ) -> tuple[CacheLine, CacheLine | None]:
        """Install ``addr``; returns ``(line, evicted_copy)``.

        ``evicted_copy`` is a detached :class:`CacheLine` snapshot of the
        victim if a valid line had to be replaced (None otherwise).  The
        caller is responsible for acting on the eviction (write-back,
        back-invalidation, ...).
        """
        existing = self.lookup(addr, touch=True)
        if existing is not None:
            existing.state = state
            if data is not None:
                existing.data = data
            existing.dirty = dirty
            if meta is not None:
                existing.meta = meta
            return existing, None

        victim = self.choose_victim(addr)
        evicted: CacheLine | None = None
        if victim.valid:
            evicted = CacheLine()
            evicted.valid = True
            evicted.addr = victim.addr
            evicted.state = victim.state
            evicted.data = victim.data
            evicted.dirty = victim.dirty
            evicted.meta = victim.meta
            del self._index[victim.addr]
        victim.valid = True
        victim.addr = addr
        victim.state = state
        victim.data = data
        victim.dirty = dirty
        victim.meta = meta
        self._index[addr] = victim
        self.touch(victim)
        return victim, evicted

    def invalidate(self, addr: int) -> CacheLine | None:
        """Invalidate ``addr`` if present; returns a detached snapshot."""
        line = self._index.pop(addr, None)
        if line is None:
            return None
        snapshot = CacheLine()
        snapshot.valid = True
        snapshot.addr = line.addr
        snapshot.state = line.state
        snapshot.data = line.data
        snapshot.dirty = line.dirty
        snapshot.meta = line.meta
        line.reset()
        return snapshot

    # -- iteration --------------------------------------------------------

    def iter_valid(self) -> Iterator[CacheLine]:
        return iter(list(self._index.values()))

    def occupancy(self) -> int:
        return len(self._index)

    def set_of(self, addr: int) -> list[CacheLine]:
        return self._sets[self.set_index(addr)]

    def __contains__(self, addr: int) -> bool:
        return addr in self._index

    def __len__(self) -> int:
        return self.num_sets * self.ways
