"""Main-memory (DRAM) model.

The paper's directory talks to memory through a single *ordered* interface;
writes are non-blocking but occupy the channel, so extra write traffic (the
write-through LLC of the baseline) delays later reads.  We model exactly
that: a FIFO channel that admits one access every ``gap_cycles`` and returns
read data after ``latency_cycles``.

Reads and writes are counted; those counters are the y-axis of Figure 5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.mem.block import ZERO_LINE, LineData
from repro.sim.clock import ClockDomain
from repro.sim.component import Component

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class MainMemory(Component):
    """Backing store plus an ordered, bandwidth-limited channel."""

    def __init__(
        self,
        sim: "Simulator",
        clock: ClockDomain,
        latency_cycles: float = 160.0,
        gap_cycles: float = 10.0,
        name: str = "memory",
    ) -> None:
        super().__init__(sim, name, clock)
        self.latency_cycles = latency_cycles
        self.gap_cycles = gap_cycles
        self._store: dict[int, LineData] = {}
        self._channel_free = 0
        self._outstanding = 0

    # -- functional backing store ----------------------------------------

    def peek(self, addr: int) -> LineData:
        """Functional read with no timing side effects (for verification)."""
        return self._store.get(addr, ZERO_LINE)

    def poke(self, addr: int, data: LineData) -> None:
        """Functional write with no timing side effects (for initialization)."""
        self._store[addr] = data

    # -- timed channel -----------------------------------------------------

    def _claim_channel(self) -> int:
        """Reserve the next channel slot; returns the access start tick."""
        start = max(self.now, self._channel_free)
        self._channel_free = start + self.clock.cycles_to_ticks(self.gap_cycles)
        wait = start - self.now
        if wait:
            self.stats.inc("channel_wait_ticks", wait)
        return start

    def read(self, addr: int, callback: Callable[[LineData], None]) -> None:
        """Timed read; ``callback(data)`` fires after channel wait + latency."""
        self.stats.inc("reads")
        start = self._claim_channel()
        finish = start + self.clock.cycles_to_ticks(self.latency_cycles)
        self._outstanding += 1
        self.sim.events.schedule(finish, self._complete_read, 0, (addr, callback))

    def _complete_read(self, queued: tuple) -> None:
        addr, callback = queued
        self._outstanding -= 1
        callback(self._store.get(addr, ZERO_LINE))

    def write(
        self,
        addr: int,
        data: LineData,
        callback: Callable[[], None] | None = None,
    ) -> None:
        """Timed write; the store is updated when the access starts (ordered
        channel, so a later read cannot pass it)."""
        self.stats.inc("writes")
        start = self._claim_channel()
        self._outstanding += 1

        def commit() -> None:
            self._outstanding -= 1
            self._store[addr] = data
            if callback is not None:
                callback()

        self.sim.events.schedule(start, commit)

    def write_words(
        self,
        addr: int,
        updates: dict[int, int],
        callback: Callable[[], None] | None = None,
    ) -> None:
        """Timed partial-line write (byte-enable style): only the given
        words are updated, read-modify applied atomically at commit time."""
        self.stats.inc("writes")
        start = self._claim_channel()
        self._outstanding += 1

        def commit() -> None:
            self._outstanding -= 1
            line = self._store.get(addr, ZERO_LINE)
            words = list(line.words)
            for index, value in updates.items():
                words[index] = value
            self._store[addr] = LineData(words)
            if callback is not None:
                callback()

        self.sim.events.schedule(start, commit)

    # -- bookkeeping -------------------------------------------------------

    @property
    def accesses(self) -> int:
        return int(self.stats["reads"] + self.stats["writes"])

    def pending_work(self) -> str | None:
        if self._outstanding:
            return f"{self._outstanding} outstanding accesses"
        return None
