"""Main-memory (DRAM) model.

The paper's directory talks to memory through a single *ordered* interface;
writes are non-blocking but occupy the channel, so extra write traffic (the
write-through LLC of the baseline) delays later reads.  We model exactly
that by default: a FIFO channel that admits one access every ``gap_cycles``
and returns read data after ``latency_cycles``.

Reads and writes are counted; those counters are the y-axis of Figure 5.

Contention model (``num_banks > 1`` or ``row_bytes > 0``): the controller
splits into address-interleaved banks (line address modulo ``num_banks``,
the same interleave as :class:`repro.coherence.banking.DirectoryMap`).  Each
bank has its own FIFO queues — one per CPU/GPU/DMA traffic class, granted in
weighted round-robin order by a :class:`~repro.sim.arbiter.WrrArbiter` — and
admits one access per ``gap_cycles``.  Banks track their open row: an access
that hits the open row pays ``row_hit_latency_cycles``, a row change pays
``row_miss_latency_cycles``.  Functional commit order is *issue order*
(writes apply to the backing store when accepted, reads capture data at
completion), so arbitration can reorder timing but never values — the same
write-before-read guarantee the single-channel model gives.  The default
configuration (1 bank, no row model) takes the original code path untouched
and is bit-identical to the committed golden stats.

Scheduler option (``scheduler="frfcfs"``, banked + row model only): each
bank replaces its WRR class queues with a :class:`~repro.sim.arbiter.
FrFcfsQueue` — the oldest *row-hit* is serviced ahead of older row-missing
accesses, bounded by a row-streak cap for starvation freedom.  Issue-order
commit makes the reordering timing-only.

Flow control (``queue_depth > 0``, banked only): each bank's queue is
bounded; accesses beyond the bound spill to a per-bank overflow FIFO, and
while *any* overflow is non-empty the controller asserts back-pressure
through :meth:`set_stall_callback` (the builder wires it to gate the
directory's network input port).  Every grant frees a slot and promotes
the oldest spilled access, so the overflow always drains by memory timing
alone — the gate can never deadlock the fabric.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.mem.address import LINE_BYTES
from repro.mem.block import ZERO_LINE, LineData
from repro.sim.arbiter import FrFcfsQueue, WrrArbiter
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class _Bank:
    """One DRAM bank: a scheduler queue (WRR or FR-FCFS) plus open-row
    state, a busy flag, and the bounded-mode overflow FIFO."""

    __slots__ = ("index", "arb", "fr", "open_row", "key", "busy", "overflow")

    def __init__(self, index: int, weights: dict[str, int] | None,
                 frfcfs: bool) -> None:
        self.index = index
        self.arb = (
            None if frfcfs
            else WrrArbiter(f"bank{index}", dict(weights) if weights else None)
        )
        self.fr = FrFcfsQueue(f"bank{index}") if frfcfs else None
        self.open_row: int | None = None
        self.key = f"b{index}.accesses"
        #: True while a grant is in flight (the gap timer will re-grant)
        self.busy = False
        #: accesses spilled past the bounded queue depth, oldest first
        self.overflow: deque = deque()


class _Access:
    """One queued bank access (read, write, or masked write).

    Instances recycle through :attr:`MainMemory._access_pool` — the banked
    path allocates no per-access bookkeeping in steady state.
    """

    __slots__ = ("kind", "addr", "callback", "enqueued_at", "cls")

    def __init__(self, kind: str, addr: int, callback, enqueued_at: int,
                 cls: str = "other") -> None:
        self.kind = kind          # "r" | "w"
        self.addr = addr
        self.callback = callback  # read: data consumer; write: completion or None
        self.enqueued_at = enqueued_at
        self.cls = cls            # WRR traffic class of the requester


class MainMemory(Component):
    """Backing store plus an ordered, bandwidth-limited channel."""

    def __init__(
        self,
        sim: "Simulator",
        clock: ClockDomain,
        latency_cycles: float = 160.0,
        gap_cycles: float = 10.0,
        name: str = "memory",
        num_banks: int = 1,
        row_bytes: int = 0,
        row_hit_latency_cycles: float | None = None,
        row_miss_latency_cycles: float | None = None,
        arb_weights: dict[str, int] | None = None,
        queue_depth: int = 0,
        scheduler: str = "fifo",
    ) -> None:
        super().__init__(sim, name, clock)
        if num_banks < 1:
            raise SimulationError(f"memory needs >= 1 bank, got {num_banks}")
        if row_bytes and (row_bytes < LINE_BYTES or row_bytes % LINE_BYTES):
            raise SimulationError(
                f"row_bytes must be 0 or a multiple of the {LINE_BYTES}-byte "
                f"line size, got {row_bytes}"
            )
        if scheduler not in ("fifo", "frfcfs"):
            raise SimulationError(f"unknown memory scheduler {scheduler!r}")
        if queue_depth < 0:
            raise SimulationError(f"queue_depth must be >= 0, got {queue_depth}")
        banked = num_banks > 1 or row_bytes > 0
        if queue_depth and not banked:
            raise SimulationError(
                "bounded bank queues need the banked controller "
                "(num_banks > 1 or row_bytes > 0)"
            )
        if scheduler == "frfcfs" and not row_bytes:
            raise SimulationError(
                "the FR-FCFS scheduler needs the open-row model (row_bytes > 0)"
            )
        self.latency_cycles = latency_cycles
        self.gap_cycles = gap_cycles
        self.num_banks = num_banks
        self.row_bytes = row_bytes
        self.row_hit_latency_cycles = (
            latency_cycles if row_hit_latency_cycles is None
            else row_hit_latency_cycles
        )
        self.row_miss_latency_cycles = (
            latency_cycles if row_miss_latency_cycles is None
            else row_miss_latency_cycles
        )
        self._store: dict[int, LineData] = {}
        self._channel_free = 0
        self._outstanding = 0
        #: banked mode is any deviation from the paper's single ordered
        #: channel; the flat path below stays byte-for-byte the original.
        self._banked = banked
        self.scheduler = scheduler
        self._frfcfs = scheduler == "frfcfs"
        self.queue_depth = queue_depth
        self._banks = (
            [_Bank(i, arb_weights, self._frfcfs) for i in range(num_banks)]
            if self._banked else []
        )
        #: FR-FCFS row accessor, bound once (avoids a lambda per pick)
        self._row_of = (
            (lambda access: access.addr // row_bytes) if row_bytes else None
        )
        #: back-pressure hook: called with True when the first access
        #: spills to an overflow FIFO, False when the last one drains
        self._stall_cb: Callable[[bool], None] | None = None
        #: total spilled accesses across banks + stall-window start tick
        self._overflowed = 0
        self._stalled_since = 0
        #: ``source name -> traffic class`` classifier (set by the builder
        #: from the network's endpoint kinds); None classifies everything
        #: as "other".
        self._classifier: Callable[[str], str] | None = None
        # free lists for per-access records (flat [addr, callback, payload]
        # commit records and banked _Access objects) plus bound stat
        # handles; all counters/child groups stay lazily created.
        self._rec_pool: list[list] = []
        self._access_pool: list[_Access] = []
        self._counters = self.stats._counters
        self._bank_counters: dict[str, int | float] | None = None
        self._class_counters: dict[str, int | float] | None = None

    def set_classifier(self, classifier: Callable[[str], str] | None) -> None:
        """Install the requester-name -> traffic-class mapping used by the
        banked WRR arbiters (no effect on the flat channel)."""
        self._classifier = classifier

    def set_stall_callback(self, callback: Callable[[bool], None] | None) -> None:
        """Install the bounded-queue back-pressure hook (see module
        docstring): ``callback(True)`` when any bank overflows its bounded
        queue, ``callback(False)`` when the overflow fully drains."""
        self._stall_cb = callback

    # -- functional backing store ----------------------------------------

    def peek(self, addr: int) -> LineData:
        """Functional read with no timing side effects (for verification)."""
        return self._store.get(addr, ZERO_LINE)

    def poke(self, addr: int, data: LineData) -> None:
        """Functional write with no timing side effects (for initialization)."""
        self._store[addr] = data

    # -- timed channel -----------------------------------------------------

    def _claim_channel(self) -> int:
        """Reserve the next channel slot; returns the access start tick."""
        start = max(self.now, self._channel_free)
        self._channel_free = start + self.clock.cycles_to_ticks(self.gap_cycles)
        wait = start - self.now
        if wait:
            counters = self._counters
            if "channel_wait_ticks" in counters:
                counters["channel_wait_ticks"] += wait
            else:
                self.stats.inc("channel_wait_ticks", wait)
        return start

    def _take_rec(self, addr: int, callback, payload) -> list:
        pool = self._rec_pool
        if pool:
            rec = pool.pop()
            rec[0] = addr
            rec[1] = callback
            rec[2] = payload
            return rec
        return [addr, callback, payload]

    def read(
        self,
        addr: int,
        callback: Callable[[LineData], None],
        source: str | None = None,
    ) -> None:
        """Timed read; ``callback(data)`` fires after channel wait + latency.

        ``source`` (a network endpoint name) selects the WRR traffic class
        in banked mode and is ignored by the flat channel.
        """
        counters = self._counters
        if "reads" in counters:
            counters["reads"] += 1
        else:
            self.stats.inc("reads")
        if self._banked:
            self._enqueue("r", addr, callback, source)
            return
        start = self._claim_channel()
        finish = start + self.clock.cycles_to_ticks(self.latency_cycles)
        self._outstanding += 1
        self.sim.events.schedule(
            finish, self._complete_read, 0, self._take_rec(addr, callback, None)
        )

    def _complete_read(self, rec: list) -> None:
        addr = rec[0]
        callback = rec[1]
        rec[1] = None
        self._rec_pool.append(rec)
        self._outstanding -= 1
        callback(self._store.get(addr, ZERO_LINE))

    def write(
        self,
        addr: int,
        data: LineData,
        callback: Callable[[], None] | None = None,
        source: str | None = None,
    ) -> None:
        """Timed write; the store is updated when the access starts (ordered
        channel, so a later read cannot pass it)."""
        counters = self._counters
        if "writes" in counters:
            counters["writes"] += 1
        else:
            self.stats.inc("writes")
        if self._banked:
            self._store[addr] = data  # issue-order commit (see module doc)
            self._enqueue("w", addr, callback, source)
            return
        start = self._claim_channel()
        self._outstanding += 1
        self.sim.events.schedule(
            start, self._commit_write, 0, self._take_rec(addr, callback, data)
        )

    def _commit_write(self, rec: list) -> None:
        addr = rec[0]
        callback = rec[1]
        data = rec[2]
        rec[1] = rec[2] = None
        self._rec_pool.append(rec)
        self._outstanding -= 1
        self._store[addr] = data
        if callback is not None:
            callback()

    def write_words(
        self,
        addr: int,
        updates: dict[int, int],
        callback: Callable[[], None] | None = None,
        source: str | None = None,
    ) -> None:
        """Timed partial-line write (byte-enable style): only the given
        words are updated, read-modify applied atomically at commit time."""
        counters = self._counters
        if "writes" in counters:
            counters["writes"] += 1
        else:
            self.stats.inc("writes")
        if self._banked:
            self._apply_words(addr, updates)  # issue-order commit
            self._enqueue("w", addr, callback, source)
            return
        start = self._claim_channel()
        self._outstanding += 1
        self.sim.events.schedule(
            start, self._commit_words, 0, self._take_rec(addr, callback, updates)
        )

    def _commit_words(self, rec: list) -> None:
        addr = rec[0]
        callback = rec[1]
        updates = rec[2]
        rec[1] = rec[2] = None
        self._rec_pool.append(rec)
        self._outstanding -= 1
        self._apply_words(addr, updates)
        if callback is not None:
            callback()

    def _apply_words(self, addr: int, updates: dict[int, int]) -> None:
        line = self._store.get(addr, ZERO_LINE)
        words = list(line.words)
        for index, value in updates.items():
            words[index] = value
        self._store[addr] = LineData(words)

    # -- banked channel ----------------------------------------------------

    def bank_of(self, addr: int) -> int:
        """Address-interleaved bank index (line address mod banks)."""
        return (addr // LINE_BYTES) % self.num_banks

    def _enqueue(self, kind: str, addr: int, callback, source: str | None) -> None:
        """Queue one access on its bank; start the bank if it is idle.

        With bounded queues an access past the bound spills to the bank's
        overflow FIFO and (on the first spill) asserts back-pressure
        through the stall callback.
        """
        self._outstanding += 1
        bank = self._banks[self.bank_of(addr)]
        cls = "other"
        if source is not None and self._classifier is not None:
            cls = self._classifier(source)
        pool = self._access_pool
        if pool:
            access = pool.pop()
            access.kind = kind
            access.addr = addr
            access.callback = callback
            access.enqueued_at = self.now
            access.cls = cls
        else:
            access = _Access(kind, addr, callback, self.now, cls)
        if self.queue_depth and self._bank_depth(bank) >= self.queue_depth:
            bank.overflow.append(access)
            counters = self._counters
            if "queue_overflows" in counters:
                counters["queue_overflows"] += 1
            else:
                self.stats.inc("queue_overflows")
            self._overflowed += 1
            if self._overflowed == 1:
                self._stalled_since = self.now
                if self._stall_cb is not None:
                    self._stall_cb(True)
            return
        self._admit(bank, access)

    def _bank_depth(self, bank: _Bank) -> int:
        """Admitted (non-overflow) queue depth of one bank."""
        return len(bank.fr) if self._frfcfs else bank.arb.pending()

    def _admit(self, bank: _Bank, access: _Access) -> None:
        """Place one access in the bank's scheduler queue; kick if idle."""
        if self._frfcfs:
            bank.fr.enqueue(access)
        else:
            bank.arb.enqueue(access.cls, access)
        if not bank.busy:
            self._bank_grant(bank)

    def _bank_pick(self, bank: _Bank) -> _Access | None:
        """Next access under the configured scheduling discipline."""
        if self._frfcfs:
            return bank.fr.pick(bank.open_row, self._row_of)
        picked = bank.arb.pick()
        return picked[1] if picked is not None else None

    def _bank_grant(self, bank: _Bank) -> None:
        """Admit the next access in scheduler order; the bank stays busy
        for ``gap_cycles`` before the following grant."""
        access = self._bank_pick(bank)
        if access is None:
            bank.busy = False
            return
        bank.busy = True
        cls = access.cls
        events = self.sim.events
        now = events.now
        counters = self._counters
        wait = now - access.enqueued_at
        if wait:
            if "bank_wait_ticks" in counters:
                counters["bank_wait_ticks"] += wait
            else:
                self.stats.inc("bank_wait_ticks", wait)
        bank_counters = self._bank_counters
        if bank_counters is None:
            bank_counters = self._bank_counters = self.stats.child("banks")._counters
            self._class_counters = self.stats.child("classes")._counters
        key = bank.key
        if key in bank_counters:
            bank_counters[key] += 1
        else:
            bank_counters[key] = 1
        class_counters = self._class_counters
        if cls in class_counters:
            class_counters[cls] += 1
        else:
            class_counters[cls] = 1
        # open-row timing
        if self.row_bytes:
            row = access.addr // self.row_bytes
            if bank.open_row == row:
                if "row_hits" in counters:
                    counters["row_hits"] += 1
                else:
                    self.stats.inc("row_hits")
                latency = self.row_hit_latency_cycles
                if self._frfcfs:
                    bank.fr.note_row(True)
            else:
                if "row_misses" in counters:
                    counters["row_misses"] += 1
                else:
                    self.stats.inc("row_misses")
                bank.open_row = row
                latency = self.row_miss_latency_cycles
                if self._frfcfs:
                    bank.fr.note_row(False)
        else:
            latency = self.latency_cycles
        if access.kind == "r":
            events.schedule(
                now + self.clock.cycles_to_ticks(latency),
                self._bank_complete_read, 0, access,
            )
        else:
            # write data already committed at issue; completion is the
            # grant itself (non-blocking writes, as on the flat channel).
            # Scheduled (not called inline) so callbacks never re-enter the
            # caller of read()/write() synchronously.
            events.schedule(now, self._bank_complete_write, 0, access)
        events.schedule(
            now + self.clock.cycles_to_ticks(self.gap_cycles),
            self._bank_next, 0, bank,
        )
        if bank.overflow:
            # the grant freed one bounded-queue slot: promote the oldest
            # spilled access, and release back-pressure once every
            # overflow FIFO is empty again
            promoted = bank.overflow.popleft()
            if self._frfcfs:
                bank.fr.enqueue(promoted)
            else:
                bank.arb.enqueue(promoted.cls, promoted)
            self._overflowed -= 1
            if self._overflowed == 0:
                stalled = now - self._stalled_since
                if stalled:
                    if "stalled_ticks" in counters:
                        counters["stalled_ticks"] += stalled
                    else:
                        self.stats.inc("stalled_ticks", stalled)
                if self._stall_cb is not None:
                    self._stall_cb(False)

    def _bank_complete_read(self, access: _Access) -> None:
        self._outstanding -= 1
        addr = access.addr
        callback = access.callback
        access.callback = None
        self._access_pool.append(access)
        callback(self._store.get(addr, ZERO_LINE))

    def _bank_complete_write(self, access: _Access) -> None:
        self._outstanding -= 1
        callback = access.callback
        access.callback = None
        self._access_pool.append(access)
        if callback is not None:
            callback()

    def _bank_next(self, bank: _Bank) -> None:
        self._bank_grant(bank)

    # -- bookkeeping -------------------------------------------------------

    @property
    def accesses(self) -> int:
        return int(self.stats["reads"] + self.stats["writes"])

    def pending_work(self) -> str | None:
        if self._outstanding:
            return f"{self._outstanding} outstanding accesses"
        return None

    def blocked_snapshot(self) -> dict[str, int]:
        """``"overflow" -> stall-start tick`` while back-pressure is
        asserted (the watchdog's starvation probe; empty otherwise)."""
        if self._overflowed:
            return {"overflow": self._stalled_since}
        return {}

    def describe_queues(self) -> str:
        """Multi-line bank-queue dump for the watchdog's deadlock report."""
        if not self._banked:
            return ""
        lines = []
        for bank in self._banks:
            depth = self._bank_depth(bank)
            spilled = len(bank.overflow)
            if not depth and not spilled and not bank.busy:
                continue
            lines.append(
                f"bank {bank.index}: {depth} queued, {spilled} spilled, "
                f"busy={bank.busy}, open_row={bank.open_row}"
            )
        if self._overflowed:
            lines.append(
                f"back-pressure asserted since tick {self._stalled_since} "
                f"({self._overflowed} spilled access(es))"
            )
        return "\n".join(lines)
