"""Immutable per-line data values.

A 64-byte line is modelled as 16 four-byte words holding Python integers.
Workloads write tagged tokens and counters into words; the verification
oracle (:mod:`repro.verify`) checks every load returns a legal value.
Immutability means a line snapshot captured in a message can never be
corrupted by a later in-place write — mirroring hardware's copy semantics.
"""

from __future__ import annotations

from typing import Iterable

from repro.mem.address import WORDS_PER_LINE


class LineData:
    """An immutable 16-word cache-line value."""

    __slots__ = ("words",)

    def __init__(self, words: Iterable[int] | None = None) -> None:
        if words is None:
            object.__setattr__(self, "words", _ZERO_WORDS)
        else:
            value = tuple(words)
            if len(value) != WORDS_PER_LINE:
                raise ValueError(
                    f"a line holds {WORDS_PER_LINE} words, got {len(value)}"
                )
            object.__setattr__(self, "words", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("LineData is immutable")

    def word(self, index: int) -> int:
        return self.words[index]

    def with_word(self, index: int, value: int) -> "LineData":
        """A copy of this line with one word replaced."""
        words = list(self.words)
        words[index] = value
        return LineData(words)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LineData) and self.words == other.words

    def __hash__(self) -> int:
        return hash(self.words)

    def __repr__(self) -> str:
        nonzero = {i: w for i, w in enumerate(self.words) if w}
        return f"LineData({nonzero or '0'})"


_ZERO_WORDS = (0,) * WORDS_PER_LINE

#: The all-zero line (fresh memory).
ZERO_LINE = LineData()
