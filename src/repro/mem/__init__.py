"""Memory-system substrate: line data, cache arrays, replacement, DRAM."""

from repro.mem.address import (
    BYTES_PER_WORD,
    LINE_BYTES,
    WORDS_PER_LINE,
    line_addr,
    make_addr,
    word_index,
)
from repro.mem.block import LineData
from repro.mem.cache_array import CacheArray, CacheLine
from repro.mem.main_memory import MainMemory
from repro.mem.replacement import LRU, ReplacementPolicy, StateAwarePLRU, TreePLRU

__all__ = [
    "BYTES_PER_WORD",
    "CacheArray",
    "CacheLine",
    "LINE_BYTES",
    "LineData",
    "LRU",
    "MainMemory",
    "ReplacementPolicy",
    "StateAwarePLRU",
    "TreePLRU",
    "WORDS_PER_LINE",
    "line_addr",
    "make_addr",
    "word_index",
]
