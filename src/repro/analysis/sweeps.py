"""Generic parameter sweeps over system configuration and policy knobs.

``sweep()`` runs one workload over the cross product of configuration
overrides and policies, returning a :class:`SweepResult` that renders as a
table or exports as CSV — the engine behind design-space exploration like
`examples/directory_design_sweep.py`, generalized to any knob:

    sweep(
        workload="cedd",
        axis=("mem_latency_cycles", [80, 160, 320]),
        policies=["baseline", "sharers"],
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.coherence.policies import PRESETS, DirectoryPolicy
from repro.runner import Cell, ResultCache
from repro.store import ResultStore, resolve_cells
from repro.system.apu import SimulationResult
from repro.system.config import SystemConfig
from repro.workloads.base import Workload
from repro.workloads.registry import get_workload

#: knobs that live on the DirectoryPolicy rather than the SystemConfig
_POLICY_FIELDS = set(DirectoryPolicy.__dataclass_fields__)


@dataclass
class SweepResult:
    workload: str
    axis_name: str
    axis_values: list
    policies: list[str]
    #: results[policy][axis_index]
    results: dict[str, list[SimulationResult]] = field(default_factory=dict)

    def metric(self, policy: str, metric: str) -> list[float]:
        return [float(getattr(r, metric)) for r in self.results[policy]]

    def to_text(self, metric: str = "cycles") -> str:
        from repro.analysis.report import format_table

        rows = []
        for index, value in enumerate(self.axis_values):
            row: list[object] = [value]
            for policy in self.policies:
                row.append(f"{getattr(self.results[policy][index], metric):.0f}")
            rows.append(row)
        return format_table(
            [self.axis_name] + self.policies, rows,
            title=f"{self.workload}: {metric} vs {self.axis_name}",
        )

    def to_csv(self, metric: str = "cycles") -> str:
        header = ",".join([self.axis_name] + self.policies)
        lines = [header]
        for index, value in enumerate(self.axis_values):
            cells = [str(value)] + [
                str(getattr(self.results[policy][index], metric))
                for policy in self.policies
            ]
            lines.append(",".join(cells))
        return "\n".join(lines) + "\n"


def sweep(
    workload: str | Workload,
    axis: tuple[str, Sequence],
    policies: Sequence[str] = ("baseline",),
    config_factory=SystemConfig.benchmark,
    scale: float = 1.0,
    verify: bool = False,
    jobs: int | None = None,
    cache: ResultCache | None = None,
    progress=None,
    store: ResultStore | None = None,
    serve=None,
) -> SweepResult:
    """Run ``workload`` over ``axis`` x ``policies``.

    ``axis`` is ``(field_name, values)``; the field may belong to
    :class:`SystemConfig` (e.g. ``mem_latency_cycles``, ``num_corepairs``)
    or to :class:`DirectoryPolicy` (e.g. ``dir_entries``, ``dir_banks``).

    The cross product is embarrassingly parallel: cells resolve through
    :func:`repro.store.resolve_cells` — a :class:`ResultStore` (or legacy
    :class:`ResultCache`) serves previously-simulated points from disk, a
    serve daemon shards cold cells, and the rest fan out over ``jobs``
    local workers.
    """
    axis_name, axis_values = axis
    instance = get_workload(workload) if isinstance(workload, str) else workload
    result = SweepResult(
        workload=instance.name,
        axis_name=axis_name,
        axis_values=list(axis_values),
        policies=list(policies),
    )
    cells: list[Cell] = []
    labels: list[tuple[str, object]] = []
    for policy_name in policies:
        for value in axis_values:
            policy = PRESETS[policy_name]
            if axis_name in _POLICY_FIELDS:
                policy = policy.named(**{axis_name: value})
                config = config_factory(policy=policy)
            else:
                config = config_factory(policy=policy)
                config = replace(config, **{axis_name: value})
            cells.append(Cell(
                workload=instance,
                config=config,
                scale=scale,
                verify=verify,
                label=f"{instance.name}/{policy_name}/{axis_name}={value}",
            ))
            labels.append((policy_name, value))
    runs = resolve_cells(
        cells, jobs=jobs,
        store=store if store is not None else cache,
        progress=progress, serve=serve,
    )
    for (policy_name, value), run in zip(labels, runs):
        if not run.ok:
            raise RuntimeError(
                f"{instance.name}/{policy_name}/{axis_name}={value} failed: "
                f"{run.check_errors[:3]}"
            )
        result.results.setdefault(policy_name, []).append(run)
    return result
