"""Reproduction scorecard: the paper's headline claims, checked in code.

``build_scorecard()`` runs (or reuses) the experiment matrix and evaluates
each claim of the paper's abstract/evaluation as a pass/fail criterion with
the measured value alongside the paper's number — the one-glance answer to
"does this reproduction hold up?".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.experiments import (
    ExperimentMatrix,
    figure5_reduction,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
)
from repro.analysis.report import format_table


@dataclass(frozen=True)
class Claim:
    source: str           # where the paper states it
    statement: str
    paper_value: str
    measured_value: str
    holds: bool


def build_scorecard(matrix: ExperimentMatrix | None = None) -> list[Claim]:
    matrix = matrix or ExperimentMatrix()
    fig4 = run_figure4(matrix)
    fig5 = run_figure5(matrix)
    fig6 = run_figure6(matrix)
    fig7 = run_figure7(matrix)

    claims: list[Claim] = []

    mem_reduction = figure5_reduction(fig5)
    claims.append(Claim(
        source="abstract / Fig. 5",
        statement="write-back LLC (+useL3OnWT) roughly halves directory-memory interactions",
        paper_value="50.4%",
        measured_value=f"{mem_reduction:.1f}%",
        holds=mem_reduction > 35.0,
    ))

    probe_reduction = fig7.average("sharers")
    claims.append(Claim(
        source="abstract / Fig. 7",
        statement="state tracking removes the bulk of probe traffic",
        paper_value="80.3%",
        measured_value=f"{probe_reduction:.1f}%",
        holds=probe_reduction > 60.0,
    ))

    tracking_speedup = fig6.average("sharers")
    claims.append(Claim(
        source="abstract / Fig. 6",
        statement="precise state tracking improves performance on collaborative benchmarks",
        paper_value="14.4%",
        measured_value=f"{tracking_speedup:.1f}%",
        holds=tracking_speedup > 5.0,
    ))

    fig4_avg = max(fig4.average("noWBcleanVic"), fig4.average("llcWB"))
    claims.append(Claim(
        source="§VI / Fig. 4",
        statement="the §III optimizations alone give only small speedups",
        paper_value="1.68% avg",
        measured_value=f"{fig4_avg:.2f}% (best of B/C)",
        holds=-1.0 < fig4_avg < 10.0,
    ))

    early = fig4.average("earlyDirtyResp")
    claims.append(Claim(
        source="§VI",
        statement="early probe responses do not produce significant improvements",
        paper_value="~0%",
        measured_value=f"{early:.2f}%",
        holds=abs(early) < 5.0,
    ))

    fig6_by_name = dict(zip(fig6.benchmarks, fig6.series["sharers"]))
    collaborative = min(fig6_by_name.get("tq", 0.0), fig6_by_name.get("sc", 0.0))
    claims.append(Claim(
        source="§VI",
        statement="heavily collaborating applications benefit most from state tracking",
        paper_value="(qualitative)",
        measured_value=f"tq/sc >= {collaborative:.1f}%",
        holds=collaborative > 20.0,
    ))

    owner_vs_sharers = [
        abs(s - o) for o, s in zip(fig6.series["owner"], fig6.series["sharers"])
    ]
    close = sum(1 for delta in owner_vs_sharers if delta < 10.0)
    claims.append(Claim(
        source="§VI / Fig. 7",
        statement="sharer tracking adds little over owner tracking on most benchmarks",
        paper_value="4 of 5",
        measured_value=f"{close} of {len(owner_vs_sharers)} within 10%",
        holds=close >= 3,
    ))

    return claims


def scorecard_text(claims: list[Claim]) -> str:
    rows = [
        [claim.source, claim.statement, claim.paper_value,
         claim.measured_value, "PASS" if claim.holds else "FAIL"]
        for claim in claims
    ]
    passed = sum(1 for claim in claims if claim.holds)
    table = format_table(
        ["where", "claim", "paper", "measured", "verdict"],
        rows,
        title="Reproduction scorecard",
    )
    return table + f"\n{passed}/{len(claims)} claims reproduced"
