"""Experiment harness: regenerate every table and figure of the paper."""

from repro.analysis.energy import EnergyModel, energy_comparison, estimate_energy
from repro.analysis.experiments import (
    FIGURE6_BENCHMARKS,
    ExperimentMatrix,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    table2_text,
    table3_text,
)
from repro.analysis.report import bar_chart, format_table

__all__ = [
    "EnergyModel",
    "ExperimentMatrix",
    "FIGURE6_BENCHMARKS",
    "bar_chart",
    "energy_comparison",
    "estimate_energy",
    "format_table",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "table2_text",
    "table3_text",
]
