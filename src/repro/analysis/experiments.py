"""Regeneration of every evaluation table and figure.

One function per paper artifact:

- :func:`table2_text` / :func:`table3_text` — the configuration tables.
- :func:`run_figure4` — % saved simulated cycles for the §III
  optimizations (earlyDirtyResp, noWBcleanVic, llcWB) over the baseline,
  per benchmark (paper average: 1.68 %).
- :func:`run_figure5` — directory↔memory reads+writes for baseline,
  noWBcleanVic, llcWB, llcWB+useL3OnWT (paper: 50.4 % average reduction).
- :func:`run_figure6` — % saved cycles for owner tracking and
  owner+sharer tracking over baseline, five most-collaborative benchmarks
  (paper average: 14.4 %).
- :func:`run_figure7` — % reduction in probes sent from the directory for
  the same configurations (paper average: 80.3 %).

All experiments run on :meth:`SystemConfig.benchmark` (the paper's system
structure with proportionally scaled caches; see EXPERIMENTS.md) and share
a result cache so overlapping bars reuse runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.analysis.report import format_table
from repro.coherence.policies import PRESETS, DirectoryPolicy
from repro.runner import Cell, ResultCache
from repro.store import ResultStore, resolve_cells
from repro.system.apu import SimulationResult
from repro.system.config import SystemConfig
from repro.workloads.base import Workload
from repro.workloads.registry import available_workloads, get_workload

#: the five most collaborative benchmarks, used for Figures 6 and 7.  The
#: paper evaluates five benchmarks there without naming them; we pick the
#: five with the heaviest cross-device coherence activity (recorded in
#: EXPERIMENTS.md).
FIGURE6_BENCHMARKS = ["cedd", "sc", "tq", "trns", "hsto"]


@dataclass
class ExperimentMatrix:
    """Runs and caches (workload, policy) cells on one configuration.

    Cells resolve through :func:`repro.store.resolve_cells`, the shared
    entry point: a :class:`ResultStore` (or legacy :class:`ResultCache`)
    answers warm cells from disk, a configured serve daemon shards cold
    ones over its worker pool, and the rest fan out locally with
    ``jobs > 1`` — all bit-identical to a serial in-process run (the
    simulator is deterministic and results round-trip exactly).  The
    in-memory ``_cache`` keeps object identity within one matrix, as
    before.
    """

    config_factory: Callable[..., SystemConfig] = SystemConfig.benchmark
    scale: float = 1.0
    verify: bool = False
    #: worker processes for cell fan-out; None → ``os.cpu_count()``.
    #: ``jobs=1`` runs every cell serially in-process.
    jobs: int | None = None
    #: persistent result backend (:class:`ResultStore`, or the legacy
    #: file :class:`ResultCache`); None → in-memory caching only.
    cache: ResultCache | ResultStore | None = None
    #: optional sink for structured runner progress lines.
    progress: Callable[[str], None] | None = None
    #: optional per-cell wall-clock timeout (enforced in pool workers).
    timeout_s: float | None = None
    #: preferred alias for ``cache`` now that the backend is the store
    store: ResultStore | None = None
    #: serve-daemon address ("host:port") or client; None → $REPRO_SERVE
    serve: object | None = None
    _cache: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)

    def _cell(self, workload: str | Workload, policy: DirectoryPolicy,
              label: str) -> Cell:
        # Resolve registered names eagerly so typos raise KeyError here,
        # not inside a worker process.
        if isinstance(workload, str):
            get_workload(workload)
        return Cell(
            workload=workload,
            config=self.config_factory(policy=policy),
            scale=self.scale,
            verify=self.verify,
            label=label,
        )

    def _execute(self, items: Sequence[tuple[tuple[str, str], Cell]]) -> None:
        """Run not-yet-cached cells (possibly in parallel) into ``_cache``."""
        todo = [(key, cell) for key, cell in items if key not in self._cache]
        if not todo:
            return
        results = resolve_cells(
            [cell for _key, cell in todo],
            jobs=self.jobs if len(todo) > 1 else 1,
            store=self.store if self.store is not None else self.cache,
            timeout_s=self.timeout_s,
            progress=self.progress,
            serve=self.serve,
        )
        for (key, _cell), result in zip(todo, results):
            self._cache[key] = result

    def run_batch(self, pairs: Sequence[tuple[str, str]]) -> dict[tuple[str, str], SimulationResult]:
        """Run every (workload, policy-preset) pair, fanning misses out in
        parallel, and return the results keyed by pair."""
        unique = list(dict.fromkeys(pairs))
        self._execute([
            ((workload, policy),
             self._cell(workload, PRESETS[policy], f"{workload}/{policy}"))
            for workload, policy in unique
        ])
        out: dict[tuple[str, str], SimulationResult] = {}
        for pair in unique:
            result = self._cache[pair]
            if not result.ok:
                workload, policy = pair
                raise RuntimeError(
                    f"{workload}/{policy} failed verification: "
                    f"{result.check_errors[:3]}"
                )
            out[pair] = result
        return out

    def run(self, workload: str, policy: str) -> SimulationResult:
        return self.run_batch([(workload, policy)])[(workload, policy)]

    def run_policy_object(self, workload, policy: DirectoryPolicy, tag: str) -> SimulationResult:
        """Run with an ad-hoc policy (for ablations) under a cache tag.

        ``workload`` is a registered name or a Workload instance (e.g. a
        microbenchmark from :mod:`repro.workloads.micro`).
        """
        name = workload if isinstance(workload, str) else workload.name
        key = (name, tag)
        self._execute([(key, self._cell(workload, policy, f"{name}/{tag}"))])
        return self._cache[key]


@dataclass
class FigureResult:
    """One regenerated figure: per-benchmark series plus the average row."""

    name: str
    description: str
    benchmarks: list[str]
    series: dict[str, list[float]]       # series label -> value per benchmark
    unit: str
    paper_average: float | None = None

    def average(self, label: str) -> float:
        values = self.series[label]
        return sum(values) / len(values) if values else 0.0

    def to_json(self) -> str:
        """Machine-readable figure data (for external plotting)."""
        import json

        return json.dumps(
            {
                "name": self.name,
                "description": self.description,
                "unit": self.unit,
                "benchmarks": self.benchmarks,
                "series": self.series,
                "averages": {label: self.average(label) for label in self.series},
                "paper_average": self.paper_average,
            },
            indent=2,
        )

    def to_text(self) -> str:
        headers = ["benchmark"] + list(self.series)
        rows: list[list[object]] = []
        for index, benchmark in enumerate(self.benchmarks):
            rows.append([benchmark] + [self.series[s][index] for s in self.series])
        rows.append(["average"] + [self.average(s) for s in self.series])
        table = format_table(headers, rows, title=f"{self.name}: {self.description} ({self.unit})")
        if self.paper_average is not None:
            table += f"\npaper reports an average of {self.paper_average}{self.unit.split()[0] if self.unit.startswith('%') else ''}"
        return table


# -- Figure 4 -------------------------------------------------------------------

FIG4_POLICIES = ["earlyDirtyResp", "noWBcleanVic", "llcWB"]


def run_figure4(matrix: ExperimentMatrix | None = None,
                benchmarks: Sequence[str] | None = None) -> FigureResult:
    """% saved simulated cycles of each §III optimization over baseline."""
    matrix = matrix or ExperimentMatrix()
    benchmarks = list(benchmarks or available_workloads())
    series: dict[str, list[float]] = {p: [] for p in FIG4_POLICIES}
    matrix.run_batch([
        (benchmark, policy)
        for benchmark in benchmarks
        for policy in ["baseline"] + FIG4_POLICIES
    ])
    for benchmark in benchmarks:
        base = matrix.run(benchmark, "baseline")
        for policy in FIG4_POLICIES:
            series[policy].append(matrix.run(benchmark, policy).speedup_over(base))
    return FigureResult(
        name="Figure 4",
        description="performance increment of each optimization over baseline",
        benchmarks=benchmarks,
        series=series,
        unit="% saved simulated cycles",
        paper_average=1.68,
    )


# -- Figure 5 ---------------------------------------------------------------------

FIG5_POLICIES = ["baseline", "noWBcleanVic", "llcWB", "llcWB+useL3OnWT"]


def run_figure5(matrix: ExperimentMatrix | None = None,
                benchmarks: Sequence[str] | None = None) -> FigureResult:
    """Directory<->memory reads+writes per policy (absolute counts)."""
    matrix = matrix or ExperimentMatrix()
    benchmarks = list(benchmarks or available_workloads())
    series: dict[str, list[float]] = {p: [] for p in FIG5_POLICIES}
    matrix.run_batch([
        (benchmark, policy)
        for benchmark in benchmarks
        for policy in FIG5_POLICIES
    ])
    for benchmark in benchmarks:
        for policy in FIG5_POLICIES:
            series[policy].append(float(matrix.run(benchmark, policy).mem_accesses))
    return FigureResult(
        name="Figure 5",
        description="memory reads+writes from the directory",
        benchmarks=benchmarks,
        series=series,
        unit="#accesses",
        paper_average=None,
    )


def figure5_reduction(figure: FigureResult) -> float:
    """Average % reduction of the best policy vs baseline (paper: 50.4 %)."""
    reductions = []
    for index in range(len(figure.benchmarks)):
        base = figure.series["baseline"][index]
        best = figure.series["llcWB+useL3OnWT"][index]
        if base:
            reductions.append(100.0 * (base - best) / base)
    return sum(reductions) / len(reductions) if reductions else 0.0


# -- Figures 6 and 7 -------------------------------------------------------------------

TRACKING_POLICIES = ["owner", "sharers"]


def run_figure6(matrix: ExperimentMatrix | None = None,
                benchmarks: Sequence[str] | None = None) -> FigureResult:
    """% saved cycles with owner / owner+sharer tracking (paper avg 14.4 %)."""
    matrix = matrix or ExperimentMatrix()
    benchmarks = list(benchmarks or FIGURE6_BENCHMARKS)
    series: dict[str, list[float]] = {p: [] for p in TRACKING_POLICIES}
    matrix.run_batch([
        (benchmark, policy)
        for benchmark in benchmarks
        for policy in ["baseline"] + TRACKING_POLICIES
    ])
    for benchmark in benchmarks:
        base = matrix.run(benchmark, "baseline")
        for policy in TRACKING_POLICIES:
            series[policy].append(matrix.run(benchmark, policy).speedup_over(base))
    return FigureResult(
        name="Figure 6",
        description="performance increment of owner/sharers tracking over baseline",
        benchmarks=benchmarks,
        series=series,
        unit="% saved simulated cycles",
        paper_average=14.4,
    )


def run_figure7(matrix: ExperimentMatrix | None = None,
                benchmarks: Sequence[str] | None = None) -> FigureResult:
    """% reduction in probes sent from the directory (paper avg 80.3 %)."""
    matrix = matrix or ExperimentMatrix()
    benchmarks = list(benchmarks or FIGURE6_BENCHMARKS)
    series: dict[str, list[float]] = {p: [] for p in TRACKING_POLICIES}
    matrix.run_batch([
        (benchmark, policy)
        for benchmark in benchmarks
        for policy in ["baseline"] + TRACKING_POLICIES
    ])
    for benchmark in benchmarks:
        base = matrix.run(benchmark, "baseline")
        for policy in TRACKING_POLICIES:
            probes = matrix.run(benchmark, policy).dir_probes
            reduction = (
                100.0 * (base.dir_probes - probes) / base.dir_probes
                if base.dir_probes else 0.0
            )
            series[policy].append(reduction)
    return FigureResult(
        name="Figure 7",
        description="reduction in probes sent out from the directory",
        benchmarks=benchmarks,
        series=series,
        unit="% fewer probes",
        paper_average=80.3,
    )


# -- Tables II and III --------------------------------------------------------------------


def table2_text(config: SystemConfig | None = None) -> str:
    """Table II: cache configurations."""
    config = config or SystemConfig.ryzen_2200g()
    rows = [
        ["Directory", f"{config.policy.dir_entries} entries", config.policy.dir_assoc,
         config.dir_latency_cycles],
        ["LLC", _size(config.llc.size_bytes), config.llc.assoc, config.llc.latency_cycles],
        ["L2", _size(config.l2.size_bytes), config.l2.assoc, config.l2.latency_cycles],
        ["L1D", _size(config.l1d.size_bytes), config.l1d.assoc, config.l1d.latency_cycles],
        ["L1I", _size(config.l1i.size_bytes), config.l1i.assoc, config.l1i.latency_cycles],
        ["TCC", _size(config.tcc.size_bytes), config.tcc.assoc, config.tcc.latency_cycles],
        ["TCP", _size(config.tcp.size_bytes), config.tcp.assoc, config.tcp.latency_cycles],
        ["SQC", _size(config.sqc.size_bytes), config.sqc.assoc, config.sqc.latency_cycles],
    ]
    return format_table(
        ["cache", "size", "assoc", "latency (cy)"], rows,
        title="Table II — cache configurations",
    )


def table3_text(config: SystemConfig | None = None) -> str:
    """Table III: system configuration."""
    config = config or SystemConfig.ryzen_2200g()
    rows = [
        ["#CUs", config.num_cus],
        ["#CorePairs / #CPUs", f"{config.num_corepairs} / {config.num_cpu_cores}"],
        ["CPU freq.", f"{config.cpu_freq_ghz} GHz"],
        ["GPU freq.", f"{config.gpu_freq_ghz} GHz"],
        ["#TCCs", 1],
        ["memory latency", f"{config.mem_latency_cycles} cy"],
        ["directory kind", config.policy.kind.value],
    ]
    return format_table(["parameter", "assignment"], rows,
                        title="Table III — system configuration")


def _size(size_bytes: int) -> str:
    if size_bytes >= 2**20:
        return f"{size_bytes // 2**20} MB"
    if size_bytes >= 2**10:
        return f"{size_bytes // 2**10} KB"
    return f"{size_bytes} B"
