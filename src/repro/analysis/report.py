"""Text rendering of experiment results (tables and ASCII bar charts)."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(row[col]) for row in cells) for col in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells[1:]:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            )
        )
    return "\n".join(lines)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal ASCII bar chart (the 'figure' of this reproduction)."""
    if len(labels) != len(values):
        raise ValueError("labels/values length mismatch")
    lines = [title] if title else []
    label_width = max((len(label) for label in labels), default=0)
    peak = max((abs(v) for v in values), default=1.0) or 1.0
    for label, value in zip(labels, values):
        bar = "#" * max(0, round(abs(value) / peak * width))
        sign = "-" if value < 0 else ""
        lines.append(f"{label:<{label_width}} | {sign}{bar} {value:.2f}{unit}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
