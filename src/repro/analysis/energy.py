"""First-order energy accounting.

The paper argues its optimizations improve energy efficiency through fewer
probes, fewer memory interactions, and less network traffic ("the number of
memory accesses are directly proportional to energy decrements", §VI).
This module turns the measured event counts into a per-component energy
estimate using published per-event costs of roughly 22 nm-class SoCs —
*relative* energy between two runs is the meaningful output, as with the
paper's traffic counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.system.apu import SimulationResult


@dataclass(frozen=True)
class EnergyModel:
    """Per-event energy costs in picojoules."""

    pj_per_dir_access: float = 10.0       # directory tag/state lookup
    pj_per_probe: float = 15.0            # probe delivery + remote lookup + ack
    pj_per_llc_access: float = 50.0       # 16 MB SRAM access
    pj_per_mem_access: float = 1500.0     # DRAM row access + channel
    pj_per_network_byte: float = 0.8      # on-die interconnect
    pj_per_l2_access: float = 20.0
    pj_per_l1_access: float = 5.0


@dataclass
class EnergyEstimate:
    """Energy breakdown for one run, in nanojoules."""

    breakdown_nj: dict[str, float] = field(default_factory=dict)

    @property
    def total_nj(self) -> float:
        return sum(self.breakdown_nj.values())

    def reduction_vs(self, baseline: "EnergyEstimate") -> float:
        """% energy saved relative to ``baseline``."""
        if baseline.total_nj == 0:
            return 0.0
        return 100.0 * (baseline.total_nj - self.total_nj) / baseline.total_nj

    def to_text(self) -> str:
        lines = [f"{name:<12} {value:12.2f} nJ" for name, value in
                 sorted(self.breakdown_nj.items())]
        lines.append(f"{'total':<12} {self.total_nj:12.2f} nJ")
        return "\n".join(lines)


def estimate_energy(
    result: SimulationResult, model: EnergyModel | None = None
) -> EnergyEstimate:
    """Turn a run's event counts into an energy breakdown."""
    model = model or EnergyModel()
    stats = result.stats

    def total(suffix: str) -> float:
        return float(sum(v for k, v in stats.items() if k.endswith(suffix)))

    dir_accesses = float(stats.get("dir.requests", 0))
    llc_accesses = (
        float(result.llc_hits + result.llc_misses)
        + float(stats.get("llc.victim_writes", 0))
        + float(stats.get("llc.wt_writes", 0))
    )
    l2_accesses = total(".ops.load") + total(".ops.store") + total(".ops.atomic") \
        + total(".ops.ifetch") + total(".probes_received")
    l1_accesses = total(".l1d_hits") + total(".l1i_hits") + total(".tcp_hits")

    breakdown = {
        "directory": dir_accesses * model.pj_per_dir_access / 1000.0,
        "probes": result.dir_probes * model.pj_per_probe / 1000.0,
        "llc": llc_accesses * model.pj_per_llc_access / 1000.0,
        "memory": result.mem_accesses * model.pj_per_mem_access / 1000.0,
        "network": result.network_bytes * model.pj_per_network_byte / 1000.0,
        "l2": l2_accesses * model.pj_per_l2_access / 1000.0,
        "l1": l1_accesses * model.pj_per_l1_access / 1000.0,
    }
    return EnergyEstimate(breakdown_nj=breakdown)


def energy_comparison(
    results: dict[str, SimulationResult], model: EnergyModel | None = None
) -> str:
    """A text table comparing energy across named runs (first = baseline)."""
    from repro.analysis.report import format_table

    model = model or EnergyModel()
    estimates = {name: estimate_energy(r, model) for name, r in results.items()}
    baseline = next(iter(estimates.values()))
    rows = [
        [name, f"{est.total_nj:.1f}", f"{est.reduction_vs(baseline):+.1f}",
         f"{est.breakdown_nj['memory']:.1f}", f"{est.breakdown_nj['probes']:.1f}",
         f"{est.breakdown_nj['network']:.1f}"]
        for name, est in estimates.items()
    ]
    return format_table(
        ["policy", "total nJ", "saved %", "memory nJ", "probes nJ", "network nJ"],
        rows,
        title="Energy estimate (uncore events)",
    )
