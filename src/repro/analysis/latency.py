"""Directory transaction-latency reporting.

The directory records per-request-type completion latency; this module
turns those counters into the average-latency table that explains *why* an
optimization saved cycles (e.g. owner tracking collapsing RdBlk latency by
eliding the always-missing LLC read).
"""

from __future__ import annotations

from repro.analysis.report import format_table
from repro.system.apu import SimulationResult


def latency_table(result: SimulationResult, cpu_period_ticks: int = 286) -> str:
    """Average directory-transaction latency per request type, in CPU cycles."""
    rows = []
    prefixes = sorted(
        {
            key.rsplit(".", 1)[0]
            for key in result.stats
            if ".txn." in key and key.endswith(".count")
        }
    )
    for prefix in prefixes:
        count = result.stats.get(f"{prefix}.count", 0)
        ticks = result.stats.get(f"{prefix}.latency_ticks", 0)
        if not count:
            continue
        request_type = prefix.split(".txn.")[-1]
        bank = prefix.split(".txn.")[0]
        label = request_type if bank == "dir" else f"{request_type} ({bank})"
        rows.append([label, int(count), f"{ticks / count / cpu_period_ticks:.1f}"])
    return format_table(
        ["request", "count", "avg latency (cpu cycles)"],
        rows,
        title=f"directory transaction latency — {result.workload}",
    )


def average_latency(result: SimulationResult, request_type: str) -> float:
    """Average latency (ticks) of one request type across all banks."""
    count = sum(
        v for k, v in result.stats.items()
        if k.endswith(f".txn.{request_type}.count")
    )
    ticks = sum(
        v for k, v in result.stats.items()
        if k.endswith(f".txn.{request_type}.latency_ticks")
    )
    return ticks / count if count else 0.0
