"""Table-coverage accounting: universes, state, reports, baselines.

Coverage is counted over ``(table, state, event)`` triples — the exact
vocabulary of the declared :class:`TransitionTable` rows, recorded at the
engine's single dispatch point by :class:`TransitionCoverage`.  The
*universe* for a policy is every handled row of every table a system built
for that policy dispatches through, restricted to rows whose source state
is statically reachable (the same reachability ``repro lint-protocol``
computes) — so the dynamic coverage report and the static lint speak the
same language:

- a universe row the fuzzer never hit is a **missing litmus shape**
  (statically reachable per lint, dynamically unexercised);
- a statically-dead row the fuzzer also never hit is a **dead-entry
  candidate** (shipped tables lint clean, so this list being empty *is*
  the agreement with lint the acceptance criteria demand).
"""

from __future__ import annotations

import json
from functools import lru_cache

from repro.coherence.engine import state_label

Triple = tuple[str, str, str]


@lru_cache(maxsize=None)
def _policy_tables(policy_name: str):
    """Every distinct table a litmus system under this policy dispatches
    through, keyed by table name (unique within one policy)."""
    from repro.system.builder import build_system
    from repro.verify.litmus.harness import POLICY_VARIANTS, litmus_config

    system = build_system(litmus_config(POLICY_VARIANTS[policy_name]))
    tables = {}
    for controller in (*system.directories, *system.corepairs, *system.tccs):
        for table in controller.fsm_tables():
            tables.setdefault(table.name, table)
    return tables


@lru_cache(maxsize=None)
def policy_universe(policy_name: str) -> frozenset[Triple]:
    """Statically reachable handled rows of every table under a policy."""
    triples: set[Triple] = set()
    for name, table in _policy_tables(policy_name).items():
        reachable = table.reachable_states()
        for transition in table.transitions():
            if transition.state in reachable:
                triples.add((name, state_label(transition.state),
                             transition.event))
    return frozenset(triples)


@lru_cache(maxsize=None)
def policy_dead_rows(policy_name: str) -> frozenset[Triple]:
    """Statically-dead handled rows (lint's ``dead_transitions``)."""
    triples: set[Triple] = set()
    for name, table in _policy_tables(policy_name).items():
        for transition in table.dead_transitions():
            triples.add((name, state_label(transition.state),
                         transition.event))
    return frozenset(triples)


class CoverageState:
    """Accumulated per-policy transition coverage, JSON round-trippable."""

    FORMAT = "repro-fuzz-coverage/1"

    def __init__(self) -> None:
        self.hits: dict[str, set[Triple]] = {}

    def policy_hits(self, policy: str) -> set[Triple]:
        return self.hits.get(policy, set())

    def add(self, policy: str, triples) -> set[Triple]:
        """Merge triples for a policy; returns the genuinely new ones."""
        seen = self.hits.setdefault(policy, set())
        fresh = {tuple(triple) for triple in triples} - seen
        seen.update(fresh)
        return fresh

    def total(self) -> int:
        return sum(len(seen) for seen in self.hits.values())

    def to_json(self) -> dict:
        return {
            "format": self.FORMAT,
            "policies": {
                policy: [list(triple) for triple in sorted(seen)]
                for policy, seen in sorted(self.hits.items())
            },
        }

    @classmethod
    def from_json(cls, data: dict) -> "CoverageState":
        if data.get("format") != cls.FORMAT:
            raise ValueError(
                f"not a fuzz coverage state (format {data.get('format')!r})"
            )
        state = cls()
        for policy, triples in data.get("policies", {}).items():
            state.add(policy, (tuple(triple) for triple in triples))
        return state

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CoverageState":
        with open(path) as handle:
            return cls.from_json(json.load(handle))


def coverage_report(
    state: CoverageState, policies=None
) -> tuple[str, dict]:
    """Per-policy table-coverage report as ``(text, data)``.

    ``data`` is stable (sorted keys and rows), so serializing it is the
    byte-identical artifact the determinism tests and the CI baseline
    gate consume.
    """
    policies = sorted(policies) if policies is not None else sorted(state.hits)
    data: dict = {"format": "repro-fuzz-report/1", "policies": {}}
    lines = ["policy                            covered/universe   %   unhit"]
    for policy in policies:
        universe = policy_universe(policy)
        hits = state.policy_hits(policy) & universe
        missing = sorted(universe - hits)
        dead = sorted(policy_dead_rows(policy) - state.policy_hits(policy))
        percent = 100.0 * len(hits) / len(universe) if universe else 100.0
        data["policies"][policy] = {
            "universe": len(universe),
            "covered": len(hits),
            "percent": round(percent, 2),
            "reachable_unhit": [list(triple) for triple in missing],
            "dead_candidates": [list(triple) for triple in dead],
        }
        lines.append(
            f"{policy:<32} {len(hits):>6}/{len(universe):<8} {percent:6.2f} "
            f"{len(missing):>5}"
        )
    covered = sum(entry["covered"] for entry in data["policies"].values())
    total = sum(entry["universe"] for entry in data["policies"].values())
    lines.append(
        f"overall: {covered}/{total} reachable rows covered over "
        f"{len(policies)} policies"
    )
    return "\n".join(lines), data


def report_json(data: dict) -> str:
    """The canonical (byte-stable) serialization of a report dict."""
    return json.dumps(data, indent=2, sort_keys=True) + "\n"


def unhit_detail(data: dict, policy: str) -> str:
    """Human-readable reachable-but-unhit rows for one policy."""
    entry = data["policies"][policy]
    lines = [f"{policy}: {len(entry['reachable_unhit'])} reachable rows unhit"]
    lines.extend(
        f"  {table:<20} {state:<8} x {event}"
        for table, state, event in entry["reachable_unhit"]
    )
    for table, state, event in entry["dead_candidates"]:
        lines.append(f"  DEAD-CANDIDATE {table:<20} {state:<8} x {event}")
    return "\n".join(lines)


def check_baseline(data: dict, baseline: dict) -> list[str]:
    """Regressions of a report against a committed baseline.

    The baseline maps policy names to ``{"min_percent": float}`` floors
    (plus an optional ``"min_overall_rows"`` total-coverage floor); a
    report below any floor is a regression CI fails on.
    """
    problems: list[str] = []
    for policy, floor in sorted(baseline.get("policies", {}).items()):
        entry = data["policies"].get(policy)
        if entry is None:
            problems.append(f"{policy}: missing from the coverage report")
            continue
        if entry["percent"] < floor["min_percent"]:
            problems.append(
                f"{policy}: coverage {entry['percent']:.2f}% below the "
                f"baseline floor {floor['min_percent']:.2f}%"
            )
    floor_rows = baseline.get("min_overall_rows")
    if floor_rows is not None:
        covered = sum(e["covered"] for e in data["policies"].values())
        if covered < floor_rows:
            problems.append(
                f"overall covered rows {covered} below baseline {floor_rows}"
            )
    return problems
