"""Coverage-guided litmus fuzzing.

The fuzzer closes the loop the fixed litmus sweep leaves open: instead of
replaying a hand-written grid, it *generates* random litmus programs from
the JSON-able DSL plus schedule perturbations, measures which protocol
table rows each run fires (via :class:`TransitionCoverage` hooks), and
keeps a minimized corpus of the inputs that reached new rows.  The
coverage report cross-checks ``repro lint-protocol``: a row that is
reachable per the static lint but never hit by the fuzzer is a missing
litmus shape; a row hit by neither is a dead-entry candidate.

- :mod:`generate` — deterministic ``(seed, iteration) -> (test, schedule)``
- :mod:`coverage` — per-policy table universes, coverage state, reports
- :mod:`corpus` — deduplicated, ddmin-shrunk replayable JSON artifacts
- :mod:`campaign` — the budgeted loop, fanned out via ``resolve_litmus``
"""

from repro.verify.fuzz.campaign import CampaignResult, run_campaign
from repro.verify.fuzz.corpus import Corpus, CorpusEntry
from repro.verify.fuzz.coverage import (
    CoverageState,
    coverage_report,
    policy_universe,
)
from repro.verify.fuzz.generate import generate_case, generate_schedule

__all__ = [
    "CampaignResult",
    "Corpus",
    "CorpusEntry",
    "CoverageState",
    "coverage_report",
    "generate_case",
    "generate_schedule",
    "policy_universe",
    "run_campaign",
]
