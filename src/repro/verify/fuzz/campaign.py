"""The budgeted coverage-guided campaign loop.

One campaign is a deterministic function of ``(seed, budget, policies)``:
iteration *i* generates ``generate_case(seed, i)`` and runs it under every
selected policy, batched through :func:`resolve_litmus` (store-backed, so
a re-run or a resumed campaign replays warm iterations as lookups).
Outcomes are processed strictly in input order:

- every run's ``(table, state, event)`` triples merge into the per-policy
  :class:`CoverageState`; a run that claimed *new* rows is shrunk with the
  coverage-preserving ddmin and added to the corpus;
- every *failing* run is shrunk with the failure-kind-preserving ddmin and
  dumped as a replayable artifact under ``<corpus>/failures/`` (one per
  ``(policy, failure kind)`` signature — later duplicates are counted,
  not re-minimized).

The coverage state persists as ``<corpus>/coverage.json`` after every
batch, so an interrupted campaign resumes by simply re-running: warm
iterations come back from the store, already-claimed rows add no corpus
entries, and the walk continues where it stopped.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field

from repro.verify.fuzz.corpus import Corpus, CorpusEntry, minimize_entry
from repro.verify.fuzz.coverage import CoverageState, coverage_report
from repro.verify.fuzz.generate import generate_case, profile_for_targets

#: programs per resolve_litmus batch (each fans out over the policies)
BATCH_PROGRAMS = 25

#: default shrink budgets (candidate runs each)
MINIMIZE_RUNS = 120
FAILURE_MINIMIZE_RUNS = 400

#: default policy selection: one representative per tracking mode — the
#: stateless baseline, owner-only, and full sharer tracking
DEFAULT_POLICIES = ("baseline", "owner", "sharers")

COVERAGE_FILE = "coverage.json"
REPORT_FILE = "report.json"


@dataclass
class CampaignResult:
    """What one campaign did, plus where the artifacts live."""

    seed: int
    budget: int
    policies: list[str]
    runs: int = 0
    iterations: int = 0
    new_entries: int = 0
    failures: list[str] = field(default_factory=list)  # artifact paths
    corpus_digest: str = ""
    report_text: str = ""
    report_data: dict = field(default_factory=dict)
    targets: list[tuple] = field(default_factory=list)
    targets_hit: list[tuple] = field(default_factory=list)

    def describe(self) -> str:
        lines = [
            f"fuzz campaign: seed={self.seed} budget={self.budget} "
            f"({self.iterations} programs x {len(self.policies)} policies, "
            f"{self.runs} runs)",
            f"corpus: {self.new_entries} new entries, "
            f"digest {self.corpus_digest}",
        ]
        if self.targets:
            hit = set(self.targets_hit)
            for target in self.targets:
                table, state, event = target
                status = "HIT" if target in hit else "unhit"
                lines.append(f"target {table}:{state}:{event} — {status}")
        if self.failures:
            lines.append(f"FAILURES ({len(self.failures)} minimized):")
            lines.extend(f"  {path}" for path in self.failures)
        lines.append(self.report_text)
        return "\n".join(lines)


def _chunks(sequence, size):
    for start in range(0, len(sequence), size):
        yield sequence[start:start + size]


def run_campaign(
    seed: int,
    budget: int,
    corpus_dir: str,
    policies=None,
    store=None,
    jobs: int | None = None,
    timeout_s: float | None = None,
    minimize_runs: int = MINIMIZE_RUNS,
    failure_minimize_runs: int = FAILURE_MINIMIZE_RUNS,
    progress=None,
    mutate_system=None,
    max_events: int | None = None,
    targets=None,
) -> CampaignResult:
    """Run one coverage-guided campaign of ``budget`` litmus runs.

    ``budget`` counts ``(litmus, policy, schedule)`` runs, not generated
    programs: each iteration consumes ``len(policies)`` runs, so the same
    budget means the same wall-clock class regardless of how many
    policies are swept.  Shrink runs (corpus and failure minimization)
    are not budgeted — they are the campaign's output, not its search.

    ``mutate_system`` injects a protocol fault into every run (and every
    shrink candidate); it forces inline execution and disables both the
    store and corpus writes — a fault-injection campaign only looks for
    the failure, it must not pollute the shared coverage corpus.

    ``targets`` — an iterable of ``(table, state, event)`` triples —
    switches the campaign to **directed** mode: generation uses
    :func:`profile_for_targets` to bias op weights and tiny-directory
    schedules toward the named rows, and the result reports which
    targets any policy hit.
    """
    from repro.store.resolve import resolve_litmus
    from repro.verify.litmus.minimize import (
        artifact_to_dict,
        minimize_failure,
    )

    policies = list(policies) if policies is not None else list(DEFAULT_POLICIES)
    if not policies:
        raise ValueError("need at least one policy")
    emit = progress or (lambda line: None)
    fault_mode = mutate_system is not None
    targets = [tuple(target) for target in targets or ()]
    profile = profile_for_targets(targets) if targets else None
    if targets:
        emit(f"[fuzz] directed mode: {len(targets)} target row(s), "
             f"profile {profile.name}")

    corpus = Corpus(corpus_dir)
    coverage_path = os.path.join(corpus_dir, COVERAGE_FILE)
    state = CoverageState()
    if not fault_mode and os.path.exists(coverage_path):
        state = CoverageState.load(coverage_path)
        emit(f"[fuzz] resuming: {state.total()} rows already covered")

    result = CampaignResult(seed=seed, budget=budget, policies=policies,
                            targets=targets)
    iterations = budget // len(policies)
    result.iterations = iterations
    minimized_failures: set[tuple[str, str]] = set()

    for batch_start in _chunks(range(iterations), BATCH_PROGRAMS):
        cases = [
            generate_case(seed, iteration, profile)
            for iteration in batch_start
        ]
        runs = [
            (test, policy, schedule)
            for test, schedule in cases
            for policy in policies
        ]
        outcomes = resolve_litmus(
            runs,
            store=None if fault_mode else store,
            jobs=jobs,
            timeout_s=timeout_s,
            progress=progress,
            coverage=True,
            max_events=max_events,
            mutate_system=mutate_system,
        )
        result.runs += len(runs)

        for (test, policy, schedule), outcome in zip(runs, outcomes):
            fresh = state.add(policy, outcome.coverage or ())
            if not outcome.ok:
                signature = (policy, outcome.failure_kind)
                if signature not in minimized_failures:
                    minimized_failures.add(signature)
                    emit(f"[fuzz] {test.name}@{policy}: "
                         f"{outcome.failure_kind} — minimizing")
                    shrunk = minimize_failure(
                        test, policy, schedule,
                        mutate_system=mutate_system,
                        max_runs=failure_minimize_runs,
                    )
                    if shrunk is not None:
                        path = _dump_failure(
                            corpus_dir, artifact_to_dict(shrunk)
                        )
                        result.failures.append(path)
                        emit(f"[fuzz] {shrunk.describe()}")
                        emit(f"[fuzz] artifact: {path}")
                continue
            if fresh and not fault_mode:
                entry = CorpusEntry.make(
                    test, schedule, policy, fresh,
                    seed=seed, iteration=_iteration_of(test),
                )
                entry = minimize_entry(entry, max_runs=minimize_runs)
                if corpus.add(entry):
                    result.new_entries += 1
                    emit(f"[fuzz] corpus += {entry.describe()}")
        if not fault_mode:
            state.save(coverage_path)

    if targets:
        covered = set()
        for policy in policies:
            covered |= state.policy_hits(policy)
        result.targets_hit = [t for t in targets if t in covered]

    report_text, report_data = coverage_report(state, policies)
    result.report_text = report_text
    result.report_data = report_data
    result.corpus_digest = corpus.corpus_digest()
    if not fault_mode:
        state.save(coverage_path)
        from repro.verify.fuzz.coverage import report_json

        with open(os.path.join(corpus_dir, REPORT_FILE), "w") as handle:
            handle.write(report_json(report_data))
    return result


def _iteration_of(test) -> int:
    """Recover the campaign iteration from a generated test's name."""
    try:
        return int(test.name.rsplit("_", 1)[1])
    except (IndexError, ValueError):
        return -1


def _dump_failure(corpus_dir: str, artifact: dict) -> str:
    """Write one minimized failure artifact, content-addressed."""
    failures_dir = os.path.join(corpus_dir, "failures")
    os.makedirs(failures_dir, exist_ok=True)
    digest = hashlib.sha256(
        json.dumps(artifact, sort_keys=True, default=str).encode()
    ).hexdigest()
    path = os.path.join(failures_dir, f"fail-{digest[:16]}.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    return path
