"""Deterministic litmus-program generation.

``generate_case(seed, iteration)`` is a pure function: the pair seeds a
private :class:`random.Random` (string seeding, which hashes through
SHA-512 and is stable across processes and platforms), so the same seed
and iteration always produce byte-identical tests and schedules — the
property the corpus-digest regression tests pin.

Generated programs are **verifier-only** (``postcondition=None``): random
racing writes have schedule-dependent finals, so the exact-postcondition
discipline of the hand-written suite cannot apply.  The invariant monitor
and the value oracle stay attached and are the fuzzer's bug detectors.
Spins are deliberately never emitted: a generated spin whose writer was
never generated would drown the campaign in ``spin_timeout`` noise.

Layout placement mirrors the hand-written suite's three interesting
shapes: fresh contiguous lines, same-line words (false sharing), and
``L2_CONFLICT_STRIDE``-apart lines (same L2 set, forcing evictions).

A :class:`FuzzProfile` parameterizes the op-kind weights and the
tiny-directory schedule chance.  The default profile emits ``flush``
ops (conflict-load eviction pressure — the only way to reach the
``Evict``/``Vic*`` protocol rows from a litmus program) and occasionally
shrinks the directory cache (``Schedule.dir_entries``), which is what
drives the directory's ``B*``-state replacement transients.
:func:`profile_for_targets` biases a profile toward a set of
``(table, state, event)`` rows for directed campaigns
(``repro fuzz run --target``).
"""

from __future__ import annotations

import dataclasses
import random

from repro.mem.address import WORDS_PER_LINE
from repro.verify.litmus.dsl import DmaSpec, LitmusTest
from repro.verify.litmus.registry import L2_CONFLICT_STRIDE
from repro.verify.litmus.schedule import SCHEDULE_VARIANTS, Schedule

#: atomic RMW kinds the generator draws from (CAS compares against the
#: interpreter's default 0, which is still a legal, racy RMW)
ATOMIC_OPS = ("add", "inc", "exch", "cas", "max", "min", "and", "or")

#: op-kind vocabularies, index-aligned with the profile weight tuples
CPU_KINDS = ("store", "load", "atomic", "think", "flush")
GPU_KINDS = ("store", "load", "atomic", "vstore", "vload",
             "acq", "rel", "think", "flush")


@dataclasses.dataclass(frozen=True)
class FuzzProfile:
    """Generator bias knobs: op-kind weights plus schedule shaping.

    Weights are index-aligned with :data:`CPU_KINDS` / :data:`GPU_KINDS`.
    ``tiny_dir_chance`` is the probability a generated schedule carries a
    ``dir_entries`` override drawn from ``tiny_dir_entries``, shrinking
    the directory cache so entry replacement (``DirEvict`` / ``B*``
    transients) happens under ordinary traffic.
    """

    name: str = "default"
    cpu_weights: tuple[int, ...] = (4, 3, 2, 1, 1)
    gpu_weights: tuple[int, ...] = (3, 3, 2, 2, 2, 1, 1, 1, 1)
    tiny_dir_chance: float = 0.15
    tiny_dir_entries: tuple[int, ...] = (8, 16)

    def __post_init__(self) -> None:
        if len(self.cpu_weights) != len(CPU_KINDS):
            raise ValueError(f"cpu_weights needs {len(CPU_KINDS)} entries")
        if len(self.gpu_weights) != len(GPU_KINDS):
            raise ValueError(f"gpu_weights needs {len(GPU_KINDS)} entries")
        if not 0.0 <= self.tiny_dir_chance <= 1.0:
            raise ValueError("tiny_dir_chance must be a probability")


DEFAULT_PROFILE = FuzzProfile()

#: event names whose rows need eviction pressure (flush ops) to fire
_EVICTION_EVENTS = frozenset(
    {"Evict", "EvictDone", "VicClean", "VicDirty", "WBAck"}
)
#: directory states/events that only appear while a directory-cache
#: entry is being replaced or refilled — tiny directories force them
_DIR_PRESSURE_EVENTS = frozenset({"DirEvict", "MemData", "LlcData"})


def profile_for_targets(targets) -> FuzzProfile:
    """Bias a profile toward a set of ``(table, state, event)`` rows.

    Purely heuristic: each target nudges the knob that makes its row
    family reachable more often (flush weight for eviction rows, tiny
    directories for ``B*``/``U`` transients, GPU release fences for the
    directory ``Flush`` event).  The result is deterministic in the
    target list, so a directed campaign is as replayable as a default
    one.
    """
    targets = [tuple(target) for target in targets]
    if not targets:
        return DEFAULT_PROFILE
    cpu = list(DEFAULT_PROFILE.cpu_weights)
    gpu = list(DEFAULT_PROFILE.gpu_weights)
    tiny_dir_chance = DEFAULT_PROFILE.tiny_dir_chance
    for table, state, event in targets:
        if (state.startswith(("B", "U"))
                or event in _DIR_PRESSURE_EVENTS
                or event == "RdBlkS"):
            # B*/U transients and DirEvict need directory-entry
            # replacement mid-flight; RdBlkS rows beyond I need a code
            # line's entry evicted and refetched
            tiny_dir_chance = max(tiny_dir_chance, 0.7)
        if event in _EVICTION_EVENTS or event.startswith("Prb"):
            cpu[CPU_KINDS.index("flush")] += 4
            gpu[GPU_KINDS.index("flush")] += 2
        if table.startswith("tcc"):
            gpu[GPU_KINDS.index("flush")] += 3
            gpu[GPU_KINDS.index("rel")] += 2
        if event == "Flush":
            # the directory Flush event is the GPU release fence's
            # per-bank broadcast
            gpu[GPU_KINDS.index("rel")] += 4
    return FuzzProfile(
        name="directed",
        cpu_weights=tuple(cpu),
        gpu_weights=tuple(gpu),
        tiny_dir_chance=tiny_dir_chance,
    )

#: generator bounds — small programs shrink fast and still reach the
#: interesting protocol rows via placement + schedule perturbation
MAX_LOCS = 5
MAX_THREADS = 4          # SystemConfig.small core count
MAX_WAVES = 2            # one workgroup per wave; small has 2 CUs
MAX_OPS_PER_AGENT = 6
MAX_DMA = 2
MAX_VALUE = 255


def _rng(seed: int, iteration: int) -> random.Random:
    return random.Random(f"fuzz:{seed}:{iteration}")


def _make_layout(rng: random.Random) -> dict[str, tuple[int, int]]:
    """2..MAX_LOCS locations over fresh / same / conflict-stride lines."""
    count = rng.randint(2, MAX_LOCS)
    layout: dict[str, tuple[int, int]] = {}
    used: set[tuple[int, int]] = set()
    lines = [0]
    for index in range(count):
        loc = f"x{index}"
        for _attempt in range(16):
            shape = rng.random()
            if index == 0 or shape < 0.4:
                line = max(lines) + (0 if index == 0 else 1)
            elif shape < 0.75:
                line = rng.choice(lines)       # false sharing
            else:
                line = rng.choice(lines) + L2_CONFLICT_STRIDE  # same L2 set
            word = rng.randrange(WORDS_PER_LINE)
            if (line, word) not in used:
                break
        else:  # the line/word space is tiny only in pathological draws
            line, word = max(lines) + 1, 0
        used.add((line, word))
        lines.append(line)
        layout[loc] = (line, word)
    return layout


def _cpu_op(rng: random.Random, locs: list[str], index: int,
            profile: FuzzProfile) -> tuple:
    kind = rng.choices(CPU_KINDS, weights=profile.cpu_weights)[0]
    if kind == "store":
        return ("store", rng.choice(locs), rng.randint(1, MAX_VALUE))
    if kind == "load":
        return ("load", rng.choice(locs), f"r{index}")
    if kind == "atomic":
        return ("atomic", rng.choice(locs), rng.choice(ATOMIC_OPS),
                rng.randint(1, 7), f"a{index}")
    if kind == "flush":
        return ("flush", rng.choice(locs))
    return ("think", rng.randint(1, 200))


def _gpu_op(rng: random.Random, locs: list[str], index: int,
            profile: FuzzProfile) -> tuple:
    kind = rng.choices(GPU_KINDS, weights=profile.gpu_weights)[0]
    if kind == "store":
        return ("store", rng.choice(locs), rng.randint(1, MAX_VALUE))
    if kind == "load":
        return ("load", rng.choice(locs), f"r{index}")
    if kind == "atomic":
        return ("atomic", rng.choice(locs), rng.choice(ATOMIC_OPS),
                rng.randint(1, 7), f"a{index}", rng.choice(("slc", "glc")))
    if kind in ("vstore", "vload"):
        width = rng.randint(1, min(3, len(locs)))
        vlocs = rng.sample(locs, width)
        if kind == "vstore":
            return ("vstore", vlocs, rng.randint(1, MAX_VALUE))
        return ("vload", vlocs, f"v{index}")
    if kind == "acq":
        return ("acq",)
    if kind == "rel":
        return ("rel",)
    if kind == "flush":
        return ("flush", rng.choice(locs))
    return ("think", rng.randint(1, 200))


def _make_dma(rng: random.Random,
              layout: dict[str, tuple[int, int]]) -> list[DmaSpec]:
    """0..MAX_DMA transfers, bounded to stay inside the layout's lines
    (a transfer past the last line would trample the code region)."""
    num_lines = 1 + max(line for line, _word in layout.values())
    specs = []
    for _ in range(rng.randint(0, MAX_DMA)):
        loc = rng.choice(sorted(layout))
        room = num_lines - layout[loc][0]
        specs.append(DmaSpec(
            kind=rng.choice(("read", "write")),
            loc=loc,
            lines=rng.randint(1, max(1, room)),
            value=rng.randint(0, MAX_VALUE),
        ))
    return specs


def generate_schedule(rng: random.Random,
                      profile: FuzzProfile = DEFAULT_PROFILE) -> Schedule:
    """Canonical ~1/4 of the time, otherwise a random rotation variant
    under a random schedule seed; a ``tiny_dir_chance`` roll then layers
    a shrunken directory cache on top of either shape."""
    if rng.random() < 0.25:
        schedule = Schedule(0)
    else:
        variant = rng.choice(SCHEDULE_VARIANTS)
        schedule = variant.schedule(rng.randint(1, 10_000))
    # the roll is unconditional so the rng draw count — and therefore the
    # rest of the case stream — is identical across profiles
    roll = rng.random()
    entries = rng.choice(profile.tiny_dir_entries)
    if roll < profile.tiny_dir_chance:
        schedule = dataclasses.replace(schedule, dir_entries=entries)
    return schedule


def generate_case(
    seed: int, iteration: int, profile: FuzzProfile | None = None
) -> tuple[LitmusTest, Schedule]:
    """One deterministic ``(litmus, schedule)`` pair for a campaign slot."""
    profile = profile or DEFAULT_PROFILE
    rng = _rng(seed, iteration)
    layout = _make_layout(rng)
    locs = sorted(layout)

    threads = [
        [_cpu_op(rng, locs, op, profile)
         for op in range(rng.randint(1, MAX_OPS_PER_AGENT))]
        for _ in range(rng.randint(1, MAX_THREADS))
    ]
    gpu_waves = [
        [_gpu_op(rng, locs, op, profile)
         for op in range(rng.randint(1, MAX_OPS_PER_AGENT))]
        for _ in range(rng.randint(0, MAX_WAVES))
    ]
    dma = _make_dma(rng, layout)
    init = {
        loc: rng.randint(0, MAX_VALUE)
        for loc in locs if rng.random() < 0.5
    }

    test = LitmusTest(
        name=f"fuzz_{seed}_{iteration}",
        description=f"generated (seed={seed}, iteration={iteration})",
        layout=layout,
        threads=threads,
        gpu_waves=gpu_waves,
        dma=dma,
        init=init,
        postcondition=None,
    )
    test.validate()
    return test, generate_schedule(rng, profile)
