"""Deterministic litmus-program generation.

``generate_case(seed, iteration)`` is a pure function: the pair seeds a
private :class:`random.Random` (string seeding, which hashes through
SHA-512 and is stable across processes and platforms), so the same seed
and iteration always produce byte-identical tests and schedules — the
property the corpus-digest regression tests pin.

Generated programs are **verifier-only** (``postcondition=None``): random
racing writes have schedule-dependent finals, so the exact-postcondition
discipline of the hand-written suite cannot apply.  The invariant monitor
and the value oracle stay attached and are the fuzzer's bug detectors.
Spins are deliberately never emitted: a generated spin whose writer was
never generated would drown the campaign in ``spin_timeout`` noise.

Layout placement mirrors the hand-written suite's three interesting
shapes: fresh contiguous lines, same-line words (false sharing), and
``L2_CONFLICT_STRIDE``-apart lines (same L2 set, forcing evictions).
"""

from __future__ import annotations

import random

from repro.mem.address import WORDS_PER_LINE
from repro.verify.litmus.dsl import DmaSpec, LitmusTest
from repro.verify.litmus.registry import L2_CONFLICT_STRIDE
from repro.verify.litmus.schedule import SCHEDULE_VARIANTS, Schedule

#: atomic RMW kinds the generator draws from (CAS compares against the
#: interpreter's default 0, which is still a legal, racy RMW)
ATOMIC_OPS = ("add", "inc", "exch", "cas", "max", "min", "and", "or")

#: generator bounds — small programs shrink fast and still reach the
#: interesting protocol rows via placement + schedule perturbation
MAX_LOCS = 5
MAX_THREADS = 4          # SystemConfig.small core count
MAX_WAVES = 2            # one workgroup per wave; small has 2 CUs
MAX_OPS_PER_AGENT = 6
MAX_DMA = 2
MAX_VALUE = 255


def _rng(seed: int, iteration: int) -> random.Random:
    return random.Random(f"fuzz:{seed}:{iteration}")


def _make_layout(rng: random.Random) -> dict[str, tuple[int, int]]:
    """2..MAX_LOCS locations over fresh / same / conflict-stride lines."""
    count = rng.randint(2, MAX_LOCS)
    layout: dict[str, tuple[int, int]] = {}
    used: set[tuple[int, int]] = set()
    lines = [0]
    for index in range(count):
        loc = f"x{index}"
        for _attempt in range(16):
            shape = rng.random()
            if index == 0 or shape < 0.4:
                line = max(lines) + (0 if index == 0 else 1)
            elif shape < 0.75:
                line = rng.choice(lines)       # false sharing
            else:
                line = rng.choice(lines) + L2_CONFLICT_STRIDE  # same L2 set
            word = rng.randrange(WORDS_PER_LINE)
            if (line, word) not in used:
                break
        else:  # the line/word space is tiny only in pathological draws
            line, word = max(lines) + 1, 0
        used.add((line, word))
        lines.append(line)
        layout[loc] = (line, word)
    return layout


def _cpu_op(rng: random.Random, locs: list[str], index: int) -> tuple:
    kind = rng.choices(
        ("store", "load", "atomic", "think"), weights=(4, 3, 2, 1)
    )[0]
    if kind == "store":
        return ("store", rng.choice(locs), rng.randint(1, MAX_VALUE))
    if kind == "load":
        return ("load", rng.choice(locs), f"r{index}")
    if kind == "atomic":
        return ("atomic", rng.choice(locs), rng.choice(ATOMIC_OPS),
                rng.randint(1, 7), f"a{index}")
    return ("think", rng.randint(1, 200))


def _gpu_op(rng: random.Random, locs: list[str], index: int) -> tuple:
    kind = rng.choices(
        ("store", "load", "atomic", "vstore", "vload", "acq", "rel", "think"),
        weights=(3, 3, 2, 2, 2, 1, 1, 1),
    )[0]
    if kind == "store":
        return ("store", rng.choice(locs), rng.randint(1, MAX_VALUE))
    if kind == "load":
        return ("load", rng.choice(locs), f"r{index}")
    if kind == "atomic":
        return ("atomic", rng.choice(locs), rng.choice(ATOMIC_OPS),
                rng.randint(1, 7), f"a{index}", rng.choice(("slc", "glc")))
    if kind in ("vstore", "vload"):
        width = rng.randint(1, min(3, len(locs)))
        vlocs = rng.sample(locs, width)
        if kind == "vstore":
            return ("vstore", vlocs, rng.randint(1, MAX_VALUE))
        return ("vload", vlocs, f"v{index}")
    if kind == "acq":
        return ("acq",)
    if kind == "rel":
        return ("rel",)
    return ("think", rng.randint(1, 200))


def _make_dma(rng: random.Random,
              layout: dict[str, tuple[int, int]]) -> list[DmaSpec]:
    """0..MAX_DMA transfers, bounded to stay inside the layout's lines
    (a transfer past the last line would trample the code region)."""
    num_lines = 1 + max(line for line, _word in layout.values())
    specs = []
    for _ in range(rng.randint(0, MAX_DMA)):
        loc = rng.choice(sorted(layout))
        room = num_lines - layout[loc][0]
        specs.append(DmaSpec(
            kind=rng.choice(("read", "write")),
            loc=loc,
            lines=rng.randint(1, max(1, room)),
            value=rng.randint(0, MAX_VALUE),
        ))
    return specs


def generate_schedule(rng: random.Random) -> Schedule:
    """Canonical ~1/4 of the time, otherwise a random rotation variant
    under a random schedule seed."""
    if rng.random() < 0.25:
        return Schedule(0)
    variant = rng.choice(SCHEDULE_VARIANTS)
    return variant.schedule(rng.randint(1, 10_000))


def generate_case(seed: int, iteration: int) -> tuple[LitmusTest, Schedule]:
    """One deterministic ``(litmus, schedule)`` pair for a campaign slot."""
    rng = _rng(seed, iteration)
    layout = _make_layout(rng)
    locs = sorted(layout)

    threads = [
        [_cpu_op(rng, locs, op) for op in range(rng.randint(1, MAX_OPS_PER_AGENT))]
        for _ in range(rng.randint(1, MAX_THREADS))
    ]
    gpu_waves = [
        [_gpu_op(rng, locs, op) for op in range(rng.randint(1, MAX_OPS_PER_AGENT))]
        for _ in range(rng.randint(0, MAX_WAVES))
    ]
    dma = _make_dma(rng, layout)
    init = {
        loc: rng.randint(0, MAX_VALUE)
        for loc in locs if rng.random() < 0.5
    }

    test = LitmusTest(
        name=f"fuzz_{seed}_{iteration}",
        description=f"generated (seed={seed}, iteration={iteration})",
        layout=layout,
        threads=threads,
        gpu_waves=gpu_waves,
        dma=dma,
        init=init,
        postcondition=None,
    )
    test.validate()
    return test, generate_schedule(rng)
