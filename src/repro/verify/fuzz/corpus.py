"""The fuzz corpus: deduplicated, minimized, replayable JSON inputs.

A corpus entry is one ``(litmus, schedule, policy)`` input that reached
table rows no earlier input had reached, together with the rows it
claimed.  Entries are content-addressed (SHA-256 of the canonical JSON),
so re-running a campaign can only ever re-create identical files — which
makes ``corpus_digest`` (the hash of the sorted entry digests) the one
number the determinism regression pins.

Minimization reuses the litmus ddmin machinery, but with coverage as the
predicate instead of failure: ops are dropped while the shrunk program
still fires every row the entry claimed, so corpus entries stay small
without losing the coverage they exist to witness.
"""

from __future__ import annotations

import hashlib
import json
import os

from repro.verify.litmus.dsl import LitmusTest
from repro.verify.litmus.harness import run_litmus
from repro.verify.litmus.minimize import _Budget, _ddmin
from repro.verify.litmus.schedule import Schedule

ENTRY_FORMAT = "repro-fuzz-corpus/1"


class CorpusEntry:
    """One coverage-claiming input, in its serialized (replayable) form."""

    def __init__(self, test: dict, schedule: dict, policy: str,
                 new_coverage: list, seed: int, iteration: int) -> None:
        self.test = test                  # LitmusTest.to_json()
        self.schedule = schedule          # Schedule.to_json()
        self.policy = policy
        self.new_coverage = sorted(tuple(t) for t in new_coverage)
        self.seed = seed
        self.iteration = iteration

    @classmethod
    def make(cls, test: LitmusTest, schedule: Schedule, policy: str,
             new_coverage, seed: int, iteration: int) -> "CorpusEntry":
        return cls(test.to_json(), schedule.to_json(), policy,
                   list(new_coverage), seed, iteration)

    def litmus(self) -> LitmusTest:
        return LitmusTest.from_json(self.test)

    def schedule_obj(self) -> Schedule:
        return Schedule.from_json(self.schedule)

    def to_json(self) -> dict:
        return {
            "format": ENTRY_FORMAT,
            "test": self.test,
            "schedule": self.schedule,
            "policy": self.policy,
            "new_coverage": [list(t) for t in self.new_coverage],
            "seed": self.seed,
            "iteration": self.iteration,
        }

    @classmethod
    def from_json(cls, data: dict) -> "CorpusEntry":
        if data.get("format") != ENTRY_FORMAT:
            raise ValueError(
                f"not a fuzz corpus entry (format {data.get('format')!r})"
            )
        return cls(data["test"], data["schedule"], data["policy"],
                   data["new_coverage"], data["seed"], data["iteration"])

    def digest(self) -> str:
        blob = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()

    def describe(self) -> str:
        test_name = self.test.get("name", "?")
        ops = sum(len(s) for s in self.test.get("threads", []))
        ops += sum(len(s) for s in self.test.get("gpu_waves", []))
        ops += len(self.test.get("dma", []))
        return (
            f"{self.digest()[:12]}  {test_name:<16} @ {self.policy:<28} "
            f"{ops:>3} ops  +{len(self.new_coverage)} rows"
        )

    def replay(self, coverage: bool = True, trace: bool = False):
        """Re-run this entry live; returns the :class:`LitmusOutcome`."""
        return run_litmus(
            self.litmus(),
            policy_name=self.policy,
            schedule=self.schedule_obj(),
            coverage=coverage,
            trace=trace,
        )


class Corpus:
    """A directory of corpus entries, one ``<digest>.json`` file each."""

    def __init__(self, root: str) -> None:
        self.root = root
        os.makedirs(root, exist_ok=True)

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, f"{digest}.json")

    def digests(self) -> list[str]:
        return sorted(
            name[:-5] for name in os.listdir(self.root)
            if name.endswith(".json") and len(name) == 69
        )

    def entries(self) -> list[CorpusEntry]:
        return [self.load(digest) for digest in self.digests()]

    def load(self, digest: str) -> CorpusEntry:
        with open(self._path(digest)) as handle:
            return CorpusEntry.from_json(json.load(handle))

    def find(self, prefix: str) -> CorpusEntry:
        matches = [d for d in self.digests() if d.startswith(prefix)]
        if len(matches) != 1:
            raise KeyError(
                f"digest prefix {prefix!r} matches {len(matches)} entries"
            )
        return self.load(matches[0])

    def add(self, entry: CorpusEntry) -> bool:
        """Persist an entry; False if its digest is already present."""
        digest = entry.digest()
        path = self._path(digest)
        if os.path.exists(path):
            return False
        with open(path, "w") as handle:
            json.dump(entry.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        return True

    def remove(self, digest: str) -> None:
        os.remove(self._path(digest))

    def corpus_digest(self) -> str:
        """One hash over the sorted entry digests — the determinism pin."""
        blob = "\n".join(self.digests())
        return hashlib.sha256(blob.encode()).hexdigest()

    def __len__(self) -> int:
        return len(self.digests())


def minimize_entry(entry: CorpusEntry, max_runs: int = 200) -> CorpusEntry:
    """Coverage-preserving shrink: drop ops while the program still fires
    every row the entry claimed as new.

    Unlike failure minimization there is no failure kind to preserve — the
    predicate is "the claimed triples are still all hit" — so passing runs
    are what we keep.  Returns a (possibly identical) new entry.
    """
    claimed = set(entry.new_coverage)
    test = entry.litmus()
    schedule = entry.schedule_obj()
    policy = entry.policy
    budget = _Budget(max_runs)

    def still_covers(candidate: LitmusTest) -> bool:
        if not (candidate.threads or candidate.gpu_waves or candidate.dma):
            return False
        outcome = run_litmus(
            candidate, policy_name=policy, schedule=schedule, coverage=True,
        )
        return claimed <= set(outcome.coverage or ())

    current = test
    # level 1: drop whole agents (same structure as failure minimization)
    changed = True
    while changed:
        changed = False
        for index in range(len(current.threads)):
            if not current.threads[index]:
                continue
            threads = [list(s) for s in current.threads]
            threads[index] = []
            candidate = current.with_agents(
                threads, current.gpu_waves, current.dma
            )
            if budget.take() and still_covers(candidate):
                current = candidate
                changed = True
        for index in range(len(current.gpu_waves)):
            waves = [list(s) for s in current.gpu_waves]
            del waves[index]
            candidate = current.with_agents(current.threads, waves, current.dma)
            if budget.take() and still_covers(candidate):
                current = candidate
                changed = True
                break  # indices shifted; restart the wave scan
        for index in range(len(current.dma)):
            dma = list(current.dma)
            del dma[index]
            candidate = current.with_agents(
                current.threads, current.gpu_waves, dma
            )
            if budget.take() and still_covers(candidate):
                current = candidate
                changed = True
                break

    # level 2: ddmin each surviving agent's op list
    for index in range(len(current.threads)):
        if not current.threads[index]:
            continue

        def covers_with(ops_list: list, slot: int = index) -> bool:
            threads = [list(s) for s in current.threads]
            threads[slot] = list(ops_list)
            return still_covers(
                current.with_agents(threads, current.gpu_waves, current.dma)
            )

        shrunk = _ddmin(list(current.threads[index]), covers_with, budget)
        threads = [list(s) for s in current.threads]
        threads[index] = shrunk
        current = current.with_agents(threads, current.gpu_waves, current.dma)
    for index in range(len(current.gpu_waves)):

        def covers_with(ops_list: list, slot: int = index) -> bool:
            waves = [list(s) for s in current.gpu_waves]
            waves[slot] = list(ops_list)
            return still_covers(
                current.with_agents(current.threads, waves, current.dma)
            )

        shrunk = _ddmin(list(current.gpu_waves[index]), covers_with, budget)
        waves = [list(s) for s in current.gpu_waves]
        waves[index] = shrunk
        current = current.with_agents(current.threads, waves, current.dma)

    # Cosmetic cleanup — but agent *count* is part of the schedule (it
    # shifts every downstream tie-break), so stripping empty slots can
    # lose the claimed rows.  Only adopt the stripped form if it still
    # covers them; otherwise ship the validated shape, empty slots and all.
    stripped = current.with_agents(
        _rstrip_empty_threads(current.threads),
        [wave for wave in current.gpu_waves if wave],
        current.dma,
    )
    if (stripped.to_json() != current.to_json()
            and budget.take() and still_covers(stripped)):
        current = stripped
    return CorpusEntry.make(current, schedule, policy, claimed,
                            entry.seed, entry.iteration)


def _rstrip_empty_threads(threads: list[list]) -> list[list]:
    out = [list(script) for script in threads]
    while out and not out[-1]:
        out.pop()
    return out
