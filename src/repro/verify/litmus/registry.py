"""The bundled litmus suite: classic heterogeneous-coherence shapes.

Each test is deliberately tiny — a handful of ops per agent — but aimed at
one protocol race: message passing (CPU-CPU, GPU-CPU, both directions),
store buffering, per-location coherence (CoRR/CoWW), IRIW multi-copy
atomicity, dirty-owner handoff chains, VicDirty/VicClean vs RdBlkM eviction
races, DMA against dirty owners and cached readers, and atomic RMW chains
at both GPU scopes.

Design rule: **final memory is deterministic** in every test.  Racy *loads*
are allowed (their registers get membership postconditions), but every
location has a schedule-independent final value — this is what lets the
differential harness demand bit-identical finals across all policy
variants, and the postconditions stay exact rather than probabilistic.

CPU thread placement: threads map to cores in order and the small litmus
system has two CorePairs (cores 0/1 and 2/3), so ``threads[0]`` vs
``threads[2]`` crosses the fabric while ``threads[0]`` vs ``threads[1]``
shares an L2.  An empty op list is a valid placeholder thread.
"""

from __future__ import annotations

from repro.verify.litmus.dsl import (  # noqa: F401 - re-exported geometry
    L2_CONFLICT_STRIDE,
    L2_WAYS,
    DmaSpec,
    LitmusEnv,
    LitmusTest,
)

REGISTRY: dict[str, LitmusTest] = {}


def _register(test: LitmusTest) -> LitmusTest:
    test.validate()
    if test.name in REGISTRY:
        raise ValueError(f"duplicate litmus test {test.name!r}")
    REGISTRY[test.name] = test
    return test


def all_litmus_tests() -> dict[str, LitmusTest]:
    """Every bundled litmus test, keyed by name (insertion order)."""
    return dict(REGISTRY)


def get_litmus(name: str) -> LitmusTest:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown litmus test {name!r}; available: {sorted(REGISTRY)}"
        ) from None


# -- message passing -----------------------------------------------------------


def _post_mp(env: LitmusEnv) -> list[str]:
    env.expect_reg("t2:r1", 1)
    env.expect_mem("x", 1)
    env.expect_mem("flag", 1)
    return env.errors


_register(LitmusTest(
    name="mp",
    description="message passing across CorePairs: data then flag; "
                "reader must see the data",
    layout={"x": (0, 0), "flag": (1, 0)},
    threads=[
        [("store", "x", 1), ("store", "flag", 1)],
        [],
        [("spin", "flag", 1), ("load", "x", "r1")],
    ],
    postcondition=_post_mp,
))


_register(LitmusTest(
    name="mp_same_line",
    description="message passing with data and flag falsely shared in one "
                "line (partial-write merge correctness)",
    layout={"x": (0, 0), "flag": (0, 1)},
    threads=[
        [("store", "x", 1), ("store", "flag", 1)],
        [],
        [("spin", "flag", 1), ("load", "x", "r1")],
    ],
    postcondition=_post_mp,
))


def _post_mp_same_pair(env: LitmusEnv) -> list[str]:
    env.expect_reg("t1:r1", 1)
    env.expect_mem("x", 1)
    env.expect_mem("flag", 1)
    return env.errors


_register(LitmusTest(
    name="mp_same_pair",
    description="message passing inside one CorePair (shared L2, no fabric)",
    layout={"x": (0, 0), "flag": (1, 0)},
    threads=[
        [("store", "x", 1), ("store", "flag", 1)],
        [("spin", "flag", 1), ("load", "x", "r1")],
    ],
    postcondition=_post_mp_same_pair,
))


# -- store buffering / independent reads -------------------------------------


def _post_sb(env: LitmusEnv) -> list[str]:
    env.expect_reg_in("t0:r0", {0, 1})
    env.expect_reg_in("t2:r1", {0, 1})
    env.expect_mem("x", 1)
    env.expect_mem("y", 1)
    return env.errors


_register(LitmusTest(
    name="sb",
    description="store buffering: cross stores then cross loads; loads may "
                "race but finals are fixed",
    layout={"x": (0, 0), "y": (1, 0)},
    threads=[
        [("store", "x", 1), ("load", "y", "r0")],
        [],
        [("store", "y", 1), ("load", "x", "r1")],
    ],
    postcondition=_post_sb,
))


def _post_iriw(env: LitmusEnv) -> list[str]:
    a, b = env.reg("t1:a"), env.reg("t1:b")
    c, d = env.reg("t3:c"), env.reg("t3:d")
    for name, value in (("t1:a", a), ("t1:b", b), ("t3:c", c), ("t3:d", d)):
        env.expect_reg_in(name, {0, 1})
    env.expect(
        not (a == 1 and b == 0 and c == 1 and d == 0),
        f"IRIW: readers disagree on store order (a={a} b={b} c={c} d={d})",
    )
    env.expect_mem("x", 1)
    env.expect_mem("y", 1)
    return env.errors


_register(LitmusTest(
    name="iriw",
    description="independent reads of independent writes: both readers "
                "must agree on the store order (multi-copy atomicity)",
    layout={"x": (0, 0), "y": (1, 0)},
    threads=[
        [("store", "x", 1)],
        [("load", "x", "a"), ("load", "y", "b")],
        [("store", "y", 1)],
        [("load", "y", "c"), ("load", "x", "d")],
    ],
    postcondition=_post_iriw,
))


# -- per-location coherence ----------------------------------------------------


def _post_corr(env: LitmusEnv) -> list[str]:
    r1, r2 = env.reg("t2:r1"), env.reg("t2:r2")
    env.expect_reg_in("t2:r1", {0, 1, 2})
    env.expect_reg_in("t2:r2", {0, 1, 2})
    env.expect(
        r1 is None or r2 is None or r2 >= r1,
        f"CoRR: reads went backwards in coherence order (r1={r1}, r2={r2})",
    )
    env.expect_mem("x", 2)
    return env.errors


_register(LitmusTest(
    name="corr",
    description="coherence read-read: two reads of one location may never "
                "observe the write order backwards",
    layout={"x": (0, 0)},
    threads=[
        [("store", "x", 1), ("store", "x", 2)],
        [],
        [("load", "x", "r1"), ("load", "x", "r2")],
    ],
    postcondition=_post_corr,
))


def _post_coww(env: LitmusEnv) -> list[str]:
    env.expect_reg("t0:r", 2)
    env.expect_mem("x", 2)
    return env.errors


_register(LitmusTest(
    name="coww",
    description="coherence write-write: program-order stores to one "
                "location commit in order",
    layout={"x": (0, 0)},
    threads=[
        [("store", "x", 1), ("store", "x", 2), ("load", "x", "r")],
    ],
    postcondition=_post_coww,
))


# -- ownership handoff ---------------------------------------------------------


def _post_dirty_handoff(env: LitmusEnv) -> list[str]:
    env.expect_mem("x", 3)
    return env.errors


_register(LitmusTest(
    name="dirty_handoff",
    description="dirty-owner handoff ping-pong across CorePairs: "
                "M -> (probe) O -> (invalidate) I -> refetch",
    layout={"x": (0, 0)},
    threads=[
        [("store", "x", 1), ("spin", "x", 2), ("store", "x", 3)],
        [],
        [("spin", "x", 1), ("store", "x", 2)],
    ],
    postcondition=_post_dirty_handoff,
))


def _post_ww_chain(env: LitmusEnv) -> list[str]:
    env.expect_mem("tok", 4)
    return env.errors


_register(LitmusTest(
    name="ww_chain",
    description="token ring over all four cores: each store hands dirty "
                "ownership to the next core",
    layout={"tok": (0, 0)},
    threads=[
        [("store", "tok", 1), ("spin", "tok", 4)],
        [("spin", "tok", 1), ("store", "tok", 2)],
        [("spin", "tok", 2), ("store", "tok", 3)],
        [("spin", "tok", 3), ("store", "tok", 4)],
    ],
    postcondition=_post_ww_chain,
))


# -- eviction races ------------------------------------------------------------

_CONFLICTS = {
    f"c{k}": (k * L2_CONFLICT_STRIDE, 0) for k in range(1, L2_WAYS + 1)
}
_CONFLICT_STORES = [("store", loc, k + 1)
                    for k, loc in enumerate(sorted(_CONFLICTS))]


def _post_vicdirty(env: LitmusEnv) -> list[str]:
    env.expect_mem("x", 2)
    for k, loc in enumerate(sorted(_CONFLICTS)):
        env.expect_mem(loc, k + 1)
    return env.errors


_register(LitmusTest(
    name="vicdirty_race",
    description="dirty victim (VicDirty) of a contended line races the "
                "other pair's RdBlkM to the directory",
    layout={"x": (0, 0), **_CONFLICTS},
    threads=[
        [("store", "x", 1)] + list(_CONFLICT_STORES),
        [],
        [("spin", "x", 1), ("store", "x", 2)],
    ],
    postcondition=_post_vicdirty,
))


def _post_vicclean(env: LitmusEnv) -> list[str]:
    env.expect_reg_in("t0:r", {7, 9})
    env.expect_mem("x", 9)
    for k, loc in enumerate(sorted(_CONFLICTS)):
        env.expect_mem(loc, k + 1)
    return env.errors


_register(LitmusTest(
    name="vicclean_race",
    description="clean victim (VicClean) of a read-shared line races the "
                "other pair's store",
    layout={"x": (0, 0), **_CONFLICTS},
    init={"x": 7},
    threads=[
        [("load", "x", "r")] + list(_CONFLICT_STORES),
        [],
        [("store", "x", 9)],
    ],
    postcondition=_post_vicclean,
))


# -- DMA -----------------------------------------------------------------------


def _post_dma_read_dirty(env: LitmusEnv) -> list[str]:
    env.expect_mem("d", 5)
    env.expect_mem("d2", 6)
    return env.errors


_register(LitmusTest(
    name="dma_read_dirty",
    description="DMA read of a line a CPU is actively dirtying: the "
                "directory must probe the dirty owner on DMA's behalf",
    layout={"d": (0, 0), "d2": (0, 1)},
    threads=[
        [("store", "d", 5), ("think", 20), ("store", "d2", 6)],
    ],
    dma=[DmaSpec("read", "d", lines=1)],
    postcondition=_post_dma_read_dirty,
))


def _post_dma_read_clean(env: LitmusEnv) -> list[str]:
    env.expect_reg("t0:r", 7)
    env.expect_mem("d", 9)
    return env.errors


_register(LitmusTest(
    name="dma_read_clean_owner",
    description="DMA read of a clean exclusive (E) CPU line: the probe "
                "downgrades the holder to S, so the precise directory must "
                "demote its owner entry too (Table I fn. f)",
    layout={"d": (0, 0)},
    init={"d": 7},
    threads=[
        [("load", "d", "r"), ("think", 50), ("store", "d", 9)],
    ],
    dma=[DmaSpec("read", "d", lines=1)],
    postcondition=_post_dma_read_clean,
))


def _post_dma_write(env: LitmusEnv) -> list[str]:
    env.expect_reg("t0:r", 42)
    env.expect_mem("d", 42)
    env.expect_mem("d2", 42)
    return env.errors


_register(LitmusTest(
    name="dma_write_invalidate",
    description="DMA write must invalidate a CPU's cached copy: the "
                "polling reader observes the DMA fill",
    layout={"d": (0, 0), "d2": (0, 2)},
    threads=[
        [("spin", "d", 42), ("load", "d2", "r")],
    ],
    dma=[DmaSpec("write", "d", lines=1, value=42)],
    postcondition=_post_dma_write,
))


def _post_dma_vs_gpu(env: LitmusEnv) -> list[str]:
    env.expect_mem("d", 13)
    env.expect_mem("g", 21)
    env.expect_reg_in("g0:r", {0, 13})
    return env.errors


_register(LitmusTest(
    name="dma_vs_gpu_writethrough",
    description="DMA write and GPU write-throughs in flight at once on "
                "disjoint lines; the GPU polls the DMA-filled line",
    layout={"d": (0, 0), "g": (1, 0)},
    gpu_waves=[
        [("store", "g", 21), ("rel",), ("load", "d", "r"), ("spin", "d", 13)],
    ],
    dma=[DmaSpec("write", "d", lines=1, value=13)],
    postcondition=_post_dma_vs_gpu,
))


# -- GPU <-> CPU ---------------------------------------------------------------


def _post_gpu_mp(env: LitmusEnv) -> list[str]:
    env.expect_reg("t0:r", 1)
    env.expect_mem("x", 1)
    env.expect_mem("flag", 1)
    return env.errors


_register(LitmusTest(
    name="gpu_mp",
    description="GPU-to-CPU message passing: wave writes data, releases, "
                "writes flag; CPU reader must see the data",
    layout={"x": (0, 0), "flag": (1, 0)},
    threads=[
        [("spin", "flag", 1), ("load", "x", "r")],
    ],
    gpu_waves=[
        [("store", "x", 1), ("rel",), ("store", "flag", 1)],
    ],
    postcondition=_post_gpu_mp,
))


def _post_gpu_acquire(env: LitmusEnv) -> list[str]:
    env.expect_reg("g0:r", 3)
    env.expect_mem("x", 3)
    return env.errors


_register(LitmusTest(
    name="gpu_acquire",
    description="CPU-to-GPU message passing: wave spins (acquire per poll) "
                "then must load the CPU's data, not a stale TCP copy",
    layout={"x": (0, 0), "flag": (1, 0)},
    threads=[
        [("store", "x", 3), ("store", "flag", 1)],
    ],
    gpu_waves=[
        [("spin", "flag", 1), ("acq",), ("load", "x", "r")],
    ],
    postcondition=_post_gpu_acquire,
))


def _post_gpu_wt_race(env: LitmusEnv) -> list[str]:
    for loc in ("w0", "w1", "w2", "w3"):
        env.expect_mem(loc, 11)
    env.expect_reg_in("t2:r", {0, 11})
    return env.errors


_register(LitmusTest(
    name="gpu_wt_race",
    description="GPU vector write-through races a CPU read of the same "
                "line (word-granular dirty merge path)",
    layout={f"w{i}": (0, i) for i in range(4)},
    threads=[
        [],
        [],
        [("load", "w0", "r")],
    ],
    gpu_waves=[
        [("vstore", ["w0", "w1", "w2", "w3"], 11), ("rel",)],
    ],
    postcondition=_post_gpu_wt_race,
))


# -- back-pressure shapes ------------------------------------------------------
#
# These target the bounded-queue fabric (Schedule.input_queue_depth /
# SystemConfig.bounded): bursts sized past the default credit pool so the
# directory in-ports fill and back-pressure stalls the sending ports.  On
# an unbounded fabric they are ordinary (if chatty) tests — finals stay
# deterministic either way, so the differential sweep runs them under
# every schedule shape, bounded included.


def _post_bp_store_store(env: LitmusEnv) -> list[str]:
    for k in range(6):
        env.expect_mem(f"s{k}", k + 1)
        env.expect_mem(f"t{k}", k + 11)
    for k in range(4):
        env.expect_mem(f"g{k}", k + 31)
    return env.errors


_register(LitmusTest(
    name="bp_store_store",
    description="store/store burst from both CorePairs plus pipelined GPU "
                "write-throughs, all to distinct lines: fills a bounded "
                "directory in-port queue from three senders at once, "
                "exhausting credits on each",
    layout={
        **{f"s{k}": (k, 0) for k in range(6)},
        **{f"t{k}": (6 + k, 0) for k in range(6)},
        **{f"g{k}": (12 + k, 0) for k in range(4)},
    },
    threads=[
        [("store", f"s{k}", k + 1) for k in range(6)],
        [],
        [("store", f"t{k}", k + 11) for k in range(6)],
    ],
    gpu_waves=[
        [("store", f"g{k}", k + 31) for k in range(4)] + [("rel",)],
    ],
    postcondition=_post_bp_store_store,
))


def _post_bp_victim(env: LitmusEnv) -> list[str]:
    env.expect_mem("v", 1)
    for k, loc in enumerate(sorted(_CONFLICTS)):
        env.expect_mem(loc, k + 1)
    for k in range(4):
        env.expect_mem(f"f{k}", k + 21)
        env.expect_mem(f"w{k}", k + 41)
    return env.errors


_register(LitmusTest(
    name="bp_victim_vs_full_port",
    description="dirty victim writeback (conflict-set walk evicting a "
                "dirty line) races a store burst from the other pair that "
                "keeps the directory in-port full: the VicDirty must wait "
                "for a credit, not be dropped",
    layout={
        "v": (0, 0),
        **_CONFLICTS,
        **{f"f{k}": (1 + k, 0) for k in range(4)},
        **{f"w{k}": (5 + k, 0) for k in range(4)},
    },
    threads=[
        [("store", "v", 1)] + list(_CONFLICT_STORES),
        [],
        [("store", f"f{k}", k + 21) for k in range(4)],
    ],
    gpu_waves=[
        [("store", f"w{k}", k + 41) for k in range(4)] + [("rel",)],
    ],
    postcondition=_post_bp_victim,
))


def _post_bp_dma_burst(env: LitmusEnv) -> list[str]:
    for k in range(4):
        env.expect_mem(f"d{k}", 33)
    env.expect_mem("g", 21)
    env.expect_reg_in("t0:r", {0, 33})
    return env.errors


_register(LitmusTest(
    name="bp_dma_burst",
    description="4-line DMA write burst saturates a bounded link while a "
                "GPU write-through and a CPU poll share the fabric; the "
                "poller observes the last burst line",
    layout={
        **{f"d{k}": (k, 0) for k in range(4)},
        "g": (4, 0),
    },
    threads=[
        [("spin", "d3", 33), ("load", "d0", "r")],
    ],
    gpu_waves=[
        [("store", "g", 21), ("rel",)],
    ],
    dma=[DmaSpec("write", "d0", lines=4, value=33)],
    postcondition=_post_bp_dma_burst,
))


# -- atomics -------------------------------------------------------------------


def _post_atomic_chain(env: LitmusEnv) -> list[str]:
    env.expect_mem("c", 18)
    return env.errors


_register(LitmusTest(
    name="atomic_chain",
    description="contended RMW chain: four CPU threads and two "
                "system-scope GPU waves each add 3; nothing may be lost",
    layout={"c": (0, 0)},
    threads=[[("atomic", "c", "add", 1, "old")] * 3 for _ in range(4)],
    gpu_waves=[
        [("atomic", "c", "add", 1, "old", "slc")] * 3 for _ in range(2)
    ],
    postcondition=_post_atomic_chain,
))


def _post_glc_chain(env: LitmusEnv) -> list[str]:
    env.expect_mem("c", 8)
    return env.errors


_register(LitmusTest(
    name="atomic_glc_chain",
    description="device-scope (glc) RMW chain at the TCC: two waves add 4 "
                "each; the release makes the total system-visible",
    layout={"c": (0, 0)},
    gpu_waves=[
        [("atomic", "c", "add", 1, "old", "glc")] * 4 + [("rel",)]
        for _ in range(2)
    ],
    postcondition=_post_glc_chain,
))
