"""The litmus DSL: tiny programs over symbolic locations, exact postconditions.

A litmus test is a handful of agents — CPU threads, GPU wavefronts, DMA
transfers — each running a short *serializable* op list over named memory
locations, plus a postcondition over the registers the agents observed and
the final memory state.  Unlike :class:`~repro.workloads.base.Workload`
programs (arbitrary Python generators), litmus ops are plain tuples of
primitives, so a failing test can be shrunk op-by-op by the minimizer and
dumped to JSON as a replayable artifact.

Op vocabulary (``loc`` is a symbolic location name from the layout):

==============================  ==========================================
``("store", loc, value)``       store one word
``("load", loc, reg)``          load one word into register ``reg``
``("atomic", loc, op, operand, reg[, scope])``
                                atomic RMW; old value lands in ``reg``;
                                ``scope`` ("slc"/"glc") applies on the GPU
``("spin", loc, value)``        CPU: spin until the word equals ``value``;
                                GPU: acquire-fence + load polling loop
``("spin_ge", loc, value)``     like ``spin`` but until ``word >= value``
``("think", cycles)``           compute delay
``("vstore", [locs], value)``   GPU: coalesced vector store (broadcast)
``("vload", [locs], reg)``      GPU: vector load; tuple lands in ``reg``
``("acq",)`` / ``("rel",)``     GPU: acquire / release fence
``("flush", loc)``              evict ``loc``'s line from the issuing
                                agent's caches by loading a hidden run of
                                same-set lines (conflict eviction — the
                                model has no flush instruction), forcing
                                Evict/victim traffic on that line
==============================  ==========================================

Locations map to ``(line, word)`` pairs through the test's ``layout``;
distinct lines are allocated contiguously, so layouts can place two symbols
in the same line (false sharing) or ``L2_CONFLICT_STRIDE`` lines apart
(same L2 set, forcing evictions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.mem.address import LINE_BYTES, WORDS_PER_LINE, make_addr
from repro.mem.block import ZERO_LINE
from repro.protocol.atomics import AtomicOp
from repro.system.config import SystemConfig
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    code_region,
)
from repro.workloads.trace import DmaTransfer

#: ops legal on a CPU thread
CPU_OPS = frozenset(
    {"store", "load", "atomic", "spin", "spin_ge", "think", "flush"}
)
#: ops legal on a GPU wavefront
GPU_OPS = frozenset(
    {"store", "load", "atomic", "spin", "spin_ge", "think", "vstore",
     "vload", "acq", "rel", "flush"}
)

#: lines this many apart share an L2 set in the litmus system — the lever
#: for forcing evictions (VicDirty/VicClean races).  The small TCC's set
#: count divides this, so the same stride conflicts in the GPU hierarchy.
_SMALL_L2 = SystemConfig.small().l2
L2_CONFLICT_STRIDE = max(
    1, _SMALL_L2.size_bytes // LINE_BYTES // _SMALL_L2.assoc
)
#: stores needed to overflow one L2 set (associativity + 1 lines)
L2_WAYS = _SMALL_L2.assoc
#: backoff between polling loads, CPU spins and GPU spin loops alike
SPIN_BACKOFF_CYCLES = 50
#: polling-loop backstop so a shrunk-away flag store cannot livelock a run
MAX_SPIN_ROUNDS = 4_000


class LitmusError(ValueError):
    """A malformed litmus test (bad op, unknown location, bad agent)."""


@dataclass(frozen=True)
class DmaSpec:
    """One DMA agent: a single read or write transfer over ``lines`` lines
    starting at symbolic location ``loc``."""

    kind: str  # "read" | "write"
    loc: str
    lines: int = 1
    value: int = 0

    def to_json(self) -> dict:
        return {"kind": self.kind, "loc": self.loc, "lines": self.lines,
                "value": self.value}

    @classmethod
    def from_json(cls, data: dict) -> "DmaSpec":
        return cls(**data)


class LitmusEnv:
    """What a postcondition may inspect: observed registers and final memory.

    Registers are named ``"<agent>:<reg>"`` (``t0:r1``, ``g1:old``); a
    register an agent never wrote reads as None, so postconditions stay
    evaluable on minimizer-shrunk op lists.  ``expect*`` helpers accumulate
    failure strings instead of raising, letting one run report every
    violated clause.
    """

    def __init__(self, regs: dict[str, int], mem: Callable[[str], int]) -> None:
        self.regs = regs
        self._mem = mem
        self.errors: list[str] = []

    def reg(self, name: str):
        return self.regs.get(name)

    def mem(self, loc: str) -> int:
        return self._mem(loc)

    def expect(self, ok: bool, description: str) -> None:
        if not ok:
            self.errors.append(description)

    def expect_mem(self, loc: str, value: int) -> None:
        got = self._mem(loc)
        self.expect(got == value, f"final {loc} = {got}, expected {value}")

    def expect_reg(self, name: str, value: int) -> None:
        got = self.regs.get(name)
        self.expect(got == value, f"{name} = {got}, expected {value}")

    def expect_reg_in(self, name: str, allowed) -> None:
        got = self.regs.get(name)
        self.expect(
            got is None or got in allowed,
            f"{name} = {got}, allowed {sorted(allowed)}",
        )


@dataclass
class LitmusTest:
    """One litmus shape: agents, layout, initial memory, postcondition.

    ``layout`` maps symbolic names to ``(line_index, word_index)``;
    line indices are logical (0-based) and allocated as one contiguous
    block, so relative placement (same line, same L2 set) is preserved.
    ``postcondition`` receives a :class:`LitmusEnv` and returns a list of
    failure descriptions (empty = pass); None means "verifier-only" (the
    invariant monitor and value oracle are the only checks).
    """

    name: str
    description: str
    layout: dict[str, tuple[int, int]]
    threads: list[list[tuple]] = field(default_factory=list)
    gpu_waves: list[list[tuple]] = field(default_factory=list)
    dma: list[DmaSpec] = field(default_factory=list)
    init: dict[str, int] = field(default_factory=dict)
    postcondition: Callable[[LitmusEnv], list[str]] | None = None

    # -- validation ------------------------------------------------------------

    def validate(self) -> None:
        if not self.threads and not self.gpu_waves and not self.dma:
            raise LitmusError(f"{self.name}: no agents")
        for loc, (line, word) in self.layout.items():
            if line < 0 or not 0 <= word < WORDS_PER_LINE:
                raise LitmusError(f"{self.name}: bad layout for {loc!r}")
        for agent, script in self.agents():
            allowed = CPU_OPS if agent.startswith("t") else GPU_OPS
            for op in script:
                if not op or op[0] not in allowed:
                    raise LitmusError(f"{self.name}: {agent} cannot run {op!r}")
                for loc in _op_locs(op):
                    if loc not in self.layout:
                        raise LitmusError(
                            f"{self.name}: {agent} references unknown "
                            f"location {loc!r}"
                        )
        for spec in self.dma:
            if spec.loc not in self.layout:
                raise LitmusError(f"{self.name}: DMA references {spec.loc!r}")
        for loc in self.init:
            if loc not in self.layout:
                raise LitmusError(f"{self.name}: init references {loc!r}")

    def agents(self) -> list[tuple[str, list[tuple]]]:
        """Every program-carrying agent as ``(name, op_list)`` pairs."""
        return [(f"t{i}", script) for i, script in enumerate(self.threads)] + [
            (f"g{i}", script) for i, script in enumerate(self.gpu_waves)
        ]

    def total_ops(self) -> int:
        return sum(len(script) for _agent, script in self.agents()) + len(self.dma)

    # -- shrinking support -----------------------------------------------------

    def with_agents(
        self,
        threads: list[list[tuple]],
        gpu_waves: list[list[tuple]],
        dma: list[DmaSpec],
    ) -> "LitmusTest":
        """A copy with replaced agent op lists (the minimizer's edit point)."""
        return LitmusTest(
            name=self.name,
            description=self.description,
            layout=self.layout,
            threads=[list(script) for script in threads],
            gpu_waves=[list(script) for script in gpu_waves],
            dma=list(dma),
            init=dict(self.init),
            postcondition=self.postcondition,
        )

    # -- serialization ---------------------------------------------------------

    def to_json(self) -> dict:
        """JSON-able description (postcondition is referenced by name only)."""
        return {
            "name": self.name,
            "description": self.description,
            "layout": {loc: list(pos) for loc, pos in self.layout.items()},
            "threads": [[list(op) for op in script] for script in self.threads],
            "gpu_waves": [[list(op) for op in script] for script in self.gpu_waves],
            "dma": [spec.to_json() for spec in self.dma],
            "init": dict(self.init),
        }

    @classmethod
    def from_json(cls, data: dict) -> "LitmusTest":
        test = cls(
            name=data["name"],
            description=data.get("description", ""),
            layout={loc: tuple(pos) for loc, pos in data["layout"].items()},
            threads=[[tuple(op) for op in script] for script in data["threads"]],
            gpu_waves=[
                [tuple(op) for op in script] for script in data["gpu_waves"]
            ],
            dma=[DmaSpec.from_json(spec) for spec in data.get("dma", [])],
            init={loc: value for loc, value in data.get("init", {}).items()},
        )
        test.validate()
        return test


def _op_locs(op: tuple) -> list[str]:
    """Symbolic locations an op references."""
    kind = op[0]
    if kind in ("store", "load", "atomic", "spin", "spin_ge", "flush"):
        return [op[1]]
    if kind in ("vstore", "vload"):
        return list(op[1])
    return []


# -- compilation to a Workload -------------------------------------------------


class CompiledLitmus(Workload):
    """A litmus test compiled to the standard Workload interface.

    Thread 0's program launches one GPU kernel holding every wavefront (one
    workgroup per wave, so waves land on distinct CUs when available) and
    waits for it after its own script; DMA specs become the build's
    transfer list.  Registers observed during the run land in
    :attr:`regs` keyed ``"<agent>:<reg>"``.
    """

    collaboration = "litmus"

    def __init__(self, test: LitmusTest) -> None:
        test.validate()
        self.test = test
        self.name = f"litmus_{test.name}"
        self.description = test.description
        self.regs: dict[str, int] = {}
        self._addrs: dict[str, int] = {}
        #: layout line index -> hidden conflict-run addresses (flush ops)
        self._flush_addrs: dict[int, list[int]] = {}

    def addr_of(self, loc: str) -> int:
        """Byte address of a symbolic location (valid after build())."""
        return self._addrs[loc]

    def build(self, ctx) -> WorkloadBuild:
        test = self.test
        self.regs = {}
        space = AddressSpace()
        num_lines = 1 + max(
            (line for line, _word in test.layout.values()), default=0
        )
        base = space.lines(num_lines)
        base_line = base // LINE_BYTES
        self._addrs = {
            loc: make_addr(base_line + line, word)
            for loc, (line, word) in test.layout.items()
        }
        code = code_region(space)

        # Flush ops evict by conflict: each distinct target line gets a
        # hidden region of (L2_WAYS + 1) same-set lines (stride-apart), so
        # loading the run displaces the target from every level.  Existing
        # tests without flush ops allocate nothing — their address maps
        # are unchanged.
        flush_lines = sorted({
            test.layout[op[1]][0]
            for _agent, script in test.agents()
            for op in script if op[0] == "flush"
        })
        self._flush_addrs = {}
        for target_line in flush_lines:
            region = space.lines((L2_WAYS + 1) * L2_CONFLICT_STRIDE)
            region_line = region // LINE_BYTES
            start = region_line + (
                (base_line + target_line - region_line) % L2_CONFLICT_STRIDE
            )
            self._flush_addrs[target_line] = [
                make_addr(start + way * L2_CONFLICT_STRIDE, 0)
                for way in range(L2_WAYS + 1)
            ]

        initial_memory = {}
        for loc, value in test.init.items():
            addr = self._addrs[loc]
            line = addr - (addr % LINE_BYTES)
            data = initial_memory.get(line, ZERO_LINE)
            initial_memory[line] = data.with_word(
                (addr % LINE_BYTES) // 4, value
            )

        if len(test.threads) > ctx.num_cpu_cores:
            raise LitmusError(
                f"{test.name}: wants {len(test.threads)} CPU threads, "
                f"system has {ctx.num_cpu_cores} cores"
            )

        gpu_factories = [
            self._interpreter(f"g{index}", script, gpu=True)
            for index, script in enumerate(test.gpu_waves)
        ]
        thread_factories = [
            self._interpreter(f"t{index}", script, gpu=False)
            for index, script in enumerate(test.threads)
        ]

        if gpu_factories:
            kernel = KernelSpec(
                f"litmus_{test.name}",
                [[factory] for factory in gpu_factories],
                code_addrs=code,
            )
            t0 = thread_factories[0] if thread_factories else _empty_program

            def host():
                handle = yield ops.LaunchKernel(kernel)
                yield from t0()
                yield ops.WaitKernel(handle)

            cpu_programs = [host] + thread_factories[1:]
        else:
            cpu_programs = thread_factories

        dma_transfers = [
            DmaTransfer(
                kind=spec.kind,
                start_addr=self._addrs[spec.loc],
                lines=spec.lines,
                value=spec.value,
            )
            for spec in test.dma
        ]
        return WorkloadBuild(
            cpu_programs=cpu_programs,
            dma_transfers=dma_transfers,
            initial_memory=initial_memory,
        )

    # -- the op interpreter ----------------------------------------------------

    def _interpreter(self, agent: str, script: list[tuple], gpu: bool):
        addrs = self._addrs
        regs = self.regs
        test = self.test
        flush_addrs = self._flush_addrs

        def program() -> Generator:
            for op in script:
                kind = op[0]
                if kind == "store":
                    yield ops.Store(addrs[op[1]], op[2])
                elif kind == "load":
                    value = yield ops.Load(addrs[op[1]])
                    regs[f"{agent}:{op[2]}"] = value
                elif kind == "atomic":
                    scope = op[5] if len(op) > 5 else "slc"
                    old = yield ops.AtomicRMW(
                        addrs[op[1]], AtomicOp[op[2].upper()],
                        operand=op[3], scope=scope,
                    )
                    regs[f"{agent}:{op[4]}"] = old
                elif kind in ("spin", "spin_ge"):
                    value = yield from _spin(
                        agent, op[1], addrs[op[1]], op[2],
                        ge=(kind == "spin_ge"), gpu=gpu,
                    )
                    regs[f"{agent}:spin@{op[1]}"] = value
                elif kind == "think":
                    yield ops.Think(op[1])
                elif kind == "vstore":
                    yield ops.VStore([addrs[loc] for loc in op[1]], op[2])
                elif kind == "vload":
                    values = yield ops.VLoad([addrs[loc] for loc in op[1]])
                    if not isinstance(values, tuple):
                        values = (values,)
                    regs[f"{agent}:{op[2]}"] = values
                elif kind == "flush":
                    for hidden in flush_addrs[test.layout[op[1]][0]]:
                        yield ops.Load(hidden)
                elif kind == "acq":
                    yield ops.AcquireFence()
                elif kind == "rel":
                    yield ops.ReleaseFence()
                else:  # pragma: no cover - validate() rejects these
                    raise LitmusError(f"{agent}: cannot interpret {op!r}")

        return program


class SpinTimeout(LitmusError):
    """A litmus spin exhausted its polling budget (the writer it waits on
    was probably shrunk away, or the protocol lost the flag store)."""


def _spin(agent: str, loc: str, addr: int, target: int,
          ge: bool, gpu: bool) -> Generator:
    """Bounded polling loop: load, compare, back off.

    GPU waves acquire-fence before every poll (dropping stale TCP copies);
    CPU loads are kept coherent by the protocol itself.  The
    ``MAX_SPIN_ROUNDS`` bound turns a spin whose writer was shrunk away by
    the minimizer into a fast, classifiable :class:`SpinTimeout` instead of
    a multi-million-event livelock.
    """
    value = None
    for _round in range(MAX_SPIN_ROUNDS):
        if gpu:
            yield ops.AcquireFence()
        value = yield ops.Load(addr)
        if (value >= target) if ge else (value == target):
            return value
        yield ops.Think(SPIN_BACKOFF_CYCLES)
    raise SpinTimeout(
        f"{agent}: spin on {loc} never saw "
        f"{'>=' if ge else '=='} {target} (last value {value})"
    )


def _empty_program() -> Generator:
    return
    yield  # pragma: no cover - makes this a generator function
