"""Controlled schedule exploration for litmus runs.

One litmus outcome under one arbitrary schedule proves little; the classic
Ruby-random-tester lineage replays each test under *many* interleavings.  A
:class:`Schedule` names one deterministic interleaving via three knobs:

- **latency jitter** — every ``(src_kind, dst_kind)`` fabric latency gains
  a seeded 0..``jitter_cycles`` cycles (per direction), skewing request,
  probe, response and victim paths against each other
  (:meth:`Network.jitter_latencies`);
- **tie-break permutation** — same-tick, same-priority events run in a
  seeded-random order instead of FIFO
  (:meth:`EventQueue.set_tie_break`);
- **link bandwidth** — finite-bandwidth link serialization plus WRR input
  arbitration at the directory (:meth:`Network.set_link_bandwidth`), so
  bursts queue instead of overlapping — a whole family of interleavings
  (back-pressure reordering) latency jitter alone cannot reach;
- **bounded queues** — finite input-port queues with credit back-pressure
  on top of the finite-bandwidth fabric
  (:meth:`Network.set_flow_control`), so a full downstream port stalls
  its senders' output ports and transitively the components behind them;
  combined with a **watchdog window** that arms the deadlock/starvation
  watchdog, every explored interleaving doubles as a liveness proof.

All perturbations stay inside the simulator's legal behaviours (latency and
bandwidth are free parameters; tie order among simultaneous events is
unspecified), so any violation they expose is a real protocol bug, not a
harness artifact.  ``Schedule(0)`` — no jitter, FIFO ties, infinite
bandwidth — is the canonical schedule every other test in the repo runs
under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace


@dataclass(frozen=True)
class Schedule:
    """One deterministic interleaving: a seed plus perturbation knobs."""

    seed: int = 0
    jitter_cycles: int = 0       #: max extra fabric latency per kind pair
    tie_break: bool = False      #: permute same-tick event order
    link_bytes_per_cycle: int = 0  #: finite link bandwidth (0 = infinite)
    input_queue_depth: int = 0   #: bounded input ports + credit back-pressure
    watchdog_window_cycles: float = 0.0  #: arm the liveness watchdog
    dir_entries: int = 0         #: shrink the directory cache (0 = leave)

    @property
    def is_canonical(self) -> bool:
        return (
            not self.jitter_cycles
            and not self.tie_break
            and not self.link_bytes_per_cycle
            and not self.input_queue_depth
            and not self.watchdog_window_cycles
            and not self.dir_entries
        )

    def apply(self, system) -> None:
        """Install this schedule's perturbations on a freshly built system.

        Must run before any workload starts (routes are precomputed, ports
        must start empty, and the tie-break only affects newly scheduled
        events).  ``dir_entries`` is the exception: directory geometry is
        baked in at build time, so the harness folds it into the policy
        *before* :func:`~repro.system.builder.build_system` — ``apply``
        deliberately ignores it.
        """
        if self.link_bytes_per_cycle:
            system.network.set_link_bandwidth(self.link_bytes_per_cycle)
        if self.input_queue_depth:
            system.network.set_flow_control(self.input_queue_depth)
        if self.jitter_cycles:
            system.network.jitter_latencies(
                random.Random(self.seed * 2 + 1), self.jitter_cycles
            )
        if self.tie_break:
            system.sim.events.set_tie_break(random.Random(self.seed * 2))
        if self.watchdog_window_cycles:
            system.arm_watchdog(self.watchdog_window_cycles)

    def label(self) -> str:
        if self.is_canonical:
            return f"s{self.seed}:canonical"
        knobs = []
        if self.jitter_cycles:
            knobs.append(f"jitter{self.jitter_cycles}")
        if self.tie_break:
            knobs.append("tie")
        if self.link_bytes_per_cycle:
            knobs.append(f"bw{self.link_bytes_per_cycle}")
        if self.input_queue_depth:
            knobs.append(f"q{self.input_queue_depth}")
        if self.watchdog_window_cycles:
            knobs.append("wd")
        if self.dir_entries:
            knobs.append(f"dir{self.dir_entries}")
        return f"s{self.seed}:" + "+".join(knobs)

    def to_json(self) -> dict:
        return {"seed": self.seed, "jitter_cycles": self.jitter_cycles,
                "tie_break": self.tie_break,
                "link_bytes_per_cycle": self.link_bytes_per_cycle,
                "input_queue_depth": self.input_queue_depth,
                "watchdog_window_cycles": self.watchdog_window_cycles,
                "dir_entries": self.dir_entries}

    @classmethod
    def from_json(cls, data: dict) -> "Schedule":
        data = dict(data)
        # schedules saved before the bandwidth / flow-control / tiny-dir
        # knobs existed load unchanged
        data.setdefault("link_bytes_per_cycle", 0)
        data.setdefault("input_queue_depth", 0)
        data.setdefault("watchdog_window_cycles", 0.0)
        data.setdefault("dir_entries", 0)
        return cls(**data)


#: default per-kind-pair jitter range (cycles) for explored schedules
DEFAULT_JITTER_CYCLES = 4

#: link bandwidth used by contended exploration schedules (bytes/cycle,
#: matching ``SystemConfig.CONTENDED_KNOBS``)
DEFAULT_SCHEDULE_BANDWIDTH = 8

#: input-port queue depth used by bounded exploration schedules (matching
#: ``SystemConfig.BOUNDED_KNOBS``)
DEFAULT_SCHEDULE_QUEUE_DEPTH = 4

#: watchdog window for bounded exploration schedules (uncore cycles) —
#: generous next to litmus runtimes, so a trip means a genuine stall
DEFAULT_SCHEDULE_WATCHDOG_CYCLES = 100_000.0


@dataclass(frozen=True)
class ScheduleVariant:
    """One perturbation shape in the exploration rotation, knobs by name."""

    name: str
    jitter: bool            #: apply per-kind-pair latency jitter
    tie_break: bool         #: permute same-tick event order
    contended: bool         #: finite link bandwidth + WRR arbitration
    bounded: bool = False   #: bounded input queues + armed watchdog

    def schedule(self, seed: int,
                 jitter_cycles: int = DEFAULT_JITTER_CYCLES) -> Schedule:
        return Schedule(
            seed,
            jitter_cycles=jitter_cycles if self.jitter else 0,
            tie_break=self.tie_break,
            link_bytes_per_cycle=(
                DEFAULT_SCHEDULE_BANDWIDTH if self.contended else 0
            ),
            input_queue_depth=(
                DEFAULT_SCHEDULE_QUEUE_DEPTH if self.bounded else 0
            ),
            watchdog_window_cycles=(
                DEFAULT_SCHEDULE_WATCHDOG_CYCLES if self.bounded else 0.0
            ),
        )


#: the exploration rotation, indexed by ``seed % len(SCHEDULE_VARIANTS)``.
#: Order is load-bearing: seed 1 lands on index 1 (jitter-only), seed 2 on
#: index 2 (tie-only), seed 3 on index 3 (contended), seed 4 on index 4
#: (bounded fabric + watchdog), seed 5 wraps to index 0 (jitter+tie).
#: ``litmus_key`` folds the source digest into every stored result key, so
#: growing the rotation safely invalidates stale stored outcomes.
SCHEDULE_VARIANTS: tuple[ScheduleVariant, ...] = (
    ScheduleVariant("jitter+tie", jitter=True, tie_break=True, contended=False),
    ScheduleVariant("jitter", jitter=True, tie_break=False, contended=False),
    ScheduleVariant("tie", jitter=False, tie_break=True, contended=False),
    ScheduleVariant("tie+contended", jitter=False, tie_break=True, contended=True),
    ScheduleVariant("tie+bounded", jitter=False, tie_break=True, contended=True,
                    bounded=True),
)


def variant_of(seed: int) -> ScheduleVariant:
    """The rotation slot a non-canonical seed lands on."""
    return SCHEDULE_VARIANTS[seed % len(SCHEDULE_VARIANTS)]


def default_schedules(count: int = 8,
                      jitter_cycles: int = DEFAULT_JITTER_CYCLES) -> list[Schedule]:
    """The standard exploration set: the canonical schedule plus the
    :data:`SCHEDULE_VARIANTS` rotation (jitter+tie, jitter-only, tie-only,
    contended fabric, bounded fabric with watchdog).

    Distinct seeds land on distinct schedules, so ``count`` is also the
    number of genuinely different interleavings attempted (>= 8 in CI).
    """
    if count < 1:
        raise ValueError("need at least one schedule")
    schedules = [Schedule(0)]
    for seed in range(1, count):
        schedules.append(variant_of(seed).schedule(seed, jitter_cycles))
    return schedules


def bounded_schedules(count: int = 8,
                      jitter_cycles: int = DEFAULT_JITTER_CYCLES) -> list[Schedule]:
    """The watchdog sweep set: the rotation's perturbation shapes, but
    every schedule forced onto the bounded fabric with the watchdog armed.

    Seeds still land on distinct jitter/tie-break combinations, so the
    sweep explores the same interleavings as :func:`default_schedules` —
    only now every run is also a liveness proof: a credit cycle that
    never drains trips the watchdog instead of passing silently on an
    unbounded queue.
    """
    if count < 1:
        raise ValueError("need at least one schedule")
    schedules = []
    for seed in range(count):
        base = variant_of(seed)
        variant = replace(
            base,
            name=base.name if base.bounded else f"{base.name}+bounded",
            contended=True,
            bounded=True,
        )
        schedules.append(variant.schedule(seed, jitter_cycles))
    return schedules
