"""Controlled schedule exploration for litmus runs.

One litmus outcome under one arbitrary schedule proves little; the classic
Ruby-random-tester lineage replays each test under *many* interleavings.  A
:class:`Schedule` names one deterministic interleaving via three knobs:

- **latency jitter** — every ``(src_kind, dst_kind)`` fabric latency gains
  a seeded 0..``jitter_cycles`` cycles (per direction), skewing request,
  probe, response and victim paths against each other
  (:meth:`Network.jitter_latencies`);
- **tie-break permutation** — same-tick, same-priority events run in a
  seeded-random order instead of FIFO
  (:meth:`EventQueue.set_tie_break`);
- **link bandwidth** — finite-bandwidth link serialization plus WRR input
  arbitration at the directory (:meth:`Network.set_link_bandwidth`), so
  bursts queue instead of overlapping — a whole family of interleavings
  (back-pressure reordering) latency jitter alone cannot reach.

All perturbations stay inside the simulator's legal behaviours (latency and
bandwidth are free parameters; tie order among simultaneous events is
unspecified), so any violation they expose is a real protocol bug, not a
harness artifact.  ``Schedule(0)`` — no jitter, FIFO ties, infinite
bandwidth — is the canonical schedule every other test in the repo runs
under.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Schedule:
    """One deterministic interleaving: a seed plus perturbation knobs."""

    seed: int = 0
    jitter_cycles: int = 0       #: max extra fabric latency per kind pair
    tie_break: bool = False      #: permute same-tick event order
    link_bytes_per_cycle: int = 0  #: finite link bandwidth (0 = infinite)

    @property
    def is_canonical(self) -> bool:
        return (
            not self.jitter_cycles
            and not self.tie_break
            and not self.link_bytes_per_cycle
        )

    def apply(self, system) -> None:
        """Install this schedule's perturbations on a freshly built system.

        Must run before any workload starts (routes are precomputed, ports
        must start empty, and the tie-break only affects newly scheduled
        events).
        """
        if self.link_bytes_per_cycle:
            system.network.set_link_bandwidth(self.link_bytes_per_cycle)
        if self.jitter_cycles:
            system.network.jitter_latencies(
                random.Random(self.seed * 2 + 1), self.jitter_cycles
            )
        if self.tie_break:
            system.sim.events.set_tie_break(random.Random(self.seed * 2))

    def label(self) -> str:
        if self.is_canonical:
            return f"s{self.seed}:canonical"
        knobs = []
        if self.jitter_cycles:
            knobs.append(f"jitter{self.jitter_cycles}")
        if self.tie_break:
            knobs.append("tie")
        if self.link_bytes_per_cycle:
            knobs.append(f"bw{self.link_bytes_per_cycle}")
        return f"s{self.seed}:" + "+".join(knobs)

    def to_json(self) -> dict:
        return {"seed": self.seed, "jitter_cycles": self.jitter_cycles,
                "tie_break": self.tie_break,
                "link_bytes_per_cycle": self.link_bytes_per_cycle}

    @classmethod
    def from_json(cls, data: dict) -> "Schedule":
        data = dict(data)
        # schedules saved before the bandwidth knob existed load unchanged
        data.setdefault("link_bytes_per_cycle", 0)
        return cls(**data)


#: default per-kind-pair jitter range (cycles) for explored schedules
DEFAULT_JITTER_CYCLES = 4

#: link bandwidth used by contended exploration schedules (bytes/cycle,
#: matching ``SystemConfig.CONTENDED_KNOBS``)
DEFAULT_SCHEDULE_BANDWIDTH = 8


@dataclass(frozen=True)
class ScheduleVariant:
    """One perturbation shape in the exploration rotation, knobs by name."""

    name: str
    jitter: bool            #: apply per-kind-pair latency jitter
    tie_break: bool         #: permute same-tick event order
    contended: bool         #: finite link bandwidth + WRR arbitration

    def schedule(self, seed: int,
                 jitter_cycles: int = DEFAULT_JITTER_CYCLES) -> Schedule:
        return Schedule(
            seed,
            jitter_cycles=jitter_cycles if self.jitter else 0,
            tie_break=self.tie_break,
            link_bytes_per_cycle=(
                DEFAULT_SCHEDULE_BANDWIDTH if self.contended else 0
            ),
        )


#: the exploration rotation, indexed by ``seed % len(SCHEDULE_VARIANTS)``.
#: Order is load-bearing: seed 1 lands on index 1 (jitter-only), seed 2 on
#: index 2 (tie-only), seed 3 on index 3 (contended), seed 4 wraps to
#: index 0 (jitter+tie) — the same schedules stored litmus results were
#: keyed under before the rotation had names.
SCHEDULE_VARIANTS: tuple[ScheduleVariant, ...] = (
    ScheduleVariant("jitter+tie", jitter=True, tie_break=True, contended=False),
    ScheduleVariant("jitter", jitter=True, tie_break=False, contended=False),
    ScheduleVariant("tie", jitter=False, tie_break=True, contended=False),
    ScheduleVariant("tie+contended", jitter=False, tie_break=True, contended=True),
)


def variant_of(seed: int) -> ScheduleVariant:
    """The rotation slot a non-canonical seed lands on."""
    return SCHEDULE_VARIANTS[seed % len(SCHEDULE_VARIANTS)]


def default_schedules(count: int = 8,
                      jitter_cycles: int = DEFAULT_JITTER_CYCLES) -> list[Schedule]:
    """The standard exploration set: the canonical schedule plus the
    :data:`SCHEDULE_VARIANTS` rotation (jitter+tie, jitter-only, tie-only,
    contended fabric).

    Distinct seeds land on distinct schedules, so ``count`` is also the
    number of genuinely different interleavings attempted (>= 8 in CI).
    """
    if count < 1:
        raise ValueError("need at least one schedule")
    schedules = [Schedule(0)]
    for seed in range(1, count):
        schedules.append(variant_of(seed).schedule(seed, jitter_cycles))
    return schedules
