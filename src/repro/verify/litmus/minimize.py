"""Failing-trace minimization: shrink a violating (litmus, policy, schedule)
triple to a minimal reproducer and dump it as a replayable artifact.

The shrinker is classic delta debugging (ddmin) applied at three levels, in
order of payoff:

1. **agents** — drop whole CPU threads, GPU waves, or DMA transfers;
2. **ops** — ddmin each surviving agent's op list;
3. **schedule** — drop the jitter / tie-break knobs if the failure
   reproduces on a simpler (ideally canonical) schedule.

Every candidate is re-run with :func:`~repro.verify.litmus.harness.run_litmus`
and accepted only if it fails with the *same failure kind* as the original
— a shrink may not wander from an invariant violation to, say, the spin
timeout it caused by deleting a flag store.  Bounded spins
(:data:`~repro.verify.litmus.dsl.MAX_SPIN_ROUNDS`) keep even degenerate
candidates fast, so a full minimization is hundreds of short runs, not
hours.

The artifact is plain JSON — the shrunk litmus (ops are tuples of
primitives by construction), the exact policy knobs, the schedule seed, the
failure classification, and a :class:`ProtocolTrace` tail — and
:func:`replay_artifact` turns it back into a live run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable

from repro.system.serialize import policy_from_dict, policy_to_dict
from repro.verify.litmus.dsl import DmaSpec, LitmusTest
from repro.verify.litmus.harness import (
    LITMUS_MAX_EVENTS,
    POLICY_VARIANTS,
    LitmusOutcome,
    run_litmus,
)
from repro.verify.litmus.schedule import Schedule

ARTIFACT_FORMAT = "repro-litmus-repro/1"


@dataclass
class MinimizationResult:
    """A shrunk reproducer plus the bookkeeping of how it was found."""

    original: LitmusTest
    minimized: LitmusTest
    policy_name: str
    schedule: Schedule
    failure_kind: str
    messages: list[str]
    runs: int  #: candidate executions spent shrinking
    trace_text: str | None = None

    @property
    def original_ops(self) -> int:
        return self.original.total_ops()

    @property
    def minimized_ops(self) -> int:
        return self.minimized.total_ops()

    def describe(self) -> str:
        return (
            f"{self.original.name}: {self.failure_kind} reproduced with "
            f"{self.minimized_ops}/{self.original_ops} ops "
            f"(policy {self.policy_name}, schedule {self.schedule.label()}, "
            f"{self.runs} shrink runs)"
        )


class _Budget:
    """Counts candidate runs and stops the shrink loop when exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def take(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def _ddmin(items: list, still_fails: Callable[[list], bool],
           budget: _Budget) -> list:
    """Zeller's ddmin: smallest sublist (to complement granularity) that
    still fails.  ``still_fails`` must be True for ``items`` itself."""
    granularity = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // granularity)
        reduced = False
        start = 0
        while start < len(items):
            candidate = items[:start] + items[start + chunk:]
            if not budget.take():
                return items
            if candidate and still_fails(candidate):
                items = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                start = 0  # re-scan from the front at the same granularity
            else:
                start += chunk
        if not reduced:
            if chunk == 1:
                break
            granularity = min(granularity * 2, len(items))
    # final pass: a single op may still be droppable entirely
    if len(items) == 1 and budget.take() and still_fails([]):
        return []
    return items


def minimize_failure(
    test: LitmusTest,
    policy_name: str,
    schedule: Schedule,
    mutate_system: Callable[[object], None] | None = None,
    max_events: int = LITMUS_MAX_EVENTS,
    max_runs: int = 400,
) -> MinimizationResult | None:
    """Shrink a failing triple; returns None if the original run passes.

    ``mutate_system`` (the fault-injection hook) is applied to every
    candidate run, so table-overlay faults shrink like organic ones.
    """

    def run(candidate: LitmusTest, trace: bool = False) -> LitmusOutcome:
        return run_litmus(
            candidate,
            policy=POLICY_VARIANTS[policy_name],
            policy_name=policy_name,
            schedule=schedule,
            max_events=max_events,
            trace=trace,
            mutate_system=mutate_system,
        )

    first = run(test)
    if first.ok:
        return None
    kind = first.failure_kind
    budget = _Budget(max_runs)

    def fails(candidate: LitmusTest) -> bool:
        outcome = run(candidate)
        return outcome.failure_kind == kind

    current = test

    # level 1: drop whole agents (empty thread slots keep core placement)
    changed = True
    while changed:
        changed = False
        for index in range(len(current.threads)):
            if not current.threads[index]:
                continue
            threads = [list(s) for s in current.threads]
            threads[index] = []
            candidate = current.with_agents(
                threads, current.gpu_waves, current.dma
            )
            if budget.take() and fails(candidate):
                current = candidate
                changed = True
        for index in range(len(current.gpu_waves)):
            waves = [list(s) for s in current.gpu_waves]
            del waves[index]
            candidate = current.with_agents(current.threads, waves, current.dma)
            if candidate.threads or candidate.gpu_waves or candidate.dma:
                if budget.take() and fails(candidate):
                    current = candidate
                    changed = True
                    break  # indices shifted; restart the wave scan
        for index in range(len(current.dma)):
            dma = list(current.dma)
            del dma[index]
            candidate = current.with_agents(
                current.threads, current.gpu_waves, dma
            )
            if candidate.threads or candidate.gpu_waves or candidate.dma:
                if budget.take() and fails(candidate):
                    current = candidate
                    changed = True
                    break

    # level 2: ddmin each surviving agent's op list
    for index in range(len(current.threads)):
        if not current.threads[index]:
            continue

        def fails_with(ops_list: list, slot: int = index) -> bool:
            threads = [list(s) for s in current.threads]
            threads[slot] = list(ops_list)
            return fails(
                current.with_agents(threads, current.gpu_waves, current.dma)
            )

        shrunk = _ddmin(list(current.threads[index]), fails_with, budget)
        threads = [list(s) for s in current.threads]
        threads[index] = shrunk
        current = current.with_agents(threads, current.gpu_waves, current.dma)
    for index in range(len(current.gpu_waves)):

        def fails_with(ops_list: list, slot: int = index) -> bool:
            waves = [list(s) for s in current.gpu_waves]
            waves[slot] = list(ops_list)
            candidate = current.with_agents(current.threads, waves, current.dma)
            if not (candidate.threads or candidate.gpu_waves or candidate.dma):
                return False
            return fails(candidate)

        shrunk = _ddmin(list(current.gpu_waves[index]), fails_with, budget)
        waves = [list(s) for s in current.gpu_waves]
        waves[index] = shrunk
        current = current.with_agents(current.threads, waves, current.dma)
    # drop now-empty waves / trailing empty threads — but agent count is
    # itself a schedule input (it shifts downstream tie-breaks), so only
    # adopt the stripped form if it still fails the same way
    stripped = current.with_agents(
        _rstrip_empty(current.threads),
        [wave for wave in current.gpu_waves if wave],
        current.dma,
    )
    if ((stripped.threads or stripped.gpu_waves or stripped.dma)
            and stripped.to_json() != current.to_json()
            and budget.take() and fails(stripped)):
        current = stripped
    # else: every op shrank away (the failure needs no agent at all, e.g. a
    # broken init-state postcondition), the strip changed nothing, or the
    # stripped shape no longer reproduces — keep the verified form

    # level 3: simplify the schedule
    final_schedule = schedule
    for simpler in _simpler_schedules(schedule):
        if budget.take():
            outcome = run_litmus(
                current,
                policy=POLICY_VARIANTS[policy_name],
                policy_name=policy_name,
                schedule=simpler,
                max_events=max_events,
                mutate_system=mutate_system,
            )
            if outcome.failure_kind == kind:
                final_schedule = simpler
                break

    final = run_litmus(
        current,
        policy=POLICY_VARIANTS[policy_name],
        policy_name=policy_name,
        schedule=final_schedule,
        max_events=max_events,
        trace=True,
        mutate_system=mutate_system,
    )
    return MinimizationResult(
        original=test,
        minimized=current,
        policy_name=policy_name,
        schedule=final_schedule,
        failure_kind=kind,
        messages=list(final.messages or first.messages),
        runs=budget.used,
        trace_text=final.trace_text,
    )


def _rstrip_empty(threads: list[list]) -> list[list]:
    out = [list(script) for script in threads]
    while out and not out[-1]:
        out.pop()
    return out


def _simpler_schedules(schedule: Schedule) -> list[Schedule]:
    """Candidate schedules strictly simpler than ``schedule``, simplest
    first (canonical, then single-knob versions)."""
    if schedule.is_canonical:
        return []
    candidates = [Schedule(0)]
    if schedule.jitter_cycles and schedule.tie_break:
        candidates.append(Schedule(schedule.seed, schedule.jitter_cycles, False))
        candidates.append(Schedule(schedule.seed, 0, True))
    return candidates


# -- artifacts -----------------------------------------------------------------


def artifact_to_dict(result: MinimizationResult) -> dict:
    return {
        "format": ARTIFACT_FORMAT,
        "litmus": result.minimized.to_json(),
        "original_ops": result.original_ops,
        "minimized_ops": result.minimized_ops,
        "policy_name": result.policy_name,
        "policy": policy_to_dict(POLICY_VARIANTS[result.policy_name])
        if result.policy_name in POLICY_VARIANTS
        else None,
        "schedule": result.schedule.to_json(),
        "failure": {"kind": result.failure_kind, "messages": result.messages},
        "trace": result.trace_text,
    }


def dump_artifact(result: MinimizationResult, path: str) -> dict:
    """Write the replayable JSON artifact; returns the written dict."""
    data = artifact_to_dict(result)
    with open(path, "w") as handle:
        json.dump(data, handle, indent=2)
    return data


def load_artifact(path: str) -> dict:
    with open(path) as handle:
        data = json.load(handle)
    if data.get("format") != ARTIFACT_FORMAT:
        raise ValueError(
            f"{path}: not a litmus reproducer artifact "
            f"(format {data.get('format')!r})"
        )
    return data


def replay_artifact(
    path: str,
    mutate_system: Callable[[object], None] | None = None,
    trace: bool = False,
) -> LitmusOutcome:
    """Re-run a dumped reproducer and return the live outcome.

    Serialized artifacts carry no code, so for a ``postcondition``-kind
    failure the registry postcondition is re-attached by litmus name (other
    kinds skip it: a shrunk op list rarely still satisfies the original
    exact postcondition, and the recorded failure reproduces without it).
    Fault-injection failures need the same ``mutate_system`` hook passed
    again.
    """
    from repro.verify.litmus.registry import REGISTRY

    data = load_artifact(path)
    test = LitmusTest.from_json(data["litmus"])
    registered = REGISTRY.get(test.name)
    if registered is not None and data["failure"]["kind"] == "postcondition":
        test.postcondition = registered.postcondition
    policy = (
        policy_from_dict(data["policy"])
        if data.get("policy")
        else POLICY_VARIANTS[data["policy_name"]]
    )
    return run_litmus(
        test,
        policy=policy,
        policy_name=data.get("policy_name", "artifact"),
        schedule=Schedule.from_json(data["schedule"]),
        trace=trace,
        mutate_system=mutate_system,
    )


__all__ = [
    "ARTIFACT_FORMAT",
    "MinimizationResult",
    "artifact_to_dict",
    "dump_artifact",
    "load_artifact",
    "minimize_failure",
    "replay_artifact",
    "DmaSpec",
]
