"""Litmus-test verification: DSL, registry, schedule exploration,
cross-policy differential checking, and failing-trace minimization.

The classic memory-model litmus shapes (MP, SB, CoRR, IRIW, ...) adapted to
this simulator's heterogeneous agents — CPU threads, GPU wavefronts, DMA
transfers — and run under many controlled interleavings against every
directory policy variant.  See DESIGN.md's "Verification" section for the
architecture and ``python -m repro litmus --help`` for the CLI.
"""

from repro.verify.litmus.dsl import (
    CompiledLitmus,
    DmaSpec,
    LitmusEnv,
    LitmusError,
    LitmusTest,
    SpinTimeout,
)
from repro.verify.litmus.harness import (
    LITMUS_MAX_EVENTS,
    POLICY_VARIANTS,
    DifferentialReport,
    LitmusOutcome,
    litmus_key,
    outcome_from_dict,
    outcome_to_dict,
    run_differential,
    run_litmus,
    run_schedules,
)
from repro.verify.litmus.minimize import (
    MinimizationResult,
    dump_artifact,
    load_artifact,
    minimize_failure,
    replay_artifact,
)
from repro.verify.litmus.registry import (
    L2_CONFLICT_STRIDE,
    REGISTRY,
    all_litmus_tests,
    get_litmus,
)
from repro.verify.litmus.schedule import (
    SCHEDULE_VARIANTS,
    Schedule,
    ScheduleVariant,
    bounded_schedules,
    default_schedules,
    variant_of,
)

__all__ = [
    "CompiledLitmus",
    "DifferentialReport",
    "DmaSpec",
    "L2_CONFLICT_STRIDE",
    "LITMUS_MAX_EVENTS",
    "LitmusEnv",
    "LitmusError",
    "LitmusOutcome",
    "LitmusTest",
    "MinimizationResult",
    "POLICY_VARIANTS",
    "REGISTRY",
    "SCHEDULE_VARIANTS",
    "Schedule",
    "ScheduleVariant",
    "bounded_schedules",
    "SpinTimeout",
    "all_litmus_tests",
    "default_schedules",
    "variant_of",
    "dump_artifact",
    "get_litmus",
    "litmus_key",
    "load_artifact",
    "minimize_failure",
    "outcome_from_dict",
    "outcome_to_dict",
    "replay_artifact",
    "run_differential",
    "run_litmus",
    "run_schedules",
]
