"""Litmus execution harness: one run, schedule sweeps, policy differentials.

:func:`run_litmus` executes one ``(test, policy, schedule)`` triple on a
freshly built small system with full verification attached (coherence
invariant monitor + value oracle) and classifies the outcome into a
*failure kind*:

================  ============================================================
``invariant``     the :class:`CoherenceMonitor` raised mid-run
``spin_timeout``  a litmus spin exhausted its polling budget (lost flag store)
``crash``         any other exception (deadlock, event backstop, harness bug)
``oracle``        a load observed a value nobody wrote
``postcondition`` the test's own exact postcondition failed
================  ============================================================

Kinds are ordered by severity and preserved by the minimizer, so shrinking
cannot wander from (say) an invariant violation to an unrelated spin
timeout.

:func:`run_differential` is the cross-policy oracle: the same litmus, swept
over every schedule and every :data:`POLICY_VARIANTS` entry, must converge
to identical final memory — the litmus suite only contains tests whose
final state is schedule-independent, so *any* divergence between policy
variants is a bug in one of them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.coherence.policies import (
    OWNER_TRACKING,
    PRESETS,
    SHARER_TRACKING,
    DirectoryPolicy,
)
from repro.sim.tracing import ProtocolTrace
from repro.system.builder import build_system
from repro.system.config import SystemConfig
from repro.verify.invariants import InvariantViolation
from repro.verify.litmus.dsl import CompiledLitmus, LitmusEnv, LitmusTest, SpinTimeout
from repro.verify.litmus.schedule import Schedule, default_schedules

#: every policy the differential harness sweeps: the eight named presets
#: plus four §VII variants that stress distinct protocol paths (conservative
#: VicDirty handling, limited-pointer overflow broadcasts, state-aware
#: directory replacement, and address-interleaved directory banks).
POLICY_VARIANTS: dict[str, DirectoryPolicy] = {
    **PRESETS,
    "sharers+conservativeVicDirty": SHARER_TRACKING.named(
        vicdirty_invalidates_sharers=True
    ),
    "sharers+limitedPtr": SHARER_TRACKING.named(sharer_pointer_limit=1),
    "owner+stateAwareRepl": OWNER_TRACKING.named(
        state_aware_dir_replacement=True
    ),
    "sharers+banked": SHARER_TRACKING.named(dir_banks=2),
}

#: event backstop per litmus run — far above any legitimate litmus (which
#: completes in thousands of events) yet cheap to hit on a livelock
LITMUS_MAX_EVENTS = 2_000_000

#: severity order for failure kinds (minimizer keeps the kind fixed)
FAILURE_KINDS = ("invariant", "spin_timeout", "crash", "oracle", "postcondition")


@dataclass
class LitmusOutcome:
    """What one ``(test, policy, schedule)`` run produced."""

    test: str
    policy: str
    schedule: Schedule
    failure_kind: str | None = None
    messages: list[str] = field(default_factory=list)
    regs: dict[str, object] = field(default_factory=dict)
    final_memory: dict[str, int] | None = None
    ticks: int | None = None
    trace_text: str | None = None
    #: sorted ``(table, state, event)`` triples the run fired, when the
    #: run was made with ``coverage=True`` (None otherwise)
    coverage: list[tuple[str, str, str]] | None = None

    @property
    def ok(self) -> bool:
        return self.failure_kind is None

    def describe(self) -> str:
        status = "ok" if self.ok else f"FAIL[{self.failure_kind}]"
        head = f"{self.test} @ {self.policy} @ {self.schedule.label()}: {status}"
        if self.messages:
            head += "\n  " + "\n  ".join(self.messages[:8])
        return head


def _classify_exception(exc: BaseException) -> str:
    if isinstance(exc, InvariantViolation):
        return "invariant"
    if isinstance(exc, SpinTimeout):
        return "spin_timeout"
    return "crash"


def litmus_config(policy: DirectoryPolicy,
                  schedule: Schedule | None = None) -> SystemConfig:
    """The system every litmus runs on: the scaled-down test config whose
    small caches make evictions (and their races) reachable in a few ops.

    A schedule's ``dir_entries`` knob is folded into the policy here —
    directory geometry is baked in at build time, so it cannot be applied
    post-build like the other schedule perturbations.  Tiny directories
    force directory-cache replacement (the B-state eviction transients)
    under otherwise ordinary litmus traffic.
    """
    if schedule is not None and schedule.dir_entries:
        policy = policy.named(
            dir_entries=schedule.dir_entries,
            dir_assoc=min(policy.dir_assoc, schedule.dir_entries),
        )
    return SystemConfig.small(policy=policy)


def litmus_key(test: LitmusTest, policy: DirectoryPolicy,
               schedule: Schedule, max_events: int,
               coverage: bool = False) -> str:
    """Content-addressed key for one (litmus, policy, schedule) triple.

    Mirrors :func:`repro.runner.cache.cell_key`: everything determining
    the outcome — the serialized test, the full policy, the schedule
    knobs, the event backstop, and the source digest — so code changes
    invalidate stored outcomes the same way they invalidate cells.
    """
    from repro.runner.cache import CACHE_VERSION, source_digest
    from repro.system.serialize import policy_to_dict

    payload = {
        "version": CACHE_VERSION,
        "source": source_digest(),
        "test": test.to_json(),
        "policy": policy_to_dict(policy),
        "schedule": schedule.to_json(),
        "max_events": max_events,
        "coverage": coverage,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


def outcome_to_dict(outcome: LitmusOutcome) -> dict:
    """JSON-able capture of a :class:`LitmusOutcome` (exact round-trip)."""
    return {
        "test": outcome.test,
        "policy": outcome.policy,
        "schedule": outcome.schedule.to_json(),
        "failure_kind": outcome.failure_kind,
        "messages": list(outcome.messages),
        "regs": dict(outcome.regs),
        "final_memory": (
            dict(outcome.final_memory)
            if outcome.final_memory is not None else None
        ),
        "ticks": outcome.ticks,
        "trace_text": outcome.trace_text,
        "coverage": (
            [list(triple) for triple in outcome.coverage]
            if outcome.coverage is not None else None
        ),
    }


def outcome_from_dict(data: dict) -> LitmusOutcome:
    return LitmusOutcome(
        test=data["test"],
        policy=data["policy"],
        schedule=Schedule.from_json(data["schedule"]),
        failure_kind=data.get("failure_kind"),
        messages=list(data.get("messages", [])),
        regs=dict(data.get("regs", {})),
        final_memory=(
            dict(data["final_memory"])
            if data.get("final_memory") is not None else None
        ),
        ticks=data.get("ticks"),
        trace_text=data.get("trace_text"),
        coverage=(
            [tuple(triple) for triple in data["coverage"]]
            if data.get("coverage") is not None else None
        ),
    )


def run_litmus(
    test: LitmusTest,
    policy: DirectoryPolicy | None = None,
    schedule: Schedule | None = None,
    policy_name: str = "baseline",
    max_events: int = LITMUS_MAX_EVENTS,
    trace: bool = False,
    trace_capacity: int = 4_000,
    mutate_system: Callable[[object], None] | None = None,
    store=None,
    coverage: bool = False,
) -> LitmusOutcome:
    """Run one litmus under one policy and one schedule.

    ``mutate_system`` is a post-build hook (used by the fault-injection
    tests to overlay a broken transition table on a controller); it runs
    after the schedule's perturbations and before any traffic.

    ``store`` (a :class:`repro.store.ResultStore`) memoizes outcomes the
    same way the runner memoizes cells: a warm (test, policy, schedule)
    triple is a store lookup, not a simulation.  Traced or
    fault-injected runs bypass the store — their outcomes depend on
    state outside the key.

    ``coverage`` attaches a :class:`TransitionCoverage` hook and records
    the set of ``(table, state, event)`` triples the run fired in the
    outcome.  Covered and uncovered runs memoize under distinct keys.
    """
    policy = POLICY_VARIANTS[policy_name] if policy is None else policy
    schedule = schedule or Schedule(0)
    memoizable = store is not None and mutate_system is None and not trace
    if memoizable:
        from repro.store import KIND_LITMUS

        key = litmus_key(test, policy, schedule, max_events, coverage)
        row = store.get_row(key, KIND_LITMUS)
        if row is not None:
            try:
                stored = outcome_from_dict(row)
            except (KeyError, ValueError, TypeError):
                pass  # unreadable payload: fall through and re-run
            else:
                stored.policy = policy_name  # names may differ per sweep
                return stored
        outcome = _run_litmus_live(
            test, policy, schedule, policy_name, max_events,
            trace, trace_capacity, mutate_system, coverage,
        )
        from repro.system.serialize import policy_to_dict

        store.put_row(
            key, KIND_LITMUS,
            workload=test.name,
            config={"policy": policy_to_dict(policy),
                    "schedule": schedule.to_json(),
                    "max_events": max_events},
            result=outcome_to_dict(outcome),
            verify=True,
            seed=schedule.seed,
        )
        return outcome
    return _run_litmus_live(
        test, policy, schedule, policy_name, max_events,
        trace, trace_capacity, mutate_system, coverage,
    )


def _run_litmus_live(
    test: LitmusTest,
    policy: DirectoryPolicy,
    schedule: Schedule,
    policy_name: str,
    max_events: int,
    trace: bool,
    trace_capacity: int,
    mutate_system: Callable[[object], None] | None,
    coverage: bool = False,
) -> LitmusOutcome:
    system = build_system(litmus_config(policy, schedule))
    schedule.apply(system)
    if mutate_system is not None:
        mutate_system(system)
    protocol_trace = None
    if trace:
        protocol_trace = ProtocolTrace(capacity=trace_capacity)
        protocol_trace.attach_system(system)
    coverage_hook = None
    if coverage:
        from repro.coherence.engine import TransitionCoverage

        coverage_hook = TransitionCoverage().attach_system(system)

    workload = CompiledLitmus(test)
    outcome = LitmusOutcome(test.name, policy_name, schedule)
    try:
        result = system.run_workload(
            workload, verify=True, max_events=max_events
        )
    except Exception as exc:  # classified, not swallowed: it IS the result
        outcome.failure_kind = _classify_exception(exc)
        outcome.messages.append(f"{type(exc).__name__}: {exc}")
    else:
        outcome.ticks = result.ticks
        if result.check_errors:
            outcome.failure_kind = "oracle"
            outcome.messages.extend(result.check_errors)
        elif test.postcondition is not None:
            env = LitmusEnv(
                dict(workload.regs),
                lambda loc: system.coherent_word(workload.addr_of(loc)),
            )
            errors = test.postcondition(env)
            if errors:
                outcome.failure_kind = "postcondition"
                outcome.messages.extend(errors)
    outcome.regs = dict(workload.regs)
    try:
        outcome.final_memory = {
            loc: system.coherent_word(workload.addr_of(loc))
            for loc in test.layout
        }
    except Exception:  # mid-crash state may not be inspectable
        outcome.final_memory = None
    if protocol_trace is not None:
        outcome.trace_text = protocol_trace.dump(limit=200)
    if coverage_hook is not None:
        outcome.coverage = coverage_hook.triples()
    return outcome


def run_schedules(
    test: LitmusTest,
    policy_name: str = "baseline",
    schedules: Iterable[Schedule] | None = None,
    **kwargs,
) -> list[LitmusOutcome]:
    """One litmus, one policy, every schedule."""
    schedules = list(schedules) if schedules is not None else default_schedules()
    return [
        run_litmus(
            test,
            policy=POLICY_VARIANTS[policy_name],
            policy_name=policy_name,
            schedule=schedule,
            **kwargs,
        )
        for schedule in schedules
    ]


@dataclass
class DifferentialReport:
    """All outcomes of one litmus across policies × schedules, plus the
    cross-run final-memory comparison."""

    test: str
    outcomes: list[LitmusOutcome]
    mismatches: list[str] = field(default_factory=list)

    @property
    def failures(self) -> list[LitmusOutcome]:
        return [outcome for outcome in self.outcomes if not outcome.ok]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.mismatches

    def describe(self) -> str:
        lines = [
            f"{self.test}: {len(self.outcomes)} runs, "
            f"{len(self.failures)} failures, "
            f"{len(self.mismatches)} differential mismatches"
        ]
        lines.extend(outcome.describe() for outcome in self.failures)
        lines.extend(self.mismatches)
        return "\n".join(lines)


def run_differential(
    test: LitmusTest,
    policies: dict[str, DirectoryPolicy] | None = None,
    schedules: Iterable[Schedule] | None = None,
    **kwargs,
) -> DifferentialReport:
    """Sweep one litmus over every (policy, schedule) pair and demand that
    all completed runs agree on final memory.

    The suite's tests order their conflicting writes (spin flags, atomics),
    so final memory is schedule- *and* policy-independent by construction;
    the first completed run is the reference and every divergence is
    reported as a mismatch.
    """
    policies = policies if policies is not None else POLICY_VARIANTS
    schedules = list(schedules) if schedules is not None else default_schedules()
    report = DifferentialReport(test.name, [])
    reference: tuple[str, dict[str, int]] | None = None
    for policy_name, policy in policies.items():
        for schedule in schedules:
            outcome = run_litmus(
                test,
                policy=policy,
                policy_name=policy_name,
                schedule=schedule,
                **kwargs,
            )
            report.outcomes.append(outcome)
            if outcome.final_memory is None or outcome.failure_kind in (
                "invariant", "spin_timeout", "crash",
            ):
                continue
            label = f"{policy_name} @ {schedule.label()}"
            if reference is None:
                reference = (label, outcome.final_memory)
            elif outcome.final_memory != reference[1]:
                diffs = {
                    loc: (reference[1].get(loc), outcome.final_memory.get(loc))
                    for loc in sorted(
                        set(reference[1]) | set(outcome.final_memory)
                    )
                    if reference[1].get(loc) != outcome.final_memory.get(loc)
                }
                report.mismatches.append(
                    f"{test.name}: final memory of {label} diverges from "
                    f"{reference[0]}: {diffs}"
                )
    return report
