"""Verification: coherence invariant monitoring and value-oracle checks.

This is the reproduction's substitute for the CHAI benchmarks' output
verification: an invariant monitor that inspects global cache state after
every directory transaction, and a value oracle asserting that loads only
ever observe values some agent actually wrote.
"""

from repro.verify.invariants import CoherenceMonitor, InvariantViolation
from repro.verify.oracle import ValueOracle

__all__ = ["CoherenceMonitor", "InvariantViolation", "ValueOracle"]
