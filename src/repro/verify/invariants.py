"""Global coherence invariant monitoring.

A :class:`CoherenceMonitor` is a
:class:`~repro.coherence.engine.TransitionHook` attached to every directory
bank: whenever a Figure-2 transaction FSM transitions back to the unblocked
``"U"`` state (a transaction completing), it checks the *whole system's*
state for the affected line:

MOESI invariants over the CorePair L2 arrays:

- at most one cache holds the line in M or E;
- an M or E holder excludes every other readable copy;
- at most one cache holds the line in O (the designated owner).

Precise-directory consistency (when the system runs a §IV directory):

- ``I`` at the directory implies no L2 and no TCC holds the line;
- ``S`` implies no L2 holds it in M/O/E;
- ``O`` implies the tracked owner really holds it (in M/O/E, or has a
  victim in flight — the in-flight case the protocol resolves by capturing
  data through the probe ack);
- under sharer tracking, every L2 holding the line is tracked (owner,
  sharer, or covered by a limited-pointer overflow).

Transaction completions are the protocol's consistent points, which is why
checks run on transitions into ``"U"`` and not at arbitrary times.  (The
directory FSM hooks also fire Table I transitions, whose states are
:class:`~repro.protocol.types.DirState` members and never the string
``"U"``, so those do not trigger checks.)  The monitor assumes
``dma_updates_dir_state`` (the default); with it disabled the directory
intentionally keeps stale entries and the directory checks would misfire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.coherence.engine import TransitionHook
from repro.coherence.precise import PreciseDirectory
from repro.protocol.types import DirState, MoesiState
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.system.apu import ApuSystem


class InvariantViolation(SimulationError):
    pass


class CoherenceMonitor(TransitionHook):
    """Attach with ``CoherenceMonitor(system)``; violations raise by default."""

    def __init__(self, system: "ApuSystem", raise_on_violation: bool = True) -> None:
        self.system = system
        self.raise_on_violation = raise_on_violation
        self.checks_run = 0
        self.violations: list[str] = []
        for directory in getattr(system, "directories", [system.directory]):
            directory.add_fsm_hook(self)

    # -- hooks ------------------------------------------------------------------

    def on_transition(self, controller, addr, state, event, next_state,
                      table=None) -> None:
        if next_state == "U":  # a Figure-2 transaction reaching its commit point
            self.check_line(addr)

    # -- checks ------------------------------------------------------------------

    def check_line(self, addr: int) -> list[str]:
        """Run every invariant for one line; returns (and records) failures."""
        self.checks_run += 1
        problems: list[str] = []
        problems.extend(self._check_moesi(addr))
        if isinstance(self._bank_of(addr), PreciseDirectory):
            problems.extend(self._check_directory(addr))
        if problems:
            self.violations.extend(problems)
            if self.raise_on_violation:
                raise InvariantViolation(
                    f"line {addr:#x} at t={self.system.sim.now}: " + "; ".join(problems)
                )
        return problems

    def check_all_tracked(self) -> list[str]:
        """End-of-run sweep over every line any cache or the directory holds."""
        lines: set[int] = set()
        for corepair in self.system.corepairs:
            lines.update(line.addr for line in corepair.l2.iter_valid())
        for tcc in self._tccs():
            lines.update(line.addr for line in tcc.array.iter_valid())
        for directory in self._banks():
            if isinstance(directory, PreciseDirectory):
                lines.update(
                    line.addr for line in directory.dir_cache.iter_valid()
                )
        problems: list[str] = []
        for addr in sorted(lines):
            problems.extend(self.check_line(addr))
        return problems

    def _banks(self):
        return getattr(self.system, "directories", [self.system.directory])

    def _tccs(self):
        return getattr(self.system, "tccs", [self.system.tcc])

    def _bank_of(self, addr: int):
        banks = self._banks()
        from repro.mem.address import LINE_BYTES

        return banks[(addr // LINE_BYTES) % len(banks)]

    # -- invariant bodies ------------------------------------------------------------

    def _l2_states(self, addr: int) -> dict[str, MoesiState]:
        return {
            corepair.name: corepair.peek_state(addr)
            for corepair in self.system.corepairs
        }

    def _check_moesi(self, addr: int) -> list[str]:
        states = self._l2_states(addr)
        problems = []
        holders = {name: s for name, s in states.items() if s is not MoesiState.I}
        exclusive = [n for n, s in holders.items() if s in (MoesiState.M, MoesiState.E)]
        owners = [n for n, s in holders.items() if s is MoesiState.O]
        if len(exclusive) > 1:
            problems.append(f"multiple M/E holders: {exclusive}")
        if exclusive and len(holders) > 1:
            problems.append(
                f"M/E holder {exclusive[0]} coexists with other copies: {sorted(holders)}"
            )
        if len(owners) > 1:
            problems.append(f"multiple O owners: {owners}")
        if owners and exclusive:
            problems.append(f"O owner {owners[0]} coexists with M/E {exclusive[0]}")
        return problems

    def _check_directory(self, addr: int) -> list[str]:
        directory: PreciseDirectory = self._bank_of(addr)  # type: ignore[assignment]
        state, entry = directory.snapshot_entry(addr)
        if state is DirState.B:
            return []  # mid-eviction; nothing stable to assert
        states = self._l2_states(addr)
        holders = {n: s for n, s in states.items() if s is not MoesiState.I}
        tcc_holds = any(
            tcc.array.lookup(addr, touch=False) is not None
            for tcc in self._tccs()
        )
        problems = []
        if state is DirState.I:
            if holders:
                problems.append(f"dir=I but L2 copies exist: {sorted(holders)}")
            if tcc_holds:
                problems.append("dir=I but the TCC holds the line")
        elif state is DirState.S:
            bad = [n for n, s in holders.items() if s is not MoesiState.S]
            if bad:
                problems.append(f"dir=S but non-shared L2 copies: {bad}")
        elif state is DirState.O:
            assert entry is not None
            owner = entry.owner
            if owner is None:
                problems.append("dir=O without a tracked owner")
            else:
                owner_state = states.get(owner)
                owner_pair = self._corepair(owner)
                vic_in_flight = (
                    owner_pair is not None and addr in owner_pair._vic_pending
                )
                if owner_state not in (MoesiState.M, MoesiState.O, MoesiState.E) and not vic_in_flight:
                    problems.append(
                        f"dir=O owner {owner} holds {owner_state} with no victim in flight"
                    )
            extra_exclusive = [
                n for n, s in holders.items()
                if s in (MoesiState.M, MoesiState.E) and n != owner
            ]
            if extra_exclusive:
                problems.append(f"dir=O but non-owner M/E copies: {extra_exclusive}")
        if state in (DirState.S, DirState.O) and entry is not None:
            problems.extend(self._check_tracking(addr, entry, holders))
        return problems

    def _check_tracking(self, addr: int, entry, holders: dict[str, MoesiState]) -> list[str]:
        if entry.sharers is None or entry.overflow:
            return []  # owner-only mode / overflow: identities unknown
        tracked = set(entry.sharers)
        if entry.owner is not None:
            tracked.add(entry.owner)
        untracked = [name for name in holders if name not in tracked]
        if untracked:
            return [f"untracked L2 holders {untracked} (tracked: {sorted(tracked)})"]
        return []

    def _corepair(self, name: str):
        for corepair in self.system.corepairs:
            if corepair.name == name:
                return corepair
        return None
