"""Value oracle: every load must observe a value somebody actually wrote.

The oracle wraps workload programs (CPU threads and GPU wavefronts alike)
at the generator level: it watches the ops flow by, records the set of
values ever written to each word, and checks that every load / atomic
old-value / spin result is a member of that set (or the word's initial
value).  This catches data corruption — wrong-line routing, lost merges,
probe/response data mix-ups — without constraining legal weak-memory
reorderings.

Stronger, exact final-value checking is the job of each workload's own
``checks`` (the CHAI output-verification analogue).
"""

from __future__ import annotations

from typing import Callable, Generator

from repro.mem.address import LINE_BYTES, line_addr, word_index
from repro.protocol.atomics import AtomicOp
from repro.workloads.base import KernelSpec, WorkloadBuild
from repro.workloads import trace as ops


class ValueOracle:
    def __init__(self) -> None:
        #: legal observable values per word address
        self._legal: dict[int, set[int]] = {}
        self.errors: list[str] = []
        self.loads_checked = 0

    # -- seeding -----------------------------------------------------------------

    def seed_word(self, addr: int, value: int) -> None:
        self._legal.setdefault(addr, {0}).add(value)

    def _legal_set(self, addr: int) -> set[int]:
        return self._legal.setdefault(addr, {0})

    def note_write(self, addr: int, value: int) -> None:
        self._legal_set(addr).add(value)

    # -- wrapping ----------------------------------------------------------------------

    def wrap_build(self, build: WorkloadBuild) -> WorkloadBuild:
        """A copy of ``build`` whose programs report into this oracle."""
        for addr, line in build.initial_memory.items():
            for index, value in enumerate(line.words):
                if value:
                    self.seed_word(addr + 4 * index, value)
        for transfer in build.dma_transfers:
            if transfer.kind == "write":
                base = line_addr(transfer.start_addr)
                for line_index in range(transfer.lines):
                    for word in range(16):
                        self.note_write(
                            base + line_index * LINE_BYTES + 4 * word, transfer.value
                        )
        return WorkloadBuild(
            cpu_programs=[self.wrap_factory(f, f"cpu{i}")
                          for i, f in enumerate(build.cpu_programs)],
            dma_transfers=build.dma_transfers,
            initial_memory=build.initial_memory,
            checks=build.checks,
        )

    def wrap_factory(self, factory: Callable[[], Generator], agent: str):
        def wrapped() -> Generator:
            return self._observe(factory(), agent)

        return wrapped

    def _wrap_kernel(self, kernel: KernelSpec) -> KernelSpec:
        workgroups = [
            [self.wrap_factory(f, f"{kernel.name}.wg{w}.wf{i}")
             for i, f in enumerate(group)]
            for w, group in enumerate(kernel.workgroups)
        ]
        return KernelSpec(
            name=kernel.name,
            workgroups=workgroups,
            code_addrs=kernel.code_addrs,
            ifetch_interval=kernel.ifetch_interval,
        )

    # -- the observer generator -----------------------------------------------------------

    def _observe(self, program: Generator, agent: str) -> Generator:
        result = None
        while True:
            try:
                op = program.send(result)
            except StopIteration:
                return
            if isinstance(op, ops.Load):
                result = yield op
                self._check(op.addr, result, agent, "load")
            elif isinstance(op, ops.VLoad):
                result = yield op
                values = result if isinstance(result, tuple) else (result,)
                for addr, value in zip(op.addrs, values):
                    self._check(addr, value, agent, "vload")
            elif isinstance(op, ops.SpinUntil):
                result = yield op
                self._check(op.addr, result, agent, "spin")
            elif isinstance(op, ops.Store):
                self.note_write(op.addr, op.value)
                result = yield op
            elif isinstance(op, ops.VStore):
                values = op.values
                if isinstance(values, int):
                    values = [values] * len(op.addrs)
                for addr, value in zip(op.addrs, values):
                    self.note_write(addr, value)
                result = yield op
            elif isinstance(op, ops.AtomicRMW):
                old = yield op
                self._check(op.addr, old, agent, "atomic-old")
                self.note_write(op.addr, _atomic_result(op, old))
                result = old
            elif isinstance(op, ops.LaunchKernel):
                result = yield ops.LaunchKernel(self._wrap_kernel(op.kernel))
            else:
                result = yield op

    def _check(self, addr: int, value: object, agent: str, what: str) -> None:
        self.loads_checked += 1
        if not isinstance(value, int):
            self.errors.append(f"{agent}: {what} of {addr:#x} returned {value!r}")
            return
        if value not in self._legal_set(addr):
            self.errors.append(
                f"{agent}: {what} of word {addr:#x} observed {value}, "
                f"never written (legal: {sorted(self._legal_set(addr))[:8]}...)"
            )


def _atomic_result(op: ops.AtomicRMW, old: int) -> int:
    if op.op is AtomicOp.ADD:
        return old + op.operand
    if op.op is AtomicOp.INC:
        return old + 1
    if op.op is AtomicOp.EXCH:
        return op.operand
    if op.op is AtomicOp.CAS:
        return op.operand if old == op.compare else old
    if op.op is AtomicOp.MAX:
        return max(old, op.operand)
    if op.op is AtomicOp.MIN:
        return min(old, op.operand)
    if op.op is AtomicOp.AND:
        return old & op.operand
    if op.op is AtomicOp.OR:
        return old | op.operand
    raise ValueError(f"unknown atomic op {op.op!r}")
