"""SQLite-backed persistent result store.

The store is the single source of truth for simulation results: every
producer (parallel runner, serve daemon, litmus harness) inserts rows and
every consumer (figures, sweeps, benchmarks, CI) answers cell queries
from it.  Rows are keyed by the same content-addressed
:func:`repro.runner.cache.cell_key` the file cache used — the full
config, the workload identity, the run parameters, and a digest of the
``repro`` sources — so a hit is bit-identical to a re-run by
construction and any code change invalidates stale rows (they simply
never match again; ``gc`` reclaims them).

Compared to the loose ``.repro_cache/`` JSON files the store adds:

- one queryable database instead of thousands of files (``stats``,
  ``gc``, ``export``/``import`` of committable snapshots);
- atomic, crash-safe writes (SQLite transactions — a reader racing a
  writer sees the old or the new complete row, never a torn one);
- corrupt-row tolerance: an unparsable row is evicted and counted as a
  miss instead of raising;
- a second row kind (``litmus``) so litmus outcomes share the same
  persistence and snapshot machinery as simulation cells.

Thread-safe (one connection guarded by a lock) and multi-process-safe
(SQLite file locking with a busy timeout).
"""

from __future__ import annotations

import json
import os
import pathlib
import sqlite3
import threading
import time

from repro.runner.cache import CACHE_VERSION, cell_key, source_digest, workload_token
from repro.runner.cells import Cell
from repro.system.apu import SimulationResult
from repro.system.serialize import config_to_dict, result_from_dict, result_to_dict

#: default database location (override with $REPRO_STORE_PATH)
DEFAULT_STORE_PATH = ".repro_store.sqlite"

#: row kinds the store persists
KIND_CELL = "cell"
KIND_LITMUS = "litmus"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS results (
    key      TEXT PRIMARY KEY,
    kind     TEXT NOT NULL DEFAULT 'cell',
    workload TEXT NOT NULL,
    config   TEXT NOT NULL,
    scale    REAL NOT NULL DEFAULT 1.0,
    verify   INTEGER NOT NULL DEFAULT 0,
    seed     INTEGER NOT NULL DEFAULT 0,
    result   TEXT NOT NULL,
    source   TEXT NOT NULL,
    created  REAL NOT NULL,
    version  INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_results_kind ON results (kind);
CREATE INDEX IF NOT EXISTS idx_results_source ON results (source);
"""


def default_store_path() -> pathlib.Path:
    return pathlib.Path(os.environ.get("REPRO_STORE_PATH", DEFAULT_STORE_PATH))


class ResultStore:
    """Persistent result store; drop-in backend for :func:`resolve_cells`.

    Exposes the same ``get(key)`` / ``put(key, cell, result)`` surface as
    the legacy :class:`repro.runner.cache.ResultCache`, plus generic
    ``get_row`` / ``put_row`` for non-cell payloads (litmus outcomes) and
    the admin operations behind ``repro store``.
    """

    def __init__(self, path: str | os.PathLike | None = None,
                 enabled: bool = True) -> None:
        self.path = pathlib.Path(path if path is not None else default_store_path())
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evicted = 0
        self._lock = threading.Lock()
        self._conn: sqlite3.Connection | None = None

    # -- connection management -------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=30.0, check_same_thread=False
            )
            conn.execute("PRAGMA busy_timeout = 30000")
            conn.execute("PRAGMA synchronous = NORMAL")
            conn.executescript(_SCHEMA)
            conn.commit()
            self._conn = conn
        return self._conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.close()
                self._conn = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- generic rows ----------------------------------------------------

    def put_row(self, key: str, kind: str, workload: str, config: dict,
                result: dict, scale: float = 1.0, verify: bool = False,
                seed: int = 0, source: str | None = None) -> None:
        """Insert or replace one row atomically."""
        if not self.enabled:
            return
        with self._lock:
            conn = self._connect()
            with conn:  # one transaction: the row appears complete or not at all
                conn.execute(
                    "INSERT OR REPLACE INTO results "
                    "(key, kind, workload, config, scale, verify, seed, "
                    " result, source, created, version) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (key, kind, workload, json.dumps(config, sort_keys=True),
                     scale, int(verify), seed, json.dumps(result),
                     source if source is not None else source_digest(),
                     time.time(), CACHE_VERSION),
                )
            self.puts += 1

    def get_row(self, key: str, kind: str) -> dict | None:
        """The decoded ``result`` payload for ``key``, or None.

        A row that exists but fails to decode is evicted (corrupt-row
        tolerance) and reported as a miss.
        """
        if not self.enabled:
            return None
        with self._lock:
            conn = self._connect()
            row = conn.execute(
                "SELECT result FROM results WHERE key = ? AND kind = ?",
                (key, kind),
            ).fetchone()
            if row is None:
                self.misses += 1
                return None
            try:
                payload = json.loads(row[0])
                if not isinstance(payload, dict):
                    raise ValueError("row payload is not an object")
            except (ValueError, TypeError):
                with conn:
                    conn.execute("DELETE FROM results WHERE key = ?", (key,))
                self.evicted += 1
                self.misses += 1
                return None
            self.hits += 1
            return payload

    # -- the cell backend protocol (shared with ResultCache) -------------

    def get(self, key: str) -> SimulationResult | None:
        payload = self.get_row(key, KIND_CELL)
        if payload is None:
            return None
        try:
            return result_from_dict(payload)
        except (ValueError, TypeError, KeyError):
            # decodable JSON but not a result: evict like any corrupt row
            with self._lock:
                conn = self._connect()
                with conn:
                    conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self.evicted += 1
            self.hits -= 1
            self.misses += 1
            return None

    def put(self, key: str, cell: Cell, result: SimulationResult) -> None:
        self.put_row(
            key,
            KIND_CELL,
            workload=workload_token(cell.workload),
            config=config_to_dict(cell.config),
            result=result_to_dict(result),
            scale=cell.scale,
            verify=cell.verify,
            seed=cell.seed,
        )

    # -- admin operations (repro store) ----------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._connect().execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def stats(self) -> dict:
        """Row counts by kind plus freshness against the current sources."""
        current = source_digest()
        with self._lock:
            conn = self._connect()
            total = conn.execute("SELECT COUNT(*) FROM results").fetchone()[0]
            by_kind = dict(conn.execute(
                "SELECT kind, COUNT(*) FROM results GROUP BY kind"
            ).fetchall())
            fresh = conn.execute(
                "SELECT COUNT(*) FROM results WHERE source = ?", (current,)
            ).fetchone()[0]
            oldest, newest = conn.execute(
                "SELECT MIN(created), MAX(created) FROM results"
            ).fetchone()
        return {
            "path": str(self.path),
            "rows": total,
            "by_kind": by_kind,
            "fresh_rows": fresh,
            "stale_rows": total - fresh,
            "oldest": oldest,
            "newest": newest,
            "bytes": self.path.stat().st_size if self.path.exists() else 0,
            "session": {"hits": self.hits, "misses": self.misses,
                        "puts": self.puts, "evicted": self.evicted},
        }

    def gc(self, older_than_s: float | None = None) -> int:
        """Drop rows no current query can ever hit.

        Stale rows (inserted under a different source digest) are always
        reclaimed; ``older_than_s`` additionally drops fresh rows older
        than that age.  Returns the number of rows removed.
        """
        current = source_digest()
        with self._lock:
            conn = self._connect()
            with conn:
                cursor = conn.execute(
                    "DELETE FROM results WHERE source != ?", (current,)
                )
                removed = cursor.rowcount
                if older_than_s is not None:
                    cursor = conn.execute(
                        "DELETE FROM results WHERE created < ?",
                        (time.time() - older_than_s,),
                    )
                    removed += cursor.rowcount
            conn.execute("VACUUM")
        return removed

    def clear(self) -> int:
        with self._lock:
            conn = self._connect()
            with conn:
                removed = conn.execute("DELETE FROM results").rowcount
            conn.execute("VACUUM")
        return removed

    def export_snapshot(self, path: str | os.PathLike,
                        kind: str | None = None,
                        fresh_only: bool = True) -> int:
        """Write rows as sorted JSON-lines (committable, diff-stable).

        ``created`` timestamps are excluded so re-exporting identical
        results yields byte-identical snapshots.
        """
        where, args = [], []
        if kind is not None:
            where.append("kind = ?")
            args.append(kind)
        if fresh_only:
            where.append("source = ?")
            args.append(source_digest())
        query = "SELECT key, kind, workload, config, scale, verify, seed, " \
                "result, source, version FROM results"
        if where:
            query += " WHERE " + " AND ".join(where)
        query += " ORDER BY key"
        count = 0
        with self._lock:
            rows = self._connect().execute(query, args).fetchall()
        with open(path, "w") as handle:
            for row in rows:
                record = {
                    "key": row[0], "kind": row[1], "workload": row[2],
                    "config": json.loads(row[3]), "scale": row[4],
                    "verify": bool(row[5]), "seed": row[6],
                    "result": json.loads(row[7]), "source": row[8],
                    "version": row[9],
                }
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                count += 1
        return count

    def import_snapshot(self, path: str | os.PathLike) -> int:
        """Load a snapshot produced by :meth:`export_snapshot`.

        Rows keep their recorded source digest: stale rows import fine
        but never hit, and a later ``gc`` reclaims them.  Corrupt lines
        are skipped, not fatal.
        """
        count = 0
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self.put_row(
                        record["key"], record.get("kind", KIND_CELL),
                        workload=record["workload"],
                        config=record["config"],
                        result=record["result"],
                        scale=record.get("scale", 1.0),
                        verify=record.get("verify", False),
                        seed=record.get("seed", 0),
                        source=record.get("source", ""),
                    )
                    count += 1
                except (ValueError, TypeError, KeyError):
                    continue
        return count

    def migrate_cache(self, cache_root: str | os.PathLike) -> int:
        """Absorb a legacy ``.repro_cache/`` file tree into the store.

        Each cache file carries its own key and full metadata, so rows
        migrate losslessly; unreadable files are skipped.  Returns the
        number of entries imported.
        """
        root = pathlib.Path(cache_root)
        if not root.exists():
            return 0
        count = 0
        for file in sorted(root.rglob("*.json")):
            try:
                data = json.loads(file.read_text())
                key = data["key"]
                result = data["result"]
                if not isinstance(key, str) or not isinstance(result, dict):
                    continue
            except (OSError, ValueError, TypeError, KeyError):
                continue
            self.put_row(
                key, KIND_CELL,
                workload=str(data.get("workload", "?")),
                config=data.get("config", {}),
                result=result,
                scale=data.get("scale", 1.0),
                verify=data.get("verify", False),
                seed=data.get("seed", 0),
                # legacy entries embedded the digest in the key, not the
                # payload; keys still match while the sources do, so mark
                # the row fresh only if its key is reachable today
                source=source_digest(),
            )
            count += 1
        return count

    def __repr__(self) -> str:
        return (
            f"ResultStore({str(self.path)!r}, enabled={self.enabled}, "
            f"hits={self.hits}, misses={self.misses}, puts={self.puts})"
        )


__all__ = [
    "DEFAULT_STORE_PATH",
    "KIND_CELL",
    "KIND_LITMUS",
    "ResultStore",
    "cell_key",
    "default_store_path",
]
