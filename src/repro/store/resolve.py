"""``resolve_cells`` — the one entry point for turning cells into results.

Every consumer (figures, sweeps, benchmarks, the litmus fan-out, the CLI)
resolves cells here instead of carrying private caching logic.  For each
cell, in order of preference:

1. **store lookup** — any backend exposing ``get(key)`` / ``put(key,
   cell, result)`` (:class:`repro.store.ResultStore` or the legacy
   :class:`repro.runner.cache.ResultCache`) answers warm cells without
   simulating;
2. **in-flight dedup** — identical cells in one batch are simulated once;
3. **serve daemon** — with ``serve=`` (or ``$REPRO_SERVE``) set,
   registry-name cells are resolved by the always-on ``repro serve``
   daemon, which shards them over its persistent worker pool and dedups
   identical in-flight cells across *all* clients;
4. **local execution** — the remainder runs on a local process pool
   (``jobs>1``) or inline, exactly as before.

All four paths are bit-identical: results round-trip exactly through
:mod:`repro.system.serialize` and the simulator is deterministic.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol, Sequence

from repro.runner.cache import cell_key
from repro.runner.cells import Cell
from repro.system.apu import SimulationResult

#: environment variable naming a running serve daemon (host:port)
SERVE_ENV = "REPRO_SERVE"


class ResultBackend(Protocol):
    """What ``resolve_cells`` needs from a store: the shared surface of
    :class:`ResultStore` and the legacy :class:`ResultCache`."""

    def get(self, key: str) -> SimulationResult | None: ...
    def put(self, key: str, cell: Cell, result: SimulationResult) -> None: ...


def _serve_client(serve):
    """Normalize the ``serve`` argument into a client, or None."""
    if serve is None:
        serve = os.environ.get(SERVE_ENV) or None
    if serve is None or serve == "":
        return None
    if isinstance(serve, str):
        from repro.serve.client import ServeClient

        return ServeClient(serve)
    return serve  # already a client


def resolve_cells(
    cells: Sequence[Cell],
    store: ResultBackend | None = None,
    jobs: int | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
    progress: Callable[[str], None] | None = None,
    serve=None,
) -> list[SimulationResult]:
    """Resolve every cell, in input order, returning one result per cell.

    ``store`` serves warm cells and receives every fresh result;
    ``serve`` (an address string, a :class:`ServeClient`, or the
    ``$REPRO_SERVE`` environment variable) routes simulation to a running
    daemon; everything else falls back to the local pool.
    """
    from repro.runner import executor

    if retries is None:
        retries = executor.DEFAULT_RETRIES
    emit = progress or (lambda line: None)
    total = len(cells)
    results: list[SimulationResult | None] = [None] * total
    keys = [cell_key(cell) if store is not None else None for cell in cells]

    pending: list[int] = []
    seen_keys: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    for index, cell in enumerate(cells):
        key = keys[index]
        if store is not None:
            cached = store.get(key)
            if cached is not None:
                results[index] = cached
                emit(f"[runner] {index + 1}/{total} {cell.display}: store hit")
                continue
            if key in seen_keys:
                duplicates.append((index, seen_keys[key]))
                continue
            seen_keys[key] = index
        pending.append(index)

    served: set[int] = set()
    client = _serve_client(serve) if pending else None
    if client is not None:
        served = _resolve_served(cells, pending, results, client, emit,
                                 timeout_s)
        pending = [index for index in pending if index not in served]

    if pending:
        jobs = executor.effective_jobs(jobs)
        if jobs <= 1 or len(pending) == 1:
            executor.run_inline(cells, pending, results, emit)
        else:
            executor.run_pool(cells, pending, results, jobs, timeout_s,
                              retries, emit)

    if store is not None:
        for index in sorted(set(pending) | served):
            store.put(keys[index], cells[index], results[index])

    for index, source in duplicates:
        results[index] = results[source]
    return results  # type: ignore[return-value]


def _resolve_served(
    cells: Sequence[Cell],
    pending: Sequence[int],
    results: list,
    client,
    emit: Callable[[str], None],
    timeout_s: float | None,
) -> set[int]:
    """Resolve what the daemon can take (registry-name workloads); on any
    transport failure fall back to local execution for everything."""
    eligible = [i for i in pending if isinstance(cells[i].workload, str)]
    if not eligible:
        return set()
    try:
        answers = client.resolve(
            [cells[i] for i in eligible], progress=emit, timeout_s=timeout_s
        )
    except (OSError, ValueError) as exc:
        emit(f"[runner] serve daemon unavailable ({exc}); running locally")
        return set()
    for index, result in zip(eligible, answers):
        results[index] = result
    return set(eligible)


__all__ = ["ResultBackend", "resolve_cells", "SERVE_ENV"]
