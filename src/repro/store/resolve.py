"""``resolve_cells`` — the one entry point for turning cells into results.

Every consumer (figures, sweeps, benchmarks, the litmus fan-out, the CLI)
resolves cells here instead of carrying private caching logic.  For each
cell, in order of preference:

1. **store lookup** — any backend exposing ``get(key)`` / ``put(key,
   cell, result)`` (:class:`repro.store.ResultStore` or the legacy
   :class:`repro.runner.cache.ResultCache`) answers warm cells without
   simulating;
2. **in-flight dedup** — identical cells in one batch are simulated once;
3. **serve daemon** — with ``serve=`` (or ``$REPRO_SERVE``) set,
   registry-name cells are resolved by the always-on ``repro serve``
   daemon, which shards them over its persistent worker pool and dedups
   identical in-flight cells across *all* clients;
4. **local execution** — the remainder runs on a local process pool
   (``jobs>1``) or inline, exactly as before.

All four paths are bit-identical: results round-trip exactly through
:mod:`repro.system.serialize` and the simulator is deterministic.
"""

from __future__ import annotations

import os
from typing import Callable, Protocol, Sequence

from repro.runner.cache import cell_key
from repro.runner.cells import Cell
from repro.system.apu import SimulationResult

#: environment variable naming a running serve daemon (host:port)
SERVE_ENV = "REPRO_SERVE"


class ResultBackend(Protocol):
    """What ``resolve_cells`` needs from a store: the shared surface of
    :class:`ResultStore` and the legacy :class:`ResultCache`."""

    def get(self, key: str) -> SimulationResult | None: ...
    def put(self, key: str, cell: Cell, result: SimulationResult) -> None: ...


def _serve_client(serve):
    """Normalize the ``serve`` argument into a client, or None."""
    if serve is None:
        serve = os.environ.get(SERVE_ENV) or None
    if serve is None or serve == "":
        return None
    if isinstance(serve, str):
        from repro.serve.client import ServeClient

        return ServeClient(serve)
    return serve  # already a client


def resolve_cells(
    cells: Sequence[Cell],
    store: ResultBackend | None = None,
    jobs: int | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
    progress: Callable[[str], None] | None = None,
    serve=None,
) -> list[SimulationResult]:
    """Resolve every cell, in input order, returning one result per cell.

    ``store`` serves warm cells and receives every fresh result;
    ``serve`` (an address string, a :class:`ServeClient`, or the
    ``$REPRO_SERVE`` environment variable) routes simulation to a running
    daemon; everything else falls back to the local pool.
    """
    from repro.runner import executor

    if retries is None:
        retries = executor.DEFAULT_RETRIES
    emit = progress or (lambda line: None)
    total = len(cells)
    results: list[SimulationResult | None] = [None] * total
    keys = [cell_key(cell) if store is not None else None for cell in cells]

    pending: list[int] = []
    seen_keys: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    for index, cell in enumerate(cells):
        key = keys[index]
        if store is not None:
            cached = store.get(key)
            if cached is not None:
                results[index] = cached
                emit(f"[runner] {index + 1}/{total} {cell.display}: store hit")
                continue
            if key in seen_keys:
                duplicates.append((index, seen_keys[key]))
                continue
            seen_keys[key] = index
        pending.append(index)

    served: set[int] = set()
    client = _serve_client(serve) if pending else None
    if client is not None:
        served = _resolve_served(cells, pending, results, client, emit,
                                 timeout_s)
        pending = [index for index in pending if index not in served]

    if pending:
        jobs = executor.effective_jobs(jobs)
        if jobs <= 1 or len(pending) == 1:
            executor.run_inline(cells, pending, results, emit)
        else:
            executor.run_pool(cells, pending, results, jobs, timeout_s,
                              retries, emit)

    if store is not None:
        for index in sorted(set(pending) | served):
            store.put(keys[index], cells[index], results[index])

    for index, source in duplicates:
        results[index] = results[source]
    return results  # type: ignore[return-value]


def resolve_litmus(
    runs: Sequence[tuple],
    store=None,
    jobs: int | None = None,
    timeout_s: float | None = None,
    retries: int | None = None,
    progress: Callable[[str], None] | None = None,
    max_events: int | None = None,
    coverage: bool = False,
    mutate_system=None,
) -> list:
    """Resolve litmus runs the way :func:`resolve_cells` resolves cells.

    ``runs`` is a sequence of ``(test, policy_name, schedule)`` triples
    (policies by :data:`POLICY_VARIANTS` name, so they can cross the
    process boundary).  Outcomes come back in input order: warm triples
    are store lookups (:data:`KIND_LITMUS` rows keyed by
    :func:`litmus_key`), identical in-batch triples simulate once, and
    the rest fans out over ``jobs`` local workers.

    ``mutate_system`` (fault injection) forces everything inline with the
    store bypassed — mutation hooks are closures that neither cross the
    process boundary nor belong in content-addressed rows.
    """
    import dataclasses

    from repro.runner import executor
    from repro.store import KIND_LITMUS
    from repro.verify.litmus.harness import (
        LITMUS_MAX_EVENTS,
        POLICY_VARIANTS,
        litmus_key,
        outcome_from_dict,
        outcome_to_dict,
        run_litmus,
    )

    if max_events is None:
        max_events = LITMUS_MAX_EVENTS
    if retries is None:
        retries = executor.DEFAULT_RETRIES
    emit = progress or (lambda line: None)
    total = len(runs)
    results: list = [None] * total

    if mutate_system is not None:
        for index, (test, policy_name, schedule) in enumerate(runs):
            results[index] = run_litmus(
                test, policy_name=policy_name, schedule=schedule,
                max_events=max_events, coverage=coverage,
                mutate_system=mutate_system,
            )
            label = executor.litmus_run_label(test, policy_name, schedule)
            emit(f"[runner] {index + 1}/{total} {label}: simulated inline "
                 "(fault injection)")
        return results

    keys = [
        litmus_key(test, POLICY_VARIANTS[policy_name], schedule,
                   max_events, coverage)
        for test, policy_name, schedule in runs
    ]

    pending: list[int] = []
    seen_keys: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    for index, (test, policy_name, schedule) in enumerate(runs):
        key = keys[index]
        if store is not None:
            row = store.get_row(key, KIND_LITMUS)
            if row is not None:
                try:
                    stored = outcome_from_dict(row)
                except (KeyError, ValueError, TypeError):
                    pass  # unreadable payload: fall through and re-run
                else:
                    stored.policy = policy_name
                    results[index] = stored
                    label = executor.litmus_run_label(
                        test, policy_name, schedule
                    )
                    emit(f"[runner] {index + 1}/{total} {label}: store hit")
                    continue
        if key in seen_keys:
            duplicates.append((index, seen_keys[key]))
            continue
        seen_keys[key] = index
        pending.append(index)

    if pending:
        jobs = executor.effective_jobs(jobs)
        if jobs <= 1 or len(pending) == 1:
            for position, index in enumerate(pending):
                test, policy_name, schedule = runs[index]
                results[index] = run_litmus(
                    test, policy_name=policy_name, schedule=schedule,
                    max_events=max_events, coverage=coverage,
                )
                label = executor.litmus_run_label(test, policy_name, schedule)
                emit(f"[runner] {position + 1}/{len(pending)} {label}: "
                     "simulated inline")
        else:
            executor.run_litmus_pool(
                runs, pending, results, jobs, timeout_s, retries, emit,
                max_events=max_events, coverage=coverage,
            )

    if store is not None:
        from repro.system.serialize import policy_to_dict

        for index in pending:
            test, policy_name, schedule = runs[index]
            store.put_row(
                keys[index], KIND_LITMUS,
                workload=test.name,
                config={"policy": policy_to_dict(POLICY_VARIANTS[policy_name]),
                        "schedule": schedule.to_json(),
                        "max_events": max_events},
                result=outcome_to_dict(results[index]),
                verify=True,
                seed=schedule.seed,
            )

    for index, source in duplicates:
        # Same key, possibly a different policy *name* (two names can map
        # to one policy dict): share the data, fix the label.
        results[index] = dataclasses.replace(
            results[source], policy=runs[index][1]
        )
    return results


def _resolve_served(
    cells: Sequence[Cell],
    pending: Sequence[int],
    results: list,
    client,
    emit: Callable[[str], None],
    timeout_s: float | None,
) -> set[int]:
    """Resolve what the daemon can take (registry-name workloads); on any
    transport failure fall back to local execution for everything."""
    eligible = [i for i in pending if isinstance(cells[i].workload, str)]
    if not eligible:
        return set()
    try:
        answers = client.resolve(
            [cells[i] for i in eligible], progress=emit, timeout_s=timeout_s
        )
    except (OSError, ValueError) as exc:
        emit(f"[runner] serve daemon unavailable ({exc}); running locally")
        return set()
    for index, result in zip(eligible, answers):
        results[index] = result
    return set(eligible)


__all__ = ["ResultBackend", "resolve_cells", "resolve_litmus", "SERVE_ENV"]
