"""Persistent SQLite results store and the cell-resolution entry point.

Public surface:

- :class:`ResultStore` — the SQLite-backed store every producer writes
  and every consumer queries (``repro store`` administers it).
- :func:`resolve_cells` — the single entry point that turns cells into
  results via store lookup, in-flight dedup, the serve daemon, or local
  execution.
- :func:`resolve_litmus` — the same entry point for litmus runs (the
  fuzz campaign's fan-out path).
- :func:`cell_key` — the content-addressed key (re-exported from the
  runner so store users need one import).
"""

from repro.store.resolve import (
    SERVE_ENV,
    ResultBackend,
    resolve_cells,
    resolve_litmus,
)
from repro.store.store import (
    DEFAULT_STORE_PATH,
    KIND_CELL,
    KIND_LITMUS,
    ResultStore,
    cell_key,
    default_store_path,
)

__all__ = [
    "DEFAULT_STORE_PATH",
    "KIND_CELL",
    "KIND_LITMUS",
    "ResultBackend",
    "ResultStore",
    "SERVE_ENV",
    "cell_key",
    "default_store_path",
    "resolve_cells",
    "resolve_litmus",
]
