"""Coherence protocol vocabulary shared by every controller.

Enumerations of stable/directory states, request/probe/response message
types (the §II-A request taxonomy of the paper), the concrete
:class:`~repro.protocol.messages.Message` record that travels the fabric,
and atomic read-modify-write semantics.
"""

from repro.protocol.atomics import AtomicOp, apply_atomic
from repro.protocol.messages import (
    CTRL_MSG_BYTES,
    DATA_MSG_BYTES,
    Message,
)
from repro.protocol.types import (
    DirState,
    MoesiState,
    MsgType,
    ProbeType,
    RequesterKind,
)

__all__ = [
    "AtomicOp",
    "CTRL_MSG_BYTES",
    "DATA_MSG_BYTES",
    "DirState",
    "Message",
    "MoesiState",
    "MsgType",
    "ProbeType",
    "RequesterKind",
    "apply_atomic",
]
