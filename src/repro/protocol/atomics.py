"""Atomic read-modify-write semantics.

One word of one line is updated atomically.  System-scope (SLC) atomics run
at the directory with full-system visibility; device-scope (GLC) atomics run
at the TCC (§II-C).  Both use :func:`apply_atomic`.
"""

from __future__ import annotations

import enum

from repro.mem.block import LineData


class AtomicOp(enum.Enum):
    ADD = "add"
    INC = "inc"
    EXCH = "exch"
    CAS = "cas"
    MAX = "max"
    MIN = "min"
    AND = "and"
    OR = "or"


def apply_atomic(
    data: LineData,
    word: int,
    op: AtomicOp,
    operand: int = 0,
    compare: int = 0,
) -> tuple[LineData, int]:
    """Apply ``op`` to ``data.word(word)``; returns ``(new_line, old_value)``.

    ``compare`` is only used by CAS (swap in ``operand`` iff old == compare).
    """
    old = data.word(word)
    if op is AtomicOp.ADD:
        new = old + operand
    elif op is AtomicOp.INC:
        new = old + 1
    elif op is AtomicOp.EXCH:
        new = operand
    elif op is AtomicOp.CAS:
        new = operand if old == compare else old
    elif op is AtomicOp.MAX:
        new = max(old, operand)
    elif op is AtomicOp.MIN:
        new = min(old, operand)
    elif op is AtomicOp.AND:
        new = old & operand
    elif op is AtomicOp.OR:
        new = old | operand
    else:  # pragma: no cover - enum is exhaustive
        raise ValueError(f"unknown atomic op {op!r}")
    if new == old:
        return data, old
    return data.with_word(word, new), old
