"""State and message-type enumerations.

These mirror the vocabulary of §II of the paper: the MOESI states of the
CorePair caches, the VI states of the GPU caches, the request types the
system-level directory accepts from L2s / the TCC / the DMA engine, and the
two probe flavours the directory sends.
"""

from __future__ import annotations

import enum


class MoesiState(enum.Enum):
    """CPU-side (CorePair L1/L2) stable states."""

    M = "M"  # modified: sole dirty copy
    O = "O"  # owned: dirty, shared, this copy responsible for write-back
    E = "E"  # exclusive: sole clean copy; may silently become M
    S = "S"  # shared: readable copy (may be dirty w.r.t. memory under an O owner)
    I = "I"  # invalid

    # members are identity-compared singletons, so the C-level id hash is
    # equivalent to Enum's Python-level name hash — and these enums key the
    # per-event transition/category dict lookups.
    __hash__ = object.__hash__

    @property
    def readable(self) -> bool:
        return self is not MoesiState.I

    @property
    def writable(self) -> bool:
        return self in (MoesiState.M, MoesiState.E)

    @property
    def is_dirty(self) -> bool:
        """Does holding this state oblige the cache to supply/write back data?"""
        return self in (MoesiState.M, MoesiState.O)


class ViState(enum.Enum):
    """GPU-side (TCP/TCC/SQC) stable states — a simple Valid/Invalid protocol."""

    V = "V"
    I = "I"

    __hash__ = object.__hash__


class DirState(enum.Enum):
    """Precise-directory stable states (§IV-A of the paper).

    ``I``: no processor cache holds the line.
    ``S``: held only in shared, LLC-coherent form.
    ``O``: modified/owned/exclusive somewhere above (E is conservatively O
    because E can turn M silently).
    ``B``: transient — the directory entry is being evicted; requests stall.
    """

    I = "I"
    S = "S"
    O = "O"
    B = "B"

    __hash__ = object.__hash__


class MsgType(enum.Enum):
    """Every message class that crosses the fabric."""

    # CPU L2 -> directory requests (§II-A)
    RDBLK = "RdBlk"      # read, may be granted Exclusive or Shared
    RDBLKS = "RdBlkS"    # read, Shared only (instruction-cache misses)
    RDBLKM = "RdBlkM"    # write permission
    VIC_DIRTY = "VicDirty"
    VIC_CLEAN = "VicClean"
    # TCC -> directory requests
    WT = "WT"            # write-through (doubles as write-back when TCC is WB)
    ATOMIC = "Atomic"    # system-scope (SLC) atomic, executed at the directory
    FLUSH = "Flush"      # store-release support
    # DMA -> directory requests
    DMA_RD = "DMARd"
    DMA_WR = "DMAWr"
    # directory -> caches
    PROBE = "Probe"
    # caches -> directory
    PROBE_ACK = "ProbeAck"
    # directory -> requester
    DATA_RESP = "DataResp"
    WB_ACK = "WBAck"
    WT_ACK = "WTAck"
    ATOMIC_RESP = "AtomicResp"
    FLUSH_ACK = "FlushAck"
    DMA_RESP = "DMAResp"
    # requester -> directory, closing a transaction
    UNBLOCK = "Unblock"

    @property
    def is_request(self) -> bool:
        return self in _REQUESTS

    @property
    def is_write_permission(self) -> bool:
        """Request types that trigger *invalidating* probes (incl. the TCC)."""
        return self in (MsgType.RDBLKM, MsgType.WT, MsgType.ATOMIC, MsgType.DMA_WR)

    @property
    def is_read_permission(self) -> bool:
        """Request types that trigger *downgrading* probes (TCC excluded)."""
        return self in (MsgType.RDBLK, MsgType.RDBLKS, MsgType.DMA_RD)

    @property
    def is_victim(self) -> bool:
        return self in (MsgType.VIC_DIRTY, MsgType.VIC_CLEAN)

    __hash__ = object.__hash__


_REQUESTS = frozenset(
    {
        MsgType.RDBLK,
        MsgType.RDBLKS,
        MsgType.RDBLKM,
        MsgType.VIC_DIRTY,
        MsgType.VIC_CLEAN,
        MsgType.WT,
        MsgType.ATOMIC,
        MsgType.FLUSH,
        MsgType.DMA_RD,
        MsgType.DMA_WR,
    }
)


class ProbeType(enum.Enum):
    INVALIDATE = "inv"
    DOWNGRADE = "down"

    __hash__ = object.__hash__


class RequesterKind(enum.Enum):
    """Who a directory request came from — decides response shape."""

    CPU_L2 = "l2"
    TCC = "tcc"
    DMA = "dma"

    __hash__ = object.__hash__
