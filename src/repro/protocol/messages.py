"""The concrete message record exchanged between controllers.

A single :class:`Message` type covers the whole protocol; unused fields stay
at their defaults.  Factory classmethods build each message shape so call
sites stay readable and sizes/categories are set consistently (control
messages are 8 bytes, data-carrying messages 72 bytes = 8 control + 64
data — the constants the network uses for byte accounting).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.protocol.types import MoesiState, MsgType, ProbeType, RequesterKind

CTRL_MSG_BYTES = 8
DATA_MSG_BYTES = 72

_uid_counter = itertools.count()


def _category(mtype: MsgType) -> str:
    if mtype is MsgType.PROBE:
        return "probe"
    if mtype is MsgType.PROBE_ACK:
        return "probe_ack"
    if mtype is MsgType.UNBLOCK:
        return "unblock"
    if mtype.is_request:
        return "request"
    return "response"


#: category is fixed per message type; the fabric reads it once per send.
_CATEGORY_OF = {mtype: _category(mtype) for mtype in MsgType}


@dataclass(slots=True)
class Message:
    mtype: MsgType
    src: str
    dst: str
    addr: int
    requester: str | None = None
    requester_kind: RequesterKind | None = None
    data: LineData | None = None
    dirty: bool = False
    probe_type: ProbeType | None = None
    state: MoesiState | None = None
    atomic_op: AtomicOp | None = None
    operand: int = 0
    compare: int = 0
    word: int = 0
    is_writeback: bool = False
    #: partial-line GPU write-through: sparse {word_index: value} updates
    #: (mutually exclusive with a full-line ``data`` payload).
    word_updates: dict[int, int] | None = None
    #: probe acks: did the probed cache hold a (possibly clean) copy?
    had_copy: bool = False
    #: probe acks: the copy lives in a victim buffer (a Vic* message for
    #: this line is already in flight and must be treated as superseded by
    #: any system-level write this probe serves).
    from_victim: bool = False
    #: atomic responses: the old value read-modify-written.
    result: int = 0
    tid: int = -1
    uid: int = field(default_factory=_uid_counter.__next__)

    @property
    def category(self) -> str:
        return _CATEGORY_OF[self.mtype]

    @property
    def size_bytes(self) -> int:
        if self.data is not None:
            return DATA_MSG_BYTES
        if self.word_updates:
            return CTRL_MSG_BYTES + 4 * len(self.word_updates)
        return CTRL_MSG_BYTES

    # -- factories ----------------------------------------------------------

    @classmethod
    def request(
        cls,
        mtype: MsgType,
        src: str,
        dst: str,
        addr: int,
        kind: RequesterKind,
        data: LineData | None = None,
        **fields: object,
    ) -> "Message":
        if not mtype.is_request:
            raise ValueError(f"{mtype} is not a request type")
        return cls(
            mtype, src, dst, addr, requester=src, requester_kind=kind, data=data, **fields
        )

    @classmethod
    def probe(
        cls,
        src: str,
        dst: str,
        addr: int,
        probe_type: ProbeType,
        tid: int,
    ) -> "Message":
        return cls(MsgType.PROBE, src, dst, addr, probe_type=probe_type, tid=tid)

    @classmethod
    def probe_ack(
        cls,
        src: str,
        dst: str,
        addr: int,
        tid: int,
        data: LineData | None = None,
        dirty: bool = False,
        had_copy: bool = False,
        from_victim: bool = False,
        word_updates: dict[int, int] | None = None,
    ) -> "Message":
        return cls(
            MsgType.PROBE_ACK, src, dst, addr, tid=tid, data=data, dirty=dirty,
            had_copy=had_copy or data is not None, from_victim=from_victim,
            word_updates=word_updates,
        )

    @classmethod
    def data_resp(
        cls,
        src: str,
        dst: str,
        addr: int,
        data: LineData,
        state: MoesiState,
        dirty: bool = False,
        tid: int = -1,
    ) -> "Message":
        return cls(
            MsgType.DATA_RESP, src, dst, addr, data=data, state=state, dirty=dirty, tid=tid
        )

    @classmethod
    def ack(cls, mtype: MsgType, src: str, dst: str, addr: int, tid: int = -1) -> "Message":
        return cls(mtype, src, dst, addr, tid=tid)

    @classmethod
    def unblock(cls, src: str, dst: str, addr: int, tid: int) -> "Message":
        return cls(MsgType.UNBLOCK, src, dst, addr, tid=tid)

    def __repr__(self) -> str:
        parts = [f"{self.mtype.value}", f"{self.src}->{self.dst}", f"addr={self.addr:#x}"]
        if self.probe_type is not None:
            parts.append(self.probe_type.value)
        if self.state is not None:
            parts.append(f"grant={self.state.value}")
        if self.data is not None:
            parts.append("+data" + ("(dirty)" if self.dirty else ""))
        if self.tid >= 0:
            parts.append(f"tid={self.tid}")
        return f"<Msg {' '.join(parts)}>"
