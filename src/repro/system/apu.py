"""The assembled APU system and its run/inspection API."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.mem.address import line_addr, word_index
from repro.protocol.types import MoesiState
from repro.sim.clock import ClockDomain
from repro.sim.event_queue import Simulator
from repro.workloads.base import Workload, WorkloadBuild, WorkloadContext

if TYPE_CHECKING:
    from repro.coherence.directory import DirectoryController
    from repro.coherence.llc import LastLevelCache
    from repro.cpu.core import CpuCore
    from repro.cpu.corepair import CorePair
    from repro.dma.engine import DmaEngine
    from repro.gpu.compute_unit import ComputeUnit
    from repro.gpu.gpu_device import GpuDevice
    from repro.gpu.sqc import SqcCache
    from repro.gpu.tcc import TccController
    from repro.mem.main_memory import MainMemory
    from repro.sim.network import Network


@dataclass
class SimulationResult:
    """Outcome of one workload run: the metrics behind Figures 4-7."""

    workload: str
    ticks: int
    #: runtime in CPU-clock cycles (the paper reports simulated cycles)
    cycles: float
    #: probes sent from the directory (Figure 7)
    dir_probes: int
    #: directory<->memory reads/writes (Figure 5)
    mem_reads: int
    mem_writes: int
    #: total fabric messages/bytes (network activity)
    network_messages: int
    network_bytes: int
    llc_hits: int
    llc_misses: int
    check_errors: list[str] = field(default_factory=list)
    stats: dict[str, int | float] = field(default_factory=dict)

    @property
    def mem_accesses(self) -> int:
        return self.mem_reads + self.mem_writes

    @property
    def ok(self) -> bool:
        return not self.check_errors

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Paper-style improvement: % simulated cycles saved vs baseline."""
        return 100.0 * (baseline.cycles - self.cycles) / baseline.cycles

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.check_errors)} CHECK FAILURES"
        return (
            f"SimulationResult({self.workload}, cycles={self.cycles:.0f}, "
            f"probes={self.dir_probes}, mem={self.mem_accesses}, {status})"
        )


@dataclass
class ApuSystem:
    """Handles to every component of one built system."""

    sim: Simulator
    config: object
    network: "Network"
    memory: "MainMemory"
    #: first LLC slice / directory bank (the whole thing when dir_banks=1)
    llc: "LastLevelCache"
    directory: "DirectoryController"
    #: all banks (length = policy.dir_banks)
    llcs: list["LastLevelCache"]
    directories: list["DirectoryController"]
    corepairs: list["CorePair"]
    cores: list["CpuCore"]
    gpu: "GpuDevice"
    #: first TCC bank (the whole TCC when num_tccs=1)
    tcc: "TccController"
    tccs: list["TccController"]
    sqc: "SqcCache"
    cus: list["ComputeUnit"]
    dma: "DmaEngine"
    clocks: dict[str, ClockDomain]

    def arm_watchdog(self, window_cycles: float):
        """Arm the deadlock/starvation watchdog (idempotent): one liveness
        check per ``window_cycles`` uncore cycles, with the network's
        blocked-port and the memory controller's back-pressure snapshots as
        starvation probes and their wait-for/queue dumps wired into the
        trip report.  Returns the :class:`~repro.sim.watchdog.Watchdog`."""
        from repro.sim.watchdog import Watchdog

        if self.sim.watchdog is not None:
            return self.sim.watchdog
        watchdog = Watchdog(self.sim, self.clocks["uncore"], window_cycles)
        watchdog.add_probe("network", self.network.blocked_snapshot)
        watchdog.add_probe("memory", self.memory.blocked_snapshot)
        watchdog.add_dump("network ports", self.network.describe_ports)
        watchdog.add_dump("memory queues", self.memory.describe_queues)
        return watchdog

    # -- running workloads ----------------------------------------------------

    def run_workload(
        self,
        workload: Workload,
        seed: int = 0,
        scale: float = 1.0,
        verify: bool = False,
        max_events: int | None = None,
    ) -> SimulationResult:
        """Build ``workload`` for this system, run it to completion, and
        return the measured result (including functional check outcomes).

        With ``verify=True`` the run also attaches the coherence invariant
        monitor (which raises on any protocol invariant violation) and the
        value oracle (whose findings land in ``check_errors``).
        """
        from repro.verify import CoherenceMonitor, ValueOracle

        context = WorkloadContext(
            num_cpu_cores=len(self.cores),
            num_cus=len(self.cus),
            seed=seed,
            scale=scale,
        )
        build = workload.build(context)
        oracle = monitor = None
        if verify:
            oracle = ValueOracle()
            build = oracle.wrap_build(build)
            monitor = CoherenceMonitor(self)
        self.start_build(build)
        self.sim.run(max_events=max_events)
        result = self.collect_result(workload.name, build)
        if verify:
            assert oracle is not None and monitor is not None
            monitor.check_all_tracked()
            result.check_errors.extend(oracle.errors)
            result.stats["verify.invariant_checks"] = monitor.checks_run
            result.stats["verify.loads_checked"] = oracle.loads_checked
        return result

    def start_build(self, build: WorkloadBuild) -> None:
        """Load initial memory and start every program (without running)."""
        for addr, data in build.initial_memory.items():
            self.memory.poke(addr, data)
        if len(build.cpu_programs) > len(self.cores):
            raise ValueError(
                f"workload wants {len(build.cpu_programs)} CPU threads, "
                f"system has {len(self.cores)}"
            )
        for core, factory in zip(self.cores, build.cpu_programs):
            core.run_program(factory())
        if build.dma_transfers:
            self.dma.run_transfers(build.dma_transfers)

    def collect_result(self, name: str, build: WorkloadBuild | None = None) -> SimulationResult:
        errors: list[str] = []
        if build is not None:
            for check in build.checks:
                errors.extend(check(self))
        net_stats = self.network.stats

        def dir_total(counter: str) -> int:
            return int(sum(d.stats[counter] for d in self.directories))

        def llc_total(counter: str) -> int:
            return int(sum(llc.stats[counter] for llc in self.llcs))

        return SimulationResult(
            workload=name,
            ticks=self.sim.now,
            cycles=self.clocks["cpu"].ticks_to_cycles(self.sim.now),
            dir_probes=dir_total("probes_sent"),
            mem_reads=dir_total("mem_reads"),
            mem_writes=dir_total("mem_writes"),
            network_messages=int(net_stats["messages"]),
            network_bytes=int(net_stats["bytes"]),
            llc_hits=llc_total("read_hits"),
            llc_misses=llc_total("read_misses"),
            check_errors=errors,
            stats=self.all_stats(),
        )

    # -- coherent inspection ----------------------------------------------------

    def coherent_word(self, addr: int) -> int:
        """The current system-wide value of a word: a dirty CPU owner's copy
        wins, then a valid TCC copy that is dirty, then the LLC, then memory."""
        line = line_addr(addr)
        for corepair in self.corepairs:
            cached = corepair.l2.lookup(line, touch=False)
            if cached is not None and cached.state in (MoesiState.M, MoesiState.O):
                return cached.data.word(word_index(addr))
        for tcc in self.tccs:
            tcc_line = tcc.array.lookup(line, touch=False)
            if tcc_line is not None and tcc_line.dirty:
                return tcc_line.data.word(word_index(addr))
        for llc in self.llcs:
            llc_data = llc.peek(line)
            if llc_data is not None:
                return llc_data.word(word_index(addr))
        return self.memory.peek(line).word(word_index(addr))

    def dump_stats(self, path: str | None = None) -> str:
        """Render every counter as aligned ``name = value`` lines (the
        gem5 ``stats.txt`` analogue); optionally write to ``path``."""
        rows = sorted(self.all_stats().items())
        width = max((len(name) for name, _v in rows), default=0)
        text = "\n".join(f"{name:<{width}} = {value}" for name, value in rows)
        header = (
            f"# repro stats dump @ tick {self.sim.now} "
            f"({self.clocks['cpu'].ticks_to_cycles(self.sim.now):.0f} cpu cycles)\n"
        )
        output = header + text + "\n"
        if path is not None:
            with open(path, "w") as handle:
                handle.write(output)
        return output

    def all_stats(self) -> dict[str, int | float]:
        merged: dict[str, int | float] = {}
        for component in self.sim.components:
            stats = getattr(component, "stats", None)
            if stats is not None:
                merged.update(stats.as_dict())
        for index, llc in enumerate(self.llcs):
            prefix = "" if index == 0 else f"bank{index}."
            for key, value in llc.stats.as_dict().items():
                merged[f"{prefix}{key}"] = value
        return merged
