"""Configuration and result (de)serialization.

Experiments live or die by config provenance: ``config_to_dict`` /
``config_from_dict`` round-trip a full :class:`SystemConfig` (including its
:class:`DirectoryPolicy`) through plain JSON-able dicts, so a run's exact
configuration can be stored next to its results and replayed bit-for-bit
(``python -m repro run ... --config-file saved.json``).

``result_to_dict`` / ``result_from_dict`` do the same for
:class:`SimulationResult` so the parallel runner can ship results across
process boundaries and persist them in the on-disk cache
(:mod:`repro.runner.cache`) without losing a single bit: every field is an
int, float, string, or flat container thereof, all of which survive a JSON
round-trip exactly.
"""

from __future__ import annotations

import dataclasses
import json

from repro.coherence.policies import DirectoryKind, DirectoryPolicy
from repro.system.apu import SimulationResult
from repro.system.config import CacheGeometry, SystemConfig

_GEOMETRY_FIELDS = {"l1d", "l1i", "l2", "tcp", "sqc", "tcc", "llc"}


def policy_to_dict(policy: DirectoryPolicy) -> dict:
    data = dataclasses.asdict(policy)
    data["kind"] = policy.kind.value
    data["readonly_regions"] = [list(r) for r in policy.readonly_regions]
    return data


def policy_from_dict(data: dict) -> DirectoryPolicy:
    fields = dict(data)
    fields["kind"] = DirectoryKind(fields.get("kind", "stateless"))
    fields["readonly_regions"] = tuple(
        tuple(region) for region in fields.get("readonly_regions", ())
    )
    known = set(DirectoryPolicy.__dataclass_fields__)
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown policy fields: {sorted(unknown)}")
    return DirectoryPolicy(**fields)


def config_to_dict(config: SystemConfig) -> dict:
    data = {}
    for field in dataclasses.fields(SystemConfig):
        value = getattr(config, field.name)
        if field.name in _GEOMETRY_FIELDS:
            data[field.name] = dataclasses.asdict(value)
        elif field.name == "policy":
            data[field.name] = policy_to_dict(value)
        else:
            data[field.name] = value
    return data


def config_from_dict(data: dict) -> SystemConfig:
    fields = dict(data)
    for name in _GEOMETRY_FIELDS & set(fields):
        fields[name] = CacheGeometry(**fields[name])
    if "policy" in fields:
        fields["policy"] = policy_from_dict(fields["policy"])
    known = set(SystemConfig.__dataclass_fields__)
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown config fields: {sorted(unknown)}")
    config = SystemConfig(**fields)
    config.validate()
    return config


def result_to_dict(result: SimulationResult) -> dict:
    """A JSON-able dict capturing every field of ``result`` exactly."""
    return dataclasses.asdict(result)


def result_from_dict(data: dict) -> SimulationResult:
    fields = dict(data)
    fields["check_errors"] = list(fields.get("check_errors", []))
    fields["stats"] = dict(fields.get("stats", {}))
    known = {f.name for f in dataclasses.fields(SimulationResult)}
    unknown = set(fields) - known
    if unknown:
        raise ValueError(f"unknown result fields: {sorted(unknown)}")
    return SimulationResult(**fields)


def save_config(config: SystemConfig, path: str) -> None:
    with open(path, "w") as handle:
        json.dump(config_to_dict(config), handle, indent=2)


def load_config(path: str) -> SystemConfig:
    with open(path) as handle:
        return config_from_dict(json.load(handle))
