"""Construct a full APU system from a :class:`SystemConfig`."""

from __future__ import annotations

from repro.coherence.banking import DirectoryMap
from repro.coherence.directory import DirectoryController
from repro.coherence.llc import LastLevelCache
from repro.coherence.precise import PreciseDirectory
from repro.cpu.core import CpuCore
from repro.cpu.corepair import CorePair
from repro.dma.engine import DmaEngine
from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.gpu_device import GpuDevice
from repro.gpu.sqc import SqcCache
from repro.gpu.tcc import TccController
from repro.gpu.tcc_group import TccGroup
from repro.mem.address import LINE_BYTES
from repro.mem.main_memory import MainMemory
from repro.sim.arbiter import class_of_kind
from repro.sim.clock import ClockDomain
from repro.sim.event_queue import Simulator
from repro.sim.network import Network
from repro.system.apu import ApuSystem
from repro.system.config import SystemConfig

#: CPU instruction lines live in a reserved high region of the address map.
CPU_CODE_BASE = 0x8000_0000


def build_system(config: SystemConfig | None = None) -> ApuSystem:
    """Build and wire every component; returns the ready-to-run system."""
    config = config or SystemConfig()
    config.validate()

    sim = Simulator()
    cpu_clock = ClockDomain("cpu", config.cpu_freq_ghz * 1e9)
    gpu_clock = ClockDomain("gpu", config.gpu_freq_ghz * 1e9)
    uncore_clock = ClockDomain("uncore", config.uncore_freq_ghz * 1e9)

    arbitrated_kinds = ("dir", "tcc") if config.arbitrate_tcc_ports else ("dir",)
    network = Network(
        sim, uncore_clock,
        default_latency_cycles=config.net_latency_cycles,
        link_bytes_per_cycle=config.link_bytes_per_cycle,
        arb_weights=config.arb_weights,
        arbitrated_kinds=arbitrated_kinds,
        input_queue_depth=config.input_queue_depth,
    )
    memory = MainMemory(
        sim, uncore_clock,
        latency_cycles=config.mem_latency_cycles,
        gap_cycles=config.mem_gap_cycles,
        num_banks=config.mem_banks,
        row_bytes=config.mem_row_bytes,
        row_hit_latency_cycles=config.mem_row_hit_latency_cycles,
        row_miss_latency_cycles=config.mem_row_miss_latency_cycles,
        arb_weights=config.arb_weights,
        queue_depth=config.mem_queue_depth,
        scheduler=config.mem_scheduler,
    )
    # Directory banks (§VII distributed directories; 1 = the paper's
    # monolithic directory).  Each bank owns an LLC slice; all banks share
    # the single ordered memory channel.
    num_banks = config.policy.dir_banks
    directory_cls = PreciseDirectory if config.policy.is_precise else DirectoryController
    llcs: list[LastLevelCache] = []
    directories = []
    for bank in range(num_banks):
        llc = LastLevelCache(
            size_bytes=max(64, config.llc.size_bytes // num_banks),
            assoc=config.llc.assoc,
            writeback=config.policy.llc_writeback,
            latency_cycles=config.llc.latency_cycles,
        )
        name = "dir" if num_banks == 1 else f"dir{bank}"
        directory = directory_cls(
            sim, name, uncore_clock, network, llc, memory, config.policy,
            latency_cycles=config.dir_latency_cycles,
            service_cycles=config.dir_service_cycles,
        )
        network.attach(directory, kind="dir")
        llcs.append(llc)
        directories.append(directory)
    dir_map = DirectoryMap([d.name for d in directories])

    # -- GPU cluster (built first so cores can hold a device reference) ----
    tcc_banks = []
    for tcc_index in range(config.num_tccs):
        bank = TccController(
            sim, f"tcc{tcc_index}", gpu_clock, network, dir_map,
            geometry=(
                max(128, config.tcc.size_bytes // config.num_tccs),
                config.tcc.assoc,
            ),
            latency_cycles=config.tcc.latency_cycles,
            writeback=config.gpu_tcc_writeback,
            service_cycles=config.tcc_service_cycles,
        )
        network.attach(bank, kind="tcc")
        tcc_banks.append(bank)
    tcc = TccGroup(tcc_banks)
    sqc = SqcCache(
        sim, "sqc0", gpu_clock, tcc,
        geometry=config.sqc.geometry,
        latency_cycles=config.sqc.latency_cycles,
    )
    cus = [
        ComputeUnit(
            sim, f"cu{i}", gpu_clock, tcc, sqc,
            tcp_geometry=config.tcp.geometry,
            tcp_latency=config.tcp.latency_cycles,
            tcp_writeback=config.gpu_tcp_writeback,
            lds_latency=config.lds_latency_cycles,
            max_wavefronts=config.max_wavefronts_per_cu,
            issue_cycles=config.cu_issue_cycles,
        )
        for i in range(config.num_cus)
    ]
    gpu = GpuDevice(
        sim, "gpu", gpu_clock, cus, tcc, sqc,
        launch_overhead_cycles=config.kernel_launch_overhead_cycles,
    )

    # -- CPU cluster --------------------------------------------------------
    corepairs: list[CorePair] = []
    cores: list[CpuCore] = []
    for pair_index in range(config.num_corepairs):
        corepair = CorePair(
            sim, f"l2.{pair_index}", cpu_clock, network, dir_map,
            l2_geometry=config.l2.geometry,
            l1d_geometry=config.l1d.geometry,
            l1i_geometry=config.l1i.geometry,
            l1_latency=config.l1d.latency_cycles,
            l2_latency=config.l2.latency_cycles,
            service_cycles=config.l2_service_cycles,
        )
        network.attach(corepair, kind="l2")
        corepairs.append(corepair)
        for slot in (0, 1):
            core_id = 2 * pair_index + slot
            code_addrs = tuple(
                CPU_CODE_BASE + (core_id * 8 + i) * LINE_BYTES for i in range(8)
            )
            cores.append(
                CpuCore(
                    sim, f"cpu{core_id}", cpu_clock, corepair, slot, gpu=gpu,
                    code_addrs=code_addrs,
                    ifetch_interval=config.cpu_ifetch_interval,
                )
            )

    dma = DmaEngine(
        sim, "dma0", uncore_clock, network, dir_map,
        max_outstanding=config.dma_max_outstanding,
    )
    network.attach(dma, kind="dma")

    # The banked memory controller classifies each access into a WRR
    # traffic class by the original requester's network endpoint kind
    # (l2 -> cpu, tcc -> gpu, dma -> dma, directory-internal -> cpu).
    memory.set_classifier(
        lambda source: class_of_kind(network._kinds.get(source, ""))
    )
    # Bounded bank queues push back on the fabric: while any bank's queue
    # has spilled, the directory input ports stop granting, so directory
    # traffic queues up and (under flow control) stalls its senders.  The
    # gate releases on memory timing alone, so it cannot deadlock.
    if config.mem_queue_depth:
        memory.set_stall_callback(
            lambda stalled: network.set_kind_gate("dir", stalled)
        )

    system = ApuSystem(
        sim=sim,
        config=config,
        network=network,
        memory=memory,
        llc=llcs[0],
        llcs=llcs,
        directory=directories[0],
        directories=directories,
        corepairs=corepairs,
        cores=cores,
        gpu=gpu,
        tcc=tcc_banks[0],
        tccs=tcc_banks,
        sqc=sqc,
        cus=cus,
        dma=dma,
        clocks={"cpu": cpu_clock, "gpu": gpu_clock, "uncore": uncore_clock},
    )
    if config.watchdog_window_cycles:
        system.arm_watchdog(config.watchdog_window_cycles)
    return system
