"""System configuration — Tables II and III of the paper as dataclasses.

``SystemConfig.ryzen_2200g()`` reproduces the paper's evaluated
configuration (4 CorePairs / 8 CPUs at 3.5 GHz, 8 CUs at 1.1 GHz, the
Table II cache geometry).  ``SystemConfig.small()`` is a scaled-down
configuration for tests and fast sweeps that preserves every structural
property (multiple CorePairs, a GPU cluster, tiny caches that actually
evict).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.coherence.policies import DirectoryPolicy


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/latency of one cache level (one Table II column)."""

    size_bytes: int
    assoc: int
    latency_cycles: float

    @property
    def geometry(self) -> tuple[int, int]:
        return (self.size_bytes, self.assoc)


KIB = 2**10
MIB = 2**20

_DEFAULT_DIR_GEOMETRY = (
    DirectoryPolicy().dir_entries,
    DirectoryPolicy().dir_assoc,
)


def _scale_directory(
    policy: DirectoryPolicy | None, entries: int, assoc: int
) -> DirectoryPolicy:
    """Shrink the directory cache of scaled presets — but only when the
    caller left the Table II default, so explicit geometry (e.g. the
    tiny-directory ablations) is respected."""
    policy = policy or DirectoryPolicy()
    if (policy.dir_entries, policy.dir_assoc) == _DEFAULT_DIR_GEOMETRY:
        policy = policy.named(dir_entries=entries, dir_assoc=assoc)
    return policy


@dataclass
class SystemConfig:
    """Full system parameterization (Tables II & III)."""

    # Table III
    num_corepairs: int = 4            # 4 CorePairs -> 8 CPUs
    num_cus: int = 8                  # 8 CUs
    num_tccs: int = 1                 # 1 TCC (Table III); >1 = address-interleaved banks
    cpu_freq_ghz: float = 3.5
    gpu_freq_ghz: float = 1.1
    uncore_freq_ghz: float = 3.5

    # Table II
    l1d: CacheGeometry = field(default_factory=lambda: CacheGeometry(64 * KIB, 2, 1.0))
    l1i: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * KIB, 2, 1.0))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(2 * MIB, 8, 1.0))
    tcp: CacheGeometry = field(default_factory=lambda: CacheGeometry(16 * KIB, 16, 4.0))
    sqc: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * KIB, 8, 1.0))
    tcc: CacheGeometry = field(default_factory=lambda: CacheGeometry(256 * KIB, 16, 8.0))
    llc: CacheGeometry = field(default_factory=lambda: CacheGeometry(16 * MIB, 16, 20.0))
    dir_latency_cycles: float = 20.0
    dir_service_cycles: float = 2.0

    # Uncore / memory
    mem_latency_cycles: float = 160.0
    mem_gap_cycles: float = 10.0
    net_latency_cycles: float = 10.0

    # Contention model (defaults = the paper's zero-contention fabric: pure
    # latency links, one flat memory channel — bit-identical to the golden
    # stats).  ``link_bytes_per_cycle > 0`` turns on finite-bandwidth link
    # serialization plus WRR input arbitration at the directory;
    # ``mem_banks > 1`` / ``mem_row_bytes > 0`` turn on the banked,
    # open-row memory controller.
    link_bytes_per_cycle: int = 0
    arb_weight_cpu: int = 4
    arb_weight_gpu: int = 2
    arb_weight_dma: int = 1
    mem_banks: int = 1
    mem_row_bytes: int = 0
    mem_row_hit_latency_cycles: float = 100.0
    mem_row_miss_latency_cycles: float = 200.0

    # Flow control (opt-in extension of the contended fabric; defaults =
    # unbounded queues, bit-identical to the pre-flow-control model).
    # ``input_queue_depth > 0`` bounds every arbitrated input port and
    # turns on credit-based back-pressure that stalls the sender's output
    # port when a downstream queue is full; ``arbitrate_tcc_ports`` extends
    # WRR input arbitration from the directory to the TCC/LLC side;
    # ``mem_queue_depth > 0`` bounds the banked memory controller's bank
    # queues (overflow gates the directory's input ports);
    # ``mem_scheduler="frfcfs"`` picks first-ready FCFS over per-bank FIFO;
    # ``watchdog_window_cycles > 0`` arms the deadlock/starvation watchdog.
    input_queue_depth: int = 0
    arbitrate_tcc_ports: bool = False
    mem_queue_depth: int = 0
    mem_scheduler: str = "fifo"
    watchdog_window_cycles: float = 0.0

    # Protocol
    policy: DirectoryPolicy = field(default_factory=DirectoryPolicy)
    gpu_tcp_writeback: bool = False   # gem5's WB_L1
    gpu_tcc_writeback: bool = False   # gem5's WB_L2

    # Execution model
    max_wavefronts_per_cu: int = 8
    cu_issue_cycles: float = 1.0
    lds_latency_cycles: float = 2.0
    kernel_launch_overhead_cycles: float = 200.0
    dma_max_outstanding: int = 4
    cpu_ifetch_interval: int = 16
    l2_service_cycles: float = 1.0
    tcc_service_cycles: float = 1.0

    @property
    def num_cpu_cores(self) -> int:
        return 2 * self.num_corepairs

    @property
    def arb_weights(self) -> dict[str, int]:
        """WRR grant weights per traffic class (shared ports and banks)."""
        return {
            "cpu": self.arb_weight_cpu,
            "gpu": self.arb_weight_gpu,
            "dma": self.arb_weight_dma,
        }

    @property
    def is_contended(self) -> bool:
        """True when any contention knob deviates from the pure-latency,
        flat-channel zero-contention model."""
        return bool(
            self.link_bytes_per_cycle or self.mem_banks > 1 or self.mem_row_bytes
        )

    def with_policy(self, policy: DirectoryPolicy) -> "SystemConfig":
        return replace(self, policy=policy)

    def validate(self) -> None:
        if self.num_corepairs < 1:
            raise ValueError("need at least one CorePair")
        if self.num_cus < 1:
            raise ValueError("need at least one CU")
        if self.num_tccs < 1:
            raise ValueError("need at least one TCC")
        if self.link_bytes_per_cycle < 0:
            raise ValueError("link_bytes_per_cycle must be >= 0 (0 = infinite)")
        for cls, weight in self.arb_weights.items():
            if weight < 1:
                raise ValueError(f"arb_weight_{cls} must be >= 1, got {weight}")
        if self.mem_banks < 1:
            raise ValueError("need at least one memory bank")
        if self.mem_row_bytes < 0:
            raise ValueError("mem_row_bytes must be >= 0 (0 = no row model)")
        if self.input_queue_depth < 0:
            raise ValueError("input_queue_depth must be >= 0 (0 = unbounded)")
        if self.input_queue_depth and not self.link_bytes_per_cycle:
            raise ValueError(
                "bounded input queues need the finite-bandwidth link model "
                "(link_bytes_per_cycle > 0)"
            )
        if self.mem_queue_depth < 0:
            raise ValueError("mem_queue_depth must be >= 0 (0 = unbounded)")
        if self.mem_queue_depth and not (self.mem_banks > 1 or self.mem_row_bytes):
            raise ValueError(
                "bounded bank queues need the banked memory controller "
                "(mem_banks > 1 or mem_row_bytes > 0)"
            )
        if self.mem_scheduler not in ("fifo", "frfcfs"):
            raise ValueError(f"unknown mem_scheduler {self.mem_scheduler!r}")
        if self.mem_scheduler == "frfcfs" and not self.mem_row_bytes:
            raise ValueError(
                "the FR-FCFS scheduler needs the open-row model "
                "(mem_row_bytes > 0)"
            )
        if self.watchdog_window_cycles < 0:
            raise ValueError("watchdog_window_cycles must be >= 0 (0 = off)")
        self.policy.validate()

    # -- presets ----------------------------------------------------------------

    @classmethod
    def ryzen_2200g(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """The paper's evaluated configuration (Tables II & III)."""
        config = cls(**overrides)
        if policy is not None:
            config = config.with_policy(policy)
        return config

    @classmethod
    def benchmark(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """The experiment configuration: the paper's core/CU counts and
        latencies (Tables II & III) with every cache scaled down by a
        constant factor so the scaled-down CHAI working sets exercise the
        same capacity/eviction behaviour the full-size system sees with the
        full-size benchmarks.  Cache *ratios* (L1:L2:TCC:LLC) follow
        Table II; see EXPERIMENTS.md for the scaling rationale."""
        base_policy = _scale_directory(policy, entries=1024, assoc=8)
        defaults = dict(
            l1d=CacheGeometry(512, 2, 1.0),
            l1i=CacheGeometry(512, 2, 1.0),
            l2=CacheGeometry(2 * KIB, 4, 1.0),
            tcp=CacheGeometry(512, 4, 4.0),
            sqc=CacheGeometry(1 * KIB, 4, 1.0),
            tcc=CacheGeometry(2 * KIB, 8, 8.0),
            llc=CacheGeometry(16 * KIB, 8, 20.0),
            policy=base_policy,
        )
        defaults.update(overrides)
        return cls(**defaults)

    #: the contended-fabric knob set layered by :meth:`contended` — one
    #: place so tests, benchmarks, and the golden-stat pin agree exactly.
    CONTENDED_KNOBS = dict(
        link_bytes_per_cycle=8,     # ~1 cycle per control msg, 9 per data line
        mem_banks=4,
        mem_row_bytes=1024,         # 16 lines per row
        mem_row_hit_latency_cycles=100.0,
        mem_row_miss_latency_cycles=200.0,
    )

    @classmethod
    def contended(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """The :meth:`benchmark` system on a *contended* fabric: finite
        link bandwidth with WRR arbitration at the directory, and a banked
        open-row memory controller.  This is the configuration behind the
        contention ablation (how the paper's §III/§IV gains shift when
        bursts actually collide) and the contended golden-stats pin."""
        defaults = dict(cls.CONTENDED_KNOBS)
        defaults.update(overrides)
        return cls.benchmark(policy=policy, **defaults)

    #: :meth:`contended` plus end-to-end flow control: bounded arbitrated
    #: input queues (directory *and* TCC) with credit back-pressure, a
    #: bounded FR-FCFS memory controller that gates the directory ports
    #: when its bank queues overflow, and an armed liveness watchdog.
    BOUNDED_KNOBS = dict(
        CONTENDED_KNOBS,
        input_queue_depth=4,
        arbitrate_tcc_ports=True,
        mem_queue_depth=8,
        mem_scheduler="frfcfs",
        watchdog_window_cycles=200_000.0,
    )

    @classmethod
    def bounded(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """The :meth:`contended` fabric with finite queues and credit-based
        back-pressure everywhere — the configuration behind the
        bounded-vs-unbounded ablation and the bounded golden-stats pin."""
        defaults = dict(cls.BOUNDED_KNOBS)
        defaults.update(overrides)
        return cls.benchmark(policy=policy, **defaults)

    @classmethod
    def small(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """A scaled-down system for tests: 2 CorePairs, 2 CUs, small caches
        that exercise evictions, and a small directory cache."""
        base_policy = _scale_directory(policy, entries=4096, assoc=8)
        defaults = dict(
            num_corepairs=2,
            num_cus=2,
            l1d=CacheGeometry(1 * KIB, 2, 1.0),
            l1i=CacheGeometry(1 * KIB, 2, 1.0),
            l2=CacheGeometry(8 * KIB, 8, 1.0),
            tcp=CacheGeometry(1 * KIB, 4, 4.0),
            sqc=CacheGeometry(1 * KIB, 4, 1.0),
            tcc=CacheGeometry(4 * KIB, 8, 8.0),
            llc=CacheGeometry(64 * KIB, 8, 20.0),
            policy=base_policy,
            max_wavefronts_per_cu=4,
        )
        defaults.update(overrides)
        return cls(**defaults)
