"""System configuration — Tables II and III of the paper as dataclasses.

``SystemConfig.ryzen_2200g()`` reproduces the paper's evaluated
configuration (4 CorePairs / 8 CPUs at 3.5 GHz, 8 CUs at 1.1 GHz, the
Table II cache geometry).  ``SystemConfig.small()`` is a scaled-down
configuration for tests and fast sweeps that preserves every structural
property (multiple CorePairs, a GPU cluster, tiny caches that actually
evict).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.coherence.policies import DirectoryPolicy


@dataclass(frozen=True)
class CacheGeometry:
    """Size/associativity/latency of one cache level (one Table II column)."""

    size_bytes: int
    assoc: int
    latency_cycles: float

    @property
    def geometry(self) -> tuple[int, int]:
        return (self.size_bytes, self.assoc)


KIB = 2**10
MIB = 2**20

_DEFAULT_DIR_GEOMETRY = (
    DirectoryPolicy().dir_entries,
    DirectoryPolicy().dir_assoc,
)


def _scale_directory(
    policy: DirectoryPolicy | None, entries: int, assoc: int
) -> DirectoryPolicy:
    """Shrink the directory cache of scaled presets — but only when the
    caller left the Table II default, so explicit geometry (e.g. the
    tiny-directory ablations) is respected."""
    policy = policy or DirectoryPolicy()
    if (policy.dir_entries, policy.dir_assoc) == _DEFAULT_DIR_GEOMETRY:
        policy = policy.named(dir_entries=entries, dir_assoc=assoc)
    return policy


@dataclass
class SystemConfig:
    """Full system parameterization (Tables II & III)."""

    # Table III
    num_corepairs: int = 4            # 4 CorePairs -> 8 CPUs
    num_cus: int = 8                  # 8 CUs
    num_tccs: int = 1                 # 1 TCC (Table III); >1 = address-interleaved banks
    cpu_freq_ghz: float = 3.5
    gpu_freq_ghz: float = 1.1
    uncore_freq_ghz: float = 3.5

    # Table II
    l1d: CacheGeometry = field(default_factory=lambda: CacheGeometry(64 * KIB, 2, 1.0))
    l1i: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * KIB, 2, 1.0))
    l2: CacheGeometry = field(default_factory=lambda: CacheGeometry(2 * MIB, 8, 1.0))
    tcp: CacheGeometry = field(default_factory=lambda: CacheGeometry(16 * KIB, 16, 4.0))
    sqc: CacheGeometry = field(default_factory=lambda: CacheGeometry(32 * KIB, 8, 1.0))
    tcc: CacheGeometry = field(default_factory=lambda: CacheGeometry(256 * KIB, 16, 8.0))
    llc: CacheGeometry = field(default_factory=lambda: CacheGeometry(16 * MIB, 16, 20.0))
    dir_latency_cycles: float = 20.0
    dir_service_cycles: float = 2.0

    # Uncore / memory
    mem_latency_cycles: float = 160.0
    mem_gap_cycles: float = 10.0
    net_latency_cycles: float = 10.0

    # Protocol
    policy: DirectoryPolicy = field(default_factory=DirectoryPolicy)
    gpu_tcp_writeback: bool = False   # gem5's WB_L1
    gpu_tcc_writeback: bool = False   # gem5's WB_L2

    # Execution model
    max_wavefronts_per_cu: int = 8
    cu_issue_cycles: float = 1.0
    lds_latency_cycles: float = 2.0
    kernel_launch_overhead_cycles: float = 200.0
    dma_max_outstanding: int = 4
    cpu_ifetch_interval: int = 16
    l2_service_cycles: float = 1.0
    tcc_service_cycles: float = 1.0

    @property
    def num_cpu_cores(self) -> int:
        return 2 * self.num_corepairs

    def with_policy(self, policy: DirectoryPolicy) -> "SystemConfig":
        return replace(self, policy=policy)

    def validate(self) -> None:
        if self.num_corepairs < 1:
            raise ValueError("need at least one CorePair")
        if self.num_cus < 1:
            raise ValueError("need at least one CU")
        if self.num_tccs < 1:
            raise ValueError("need at least one TCC")
        self.policy.validate()

    # -- presets ----------------------------------------------------------------

    @classmethod
    def ryzen_2200g(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """The paper's evaluated configuration (Tables II & III)."""
        config = cls(**overrides)
        if policy is not None:
            config = config.with_policy(policy)
        return config

    @classmethod
    def benchmark(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """The experiment configuration: the paper's core/CU counts and
        latencies (Tables II & III) with every cache scaled down by a
        constant factor so the scaled-down CHAI working sets exercise the
        same capacity/eviction behaviour the full-size system sees with the
        full-size benchmarks.  Cache *ratios* (L1:L2:TCC:LLC) follow
        Table II; see EXPERIMENTS.md for the scaling rationale."""
        base_policy = _scale_directory(policy, entries=1024, assoc=8)
        defaults = dict(
            l1d=CacheGeometry(512, 2, 1.0),
            l1i=CacheGeometry(512, 2, 1.0),
            l2=CacheGeometry(2 * KIB, 4, 1.0),
            tcp=CacheGeometry(512, 4, 4.0),
            sqc=CacheGeometry(1 * KIB, 4, 1.0),
            tcc=CacheGeometry(2 * KIB, 8, 8.0),
            llc=CacheGeometry(16 * KIB, 8, 20.0),
            policy=base_policy,
        )
        defaults.update(overrides)
        return cls(**defaults)

    @classmethod
    def small(cls, policy: DirectoryPolicy | None = None, **overrides) -> "SystemConfig":
        """A scaled-down system for tests: 2 CorePairs, 2 CUs, small caches
        that exercise evictions, and a small directory cache."""
        base_policy = _scale_directory(policy, entries=4096, assoc=8)
        defaults = dict(
            num_corepairs=2,
            num_cus=2,
            l1d=CacheGeometry(1 * KIB, 2, 1.0),
            l1i=CacheGeometry(1 * KIB, 2, 1.0),
            l2=CacheGeometry(8 * KIB, 8, 1.0),
            tcp=CacheGeometry(1 * KIB, 4, 4.0),
            sqc=CacheGeometry(1 * KIB, 4, 1.0),
            tcc=CacheGeometry(4 * KIB, 8, 8.0),
            llc=CacheGeometry(64 * KIB, 8, 20.0),
            policy=base_policy,
            max_wavefronts_per_cu=4,
        )
        defaults.update(overrides)
        return cls(**defaults)
