"""System assembly: configuration, builder, and the top-level APU object."""

from repro.system.apu import ApuSystem, SimulationResult
from repro.system.builder import build_system
from repro.system.config import CacheGeometry, SystemConfig

__all__ = [
    "ApuSystem",
    "CacheGeometry",
    "SimulationResult",
    "SystemConfig",
    "build_system",
]
