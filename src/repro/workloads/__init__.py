"""Workload framework and the CHAI-like collaborative benchmark suite.

Workloads are *programs*, not static traces: CPU threads and GPU wavefronts
are Python generators that yield :mod:`repro.workloads.trace` ops and
receive each op's result (loaded values, atomic old-values) back — enough
expressive power for CHAI's work queues, flag synchronization, and
data-dependent control flow, while staying fully deterministic.
"""

from repro.workloads.base import (
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
)
from repro.workloads.registry import available_workloads, get_workload
from repro.workloads.trace import (
    AcquireFence,
    AtomicRMW,
    Barrier,
    HostBarrier,
    LaunchKernel,
    LdsAccess,
    Load,
    ReleaseFence,
    SpinUntil,
    Store,
    Think,
    VLoad,
    VStore,
    WaitKernel,
    WgBarrier,
)

__all__ = [
    "AcquireFence",
    "AtomicRMW",
    "Barrier",
    "HostBarrier",
    "KernelSpec",
    "LaunchKernel",
    "LdsAccess",
    "Load",
    "ReleaseFence",
    "SpinUntil",
    "Store",
    "Think",
    "VLoad",
    "VStore",
    "WaitKernel",
    "WgBarrier",
    "Workload",
    "WorkloadBuild",
    "WorkloadContext",
    "available_workloads",
    "get_workload",
]
