"""Lulesh-like hydrodynamics proxy.

The paper evaluated Lulesh [15] alongside HeteroSync and found the same
limited benefit: a bulk-synchronous scientific kernel exchanges only thin
halos between per-device domains, so the system-level directory sees
little sharing relative to compute.

Structure reproduced: an iterative 1-D stencil over a mesh split into a
CPU half and a GPU half.  Each iteration every worker updates its interior
from its own previous values, then the two *halo* cells at the CPU/GPU
boundary are exchanged through flag-guarded handoffs — the only
cross-device coherence traffic per iteration.
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import gpu_spin_flag, partition


def step(left: int, center: int, right: int) -> int:
    """The 'hydro' stencil — a deterministic integer surrogate."""
    return (left + 2 * center + right) // 4 + 1


class LuleshProxy(Workload):
    name = "lulesh"
    description = "bulk-synchronous stencil, CPU/GPU halves, halo exchange only"
    collaboration = "coarse bulk-synchronous; thin per-iteration halo sharing"

    def __init__(self, mesh_cells: int = 128, iterations: int = 4) -> None:
        self.mesh_cells = mesh_cells
        self.iterations = iterations

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        cells = max(32, self.mesh_cells - self.mesh_cells % 2)
        half = cells // 2
        iterations = self.iterations
        space = AddressSpace()
        # double-buffered mesh: iteration parity picks source/destination
        mesh = [space.array(cells), space.array(cells)]
        # halo mailboxes + per-iteration flags, one per direction
        cpu_halo = space.lines(1)   # CPU boundary value -> GPU
        gpu_halo = space.lines(1)   # GPU boundary value -> CPU
        cpu_flag = space.lines(1)
        gpu_flag = space.lines(1)
        code = code_region(space)

        initial: dict[int, LineData] = {}
        values = [(i * 7) % 100 + 1 for i in range(cells)]
        for index, addr in enumerate(mesh[0]):
            line = line_addr(addr)
            data = initial.get(line, LineData())
            initial[line] = data.with_word((addr % 64) // 4, values[index])

        # reference computation (the expected final mesh)
        state = list(values)
        for _ in range(iterations):
            nxt = list(state)
            for index in range(cells):
                left = state[index - 1] if index > 0 else state[0]
                right = state[index + 1] if index < cells - 1 else state[-1]
                nxt[index] = step(left, state[index], right)
            state = nxt

        cpu_spans = partition(half, ctx.num_cpu_cores)
        # bulk-synchronous step barrier across the CPU threads (the GPU is
        # ordered by the halo flag exchange alone)
        cpu_barrier = ops.HostBarrier(len(cpu_spans))

        def cpu_worker(lo: int, hi: int, owns_boundary: bool):
            def program():
                for iteration in range(iterations):
                    yield ops.Barrier(cpu_barrier)
                    src, dst = mesh[iteration % 2], mesh[(iteration + 1) % 2]
                    if owns_boundary:
                        # publish our boundary cell, wait for the GPU's
                        boundary = yield ops.Load(src[half - 1])
                        yield ops.Store(cpu_halo, boundary)
                        yield ops.Store(cpu_flag, iteration + 1)
                        yield ops.SpinUntil(
                            gpu_flag, lambda v, want=iteration + 1: v >= want
                        )
                    for index in range(lo, hi):
                        left = yield ops.Load(src[index - 1] if index > 0 else src[0])
                        center = yield ops.Load(src[index])
                        if index == half - 1:
                            right = yield ops.Load(gpu_halo)
                        else:
                            right = yield ops.Load(src[index + 1])
                        # hydro kernels are compute-dominated: the FLOP
                        # cost per cell dwarfs the memory traffic
                        yield ops.Think(40)
                        yield ops.Store(dst[index], step(left, center, right))

            return program

        def gpu_wave():
            for iteration in range(iterations):
                src, dst = mesh[iteration % 2], mesh[(iteration + 1) % 2]
                boundary = yield ops.Load(src[half])
                yield ops.ReleaseFence()
                yield ops.AtomicRMW(gpu_halo, AtomicOp.EXCH, boundary, scope="slc")
                yield ops.AtomicRMW(gpu_flag, AtomicOp.EXCH, iteration + 1, scope="slc")
                yield from gpu_spin_flag(cpu_flag, want=iteration + 1)
                yield ops.AcquireFence()
                for start in range(half, cells, 16):
                    indices = list(range(start, min(start + 16, cells)))
                    lefts = yield ops.VLoad(
                        [src[i - 1] if i > half else cpu_halo for i in indices]
                    )
                    centers = yield ops.VLoad([src[i] for i in indices])
                    rights = yield ops.VLoad(
                        [src[i + 1] if i < cells - 1 else src[cells - 1]
                         for i in indices]
                    )
                    if not isinstance(lefts, tuple):
                        lefts, centers, rights = (lefts,), (centers,), (rights,)
                    yield ops.Think(120)
                    yield ops.VStore(
                        [dst[i] for i in indices],
                        [step(l, c, r) for l, c, r in zip(lefts, centers, rights)],
                    )
                yield ops.ReleaseFence()

        kernel = KernelSpec("lulesh_gpu", [[lambda: gpu_wave()]], code_addrs=code)

        def host():
            # the host runs the boundary span (it owns cell half-1, whose
            # stencil needs the GPU halo) — boundary publish/wait and the
            # computation must live on the same thread
            handle = yield ops.LaunchKernel(kernel)
            yield from cpu_worker(*cpu_spans[-1], owns_boundary=True)()
            yield ops.WaitKernel(handle)

        programs = [host]
        programs += [
            cpu_worker(lo, hi, owns_boundary=False) for lo, hi in cpu_spans[:-1]
        ]

        final_buffer = mesh[iterations % 2]
        expected = {final_buffer[i]: state[i] for i in range(cells)}
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "lulesh mesh")],
        )
