"""trns — In-Place Transposition (CHAI).

Collaboration pattern: **dynamic claiming of permutation cycles over a
shared in-place array**.  An M×N row-major matrix is transposed in place by
following the cycles of the transposition permutation; CPU threads and GPU
wavefronts claim cycle start points from a shared atomic counter and walk
"their" cycle, loading each element and storing it at its transposed
position.  Cycles are disjoint, but they interleave arbitrarily over the
matrix lines, so both devices keep writing into lines the other has just
touched — scattered RW sharing.
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import token


def transposition_cycles(rows: int, cols: int) -> list[list[int]]:
    """Cycles of the in-place transposition permutation for an MxN matrix.

    Element at flat index ``i`` of the row-major MxN matrix moves to flat
    index ``(i * rows) mod (rows*cols - 1)`` (with the last element fixed).
    """
    size = rows * cols
    seen = [False] * size
    cycles = []
    for start in range(size):
        if seen[start]:
            continue
        cycle = []
        i = start
        while not seen[i]:
            seen[i] = True
            cycle.append(i)
            if i == size - 1 or i == 0:
                break
            i = (i * rows) % (size - 1)
        if len(cycle) > 1:
            cycles.append(cycle)
    return cycles


class InPlaceTransposition(Workload):
    name = "trns"
    description = "in-place matrix transposition via atomically-claimed permutation cycles"
    collaboration = "dynamic cycle claiming, scattered in-place RW sharing"

    ROWS = 8

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        rows = self.ROWS
        cols = ctx.scaled(48, minimum=8)
        size = rows * cols
        cycles = transposition_cycles(rows, cols)

        space = AddressSpace()
        cycle_counter = space.lines(1)
        matrix = space.array(size)
        code = code_region(space)

        initial: dict[int, LineData] = {}
        for i, addr in enumerate(matrix):
            line = line_addr(addr)
            data = initial.get(line, LineData())
            initial[line] = data.with_word((addr % 64) // 4, token(0, i))

        def walk_cycle_cpu(cycle: list[int]):
            """Walk one cycle: value at cycle[k] moves to cycle[k+1]."""
            def steps():
                carried = yield ops.Load(matrix[cycle[0]])
                for position in cycle[1:]:
                    displaced = yield ops.Load(matrix[position])
                    yield ops.Store(matrix[position], carried)
                    carried = displaced
                yield ops.Store(matrix[cycle[0]], carried)

            return steps

        def cpu_worker():
            def program():
                while True:
                    index = yield ops.AtomicRMW(cycle_counter, AtomicOp.ADD, 1)
                    if index >= len(cycles):
                        return
                    yield ops.Think(10)
                    yield from walk_cycle_cpu(cycles[index])()

            return program

        def gpu_worker():
            def program():
                while True:
                    index = yield ops.AtomicRMW(
                        cycle_counter, AtomicOp.ADD, 1, scope="slc"
                    )
                    if index >= len(cycles):
                        yield ops.ReleaseFence()
                        return
                    cycle = cycles[index]
                    yield ops.AcquireFence()
                    carried = yield ops.Load(matrix[cycle[0]])
                    for position in cycle[1:]:
                        displaced = yield ops.Load(matrix[position])
                        yield ops.Store(matrix[position], carried)
                        carried = displaced
                    yield ops.Store(matrix[cycle[0]], carried)
                    yield ops.ReleaseFence()

            return program

        gpu_waves = max(2, ctx.num_cus)
        kernel = KernelSpec(
            "trns_gpu", [[gpu_worker()] for _ in range(gpu_waves)], code_addrs=code
        )

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from cpu_worker()()
            yield ops.WaitKernel(handle)

        programs = [host] + [cpu_worker() for _ in range(ctx.num_cpu_cores - 1)]

        # expected: value from flat index i ends at (i*rows) mod (size-1)
        expected = {}
        for i in range(size):
            if i in (0, size - 1):
                destination = i
            else:
                destination = (i * rows) % (size - 1)
            expected[matrix[destination]] = token(0, i)
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "trns matrix")],
        )
