"""sc — Stream Compaction (CHAI).

Collaboration pattern: **dynamic chunk claiming with atomic output
reservation**.  CPU threads and GPU wavefronts claim input chunks from a
shared atomic counter, count their chunk's non-zero elements, reserve a
span of the output array with a second atomic add, and copy the kept
values there.  Both counters are contended across devices; output lines
migrate between writers.
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    code_region,
)
from repro.workloads.chai.common import token

CHUNK = 16  # words per claimed chunk (one line)


class StreamCompaction(Workload):
    name = "sc"
    description = "cross-device chunk claiming + atomic output reservation"
    collaboration = "dynamic task claiming, contended atomics, migrating output lines"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        input_words = ctx.scaled(512, minimum=64)
        input_words -= input_words % CHUNK
        num_chunks = input_words // CHUNK
        rng = ctx.rng()

        space = AddressSpace()
        chunk_counter = space.lines(1)
        out_cursor = space.lines(1)
        inputs = space.array(input_words)
        outputs = space.array(input_words)
        code = code_region(space)

        values = [
            token(0, i) if rng.random() < 0.5 else 0 for i in range(input_words)
        ]
        initial: dict[int, LineData] = {}
        for i, addr in enumerate(inputs):
            if values[i]:
                line = line_addr(addr)
                data = initial.get(line, LineData())
                initial[line] = data.with_word((addr % 64) // 4, values[i])

        kept = sorted(v for v in values if v)

        def cpu_worker():
            def program():
                while True:
                    chunk = yield ops.AtomicRMW(chunk_counter, AtomicOp.ADD, 1)
                    if chunk >= num_chunks:
                        return
                    found = []
                    for i in range(chunk * CHUNK, (chunk + 1) * CHUNK):
                        value = yield ops.Load(inputs[i])
                        if value:
                            found.append(value)
                    if not found:
                        continue
                    base = yield ops.AtomicRMW(out_cursor, AtomicOp.ADD, len(found))
                    for offset, value in enumerate(found):
                        yield ops.Store(outputs[base + offset], value)

            return program

        def gpu_worker():
            def program():
                while True:
                    chunk = yield ops.AtomicRMW(
                        chunk_counter, AtomicOp.ADD, 1, scope="slc"
                    )
                    if chunk >= num_chunks:
                        yield ops.ReleaseFence()
                        return
                    yield ops.AcquireFence()
                    batch = yield ops.VLoad(
                        [inputs[i] for i in range(chunk * CHUNK, (chunk + 1) * CHUNK)]
                    )
                    if not isinstance(batch, tuple):
                        batch = (batch,)
                    found = [v for v in batch if v]
                    if not found:
                        continue
                    base = yield ops.AtomicRMW(
                        out_cursor, AtomicOp.ADD, len(found), scope="slc"
                    )
                    yield ops.VStore(
                        [outputs[base + k] for k in range(len(found))], found
                    )
                    yield ops.ReleaseFence()

            return program

        gpu_waves = max(2, ctx.num_cus)
        kernel = KernelSpec(
            "sc_gpu", [[gpu_worker()] for _ in range(gpu_waves)], code_addrs=code
        )

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from cpu_worker()()
            yield ops.WaitKernel(handle)

        programs = [host] + [cpu_worker() for _ in range(ctx.num_cpu_cores - 1)]

        def check_compaction(system) -> list[str]:
            errors = []
            total = system.coherent_word(out_cursor)
            if total != len(kept):
                errors.append(f"sc: out_cursor={total}, expected {len(kept)}")
                return errors
            got = sorted(system.coherent_word(outputs[i]) for i in range(total))
            if got != kept:
                errors.append(
                    f"sc: compacted multiset mismatch "
                    f"({len(got)} values, first diff at "
                    f"{next((i for i, (a, b) in enumerate(zip(got, kept)) if a != b), '?')})"
                )
            return errors

        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[check_compaction],
        )
