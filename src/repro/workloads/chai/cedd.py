"""cedd — Canny Edge Detection (CHAI).

Collaboration pattern: **frame pipeline across devices**.  Each frame flows
through four stages — Gaussian (CPU) → Sobel (GPU) → non-max suppression
(GPU) → hysteresis (CPU) — with a per-frame/per-stage flag publishing each
buffer to the next stage.  Buffers written dirty by one device are consumed
by the other shortly after, so dirty-data forwarding and probe traffic
dominate — the kind of benchmark where early-dirty-response and owner
tracking pay off.
"""

from __future__ import annotations

from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import gpu_spin_flag, partition, token


def gauss(v: int) -> int:
    return v * 2 + 1


def sobel(v: int) -> int:
    return v + 7


def suppress(v: int) -> int:
    return v * 3


def hysteresis(v: int) -> int:
    return v + 11


class CannyEdgeDetection(Workload):
    name = "cedd"
    description = "4-stage CPU/GPU frame pipeline with per-stage flag handoffs"
    collaboration = "pipeline parallelism, producer-consumer flags, dirty forwarding"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        frames = ctx.scaled(4, minimum=2)
        frame_words = ctx.scaled(96, minimum=32)
        space = AddressSpace()
        # stage buffers: stage s of frame f
        buffers = [[space.array(frame_words) for _s in range(4)] for _f in range(frames)]
        # flags[f][s] set when stage s of frame f is published
        flags = [[space.lines(1) for _s in range(4)] for _f in range(frames)]
        source = [space.array(frame_words) for _f in range(frames)]
        code = code_region(space)

        from repro.mem.address import line_addr
        from repro.mem.block import LineData

        initial: dict[int, LineData] = {}
        for f in range(frames):
            for i, addr in enumerate(source[f]):
                line = line_addr(addr)
                data = initial.get(line, LineData())
                initial[line] = data.with_word((addr % 64) // 4, token(f, i))

        def stage1_cpu(f: int, lo: int, hi: int):
            """Gaussian: source -> buffer0 (CPU threads split each frame)."""
            def program():
                for i in range(lo, hi):
                    value = yield ops.Load(source[f][i])
                    yield ops.Think(4)
                    yield ops.Store(buffers[f][0][i], gauss(value))
                yield ops.AtomicRMW(flags[f][0], AtomicOp.ADD, 1)

            return program

        def gpu_stage(f: int, in_buf, out_buf, in_flag, in_need, out_flag, fn):
            def program():
                yield from gpu_spin_flag(in_flag, want=in_need)
                yield ops.AcquireFence()
                for start in range(0, frame_words, 16):
                    idx = list(range(start, min(start + 16, frame_words)))
                    values = yield ops.VLoad([in_buf[i] for i in idx])
                    if not isinstance(values, tuple):
                        values = (values,)
                    yield ops.Think(12)
                    yield ops.VStore([out_buf[i] for i in idx], [fn(v) for v in values])
                yield ops.ReleaseFence()
                yield ops.AtomicRMW(out_flag, AtomicOp.EXCH, 1, scope="slc")

            return program

        def stage4_cpu(f: int, lo: int, hi: int):
            """Hysteresis: buffer2 -> buffer3 (CPU), after GPU stage 3."""
            def program():
                yield ops.SpinUntil(flags[f][2], lambda v: v >= 1)
                for i in range(lo, hi):
                    value = yield ops.Load(buffers[f][2][i])
                    yield ops.Think(4)
                    yield ops.Store(buffers[f][3][i], hysteresis(value))
                yield ops.AtomicRMW(flags[f][3], AtomicOp.ADD, 1)

            return program

        threads = ctx.num_cpu_cores
        spans = partition(frame_words, threads)

        # GPU kernel: for each frame, one workgroup runs sobel then suppress.
        def gpu_frame_wave(f: int):
            def program():
                yield from gpu_stage(
                    f, buffers[f][0], buffers[f][1],
                    flags[f][0], threads, flags[f][1], sobel,
                )()
                yield from gpu_stage(
                    f, buffers[f][1], buffers[f][2],
                    flags[f][1], 1, flags[f][2], suppress,
                )()

            return program

        kernel = KernelSpec(
            "cedd_gpu",
            [[gpu_frame_wave(f)] for f in range(frames)],
            code_addrs=code,
        )

        def cpu_thread(thread_id: int, lo: int, hi: int, with_host: bool):
            def program():
                handle = None
                if with_host:
                    handle = yield ops.LaunchKernel(kernel)
                for f in range(frames):
                    yield from stage1_cpu(f, lo, hi)()
                for f in range(frames):
                    yield from stage4_cpu(f, lo, hi)()
                if with_host:
                    yield ops.WaitKernel(handle)

            return program

        programs = [
            cpu_thread(t, lo, hi, with_host=(t == 0))
            for t, (lo, hi) in enumerate(spans)
        ]

        expected = {}
        for f in range(frames):
            for i in range(frame_words):
                value = hysteresis(suppress(sobel(gauss(token(f, i)))))
                expected[buffers[f][3][i]] = value
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "cedd final frames")],
        )
