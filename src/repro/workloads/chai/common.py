"""Shared building blocks for the CHAI-like workloads.

The CHAI suite's collaboration idioms, distilled:

- **coarse data partitioning**: CPU threads and GPU workgroups own disjoint
  index ranges of a shared array (bs, hsto, rscd);
- **chunk claiming**: workers dynamically grab chunks from a shared atomic
  counter (sc, trns, hsti);
- **work queues**: producers enqueue task descriptors, consumers dequeue
  with atomic head/tail indices and flag-guarded payloads (tq, rsct, cedd);
- **fine-grained flags**: per-chunk ready flags connect pipeline stages
  across devices (cedd, pad).

All helpers keep the *memory behaviour* of the idiom: which words are
shared, who writes them, and which atomics order the handoffs.
"""

from __future__ import annotations

from typing import Generator, Iterable

from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops


def partition(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into ``parts`` contiguous [lo, hi) spans."""
    if parts < 1:
        raise ValueError("parts must be >= 1")
    base, extra = divmod(total, parts)
    spans = []
    lo = 0
    for index in range(parts):
        hi = lo + base + (1 if index < extra else 0)
        spans.append((lo, hi))
        lo = hi
    return spans


def chunks(lo: int, hi: int, size: int) -> Iterable[tuple[int, int]]:
    for start in range(lo, hi, size):
        yield start, min(start + size, hi)


# -- CPU-side idioms -------------------------------------------------------------


def cpu_claim_chunk(counter_addr: int) -> ops.AtomicRMW:
    """Grab the next chunk index from a shared counter."""
    return ops.AtomicRMW(counter_addr, AtomicOp.ADD, 1)


def cpu_set_flag(addr: int, value: int = 1) -> ops.Store:
    return ops.Store(addr, value)


def cpu_wait_flag(addr: int, value: int = 1, backoff: int = 200) -> ops.SpinUntil:
    return ops.SpinUntil(addr, lambda v, want=value: v >= want, backoff_cycles=backoff)


def cpu_process_span(
    addrs: list[int], out_addrs: list[int] | None, transform, think: int = 4
) -> Generator:
    """Load every word of a span, optionally store transformed values."""
    for index, addr in enumerate(addrs):
        value = yield ops.Load(addr)
        if think:
            yield ops.Think(think)
        if out_addrs is not None:
            yield ops.Store(out_addrs[index], transform(value))


# -- GPU-side idioms ----------------------------------------------------------------


def gpu_claim_chunk(counter_addr: int) -> ops.AtomicRMW:
    return ops.AtomicRMW(counter_addr, AtomicOp.ADD, 1, scope="slc")


def gpu_set_flag(addr: int, value: int = 1) -> ops.AtomicRMW:
    """GPU flag set with system visibility (an SLC exchange)."""
    return ops.AtomicRMW(addr, AtomicOp.EXCH, value, scope="slc")


def gpu_spin_flag(addr: int, want: int = 1, max_spins: int = 100_000) -> Generator:
    """GPU-side flag wait through SLC atomic reads (they bypass stale caches)."""
    for _ in range(max_spins):
        value = yield ops.AtomicRMW(addr, AtomicOp.ADD, 0, scope="slc")
        if value >= want:
            return
        yield ops.Think(200)
    raise RuntimeError(f"GPU spun out waiting on flag {addr:#x}")


def gpu_process_span(
    addrs: list[int], out_addrs: list[int] | None, transform,
    vector: int = 16, think: int = 8,
) -> Generator:
    """Coalesced load/transform/store over a span, ``vector`` words at a time."""
    for start in range(0, len(addrs), vector):
        batch = addrs[start:start + vector]
        values = yield ops.VLoad(batch)
        if not isinstance(values, tuple):
            values = (values,)
        if think:
            yield ops.Think(think)
        if out_addrs is not None:
            outs = out_addrs[start:start + vector]
            yield ops.VStore(outs, [transform(v) for v in values])


# -- deterministic pseudo-data ---------------------------------------------------------


def token(agent: int, index: int) -> int:
    """A tagged, collision-free data token (identifies writer and element)."""
    return (agent + 1) * 1_000_000 + index + 1
