"""pad — Padding (CHAI).

Collaboration pattern: **in-place data reorganization with a fine-grained
cross-device flag chain**.  A dense row-major matrix is expanded in place
so every row gains padding words.  Rows must move from the last to the
first (a row's destination overlaps the following rows' old storage), so
each worker waits for the flag of the row after its own before moving its
row — and rows alternate between CPU threads and GPU wavefronts, making
the chain ping-pong dirty lines between the devices.
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import gpu_spin_flag, token


class Padding(Workload):
    name = "pad"
    description = "in-place row padding with a backwards cross-device flag chain"
    collaboration = "fine-grained flags, in-place shared array, CPU/GPU interleave"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        rows = ctx.scaled(24, minimum=6)
        row_words = 16          # one line per unpadded row
        pad_words = 16          # one line of padding per row
        space = AddressSpace()
        # final layout: rows * (row_words + pad_words); initial data occupies
        # the first rows*row_words words of the same array.
        matrix = space.array(rows * (row_words + pad_words))
        flags = [space.lines(1) for _ in range(rows + 1)]
        code = code_region(space)

        def old_addr(row: int, col: int) -> int:
            return matrix[row * row_words + col]

        def new_addr(row: int, col: int) -> int:
            return matrix[row * (row_words + pad_words) + col]

        initial: dict[int, LineData] = {}
        for row in range(rows):
            for col in range(row_words):
                addr = old_addr(row, col)
                line = line_addr(addr)
                data = initial.get(line, LineData())
                initial[line] = data.with_word((addr % 64) // 4, token(row, col))

        def cpu_move_row(row: int):
            def program():
                yield ops.SpinUntil(flags[row + 1], lambda v: v >= 1)
                values = []
                for col in range(row_words):
                    values.append((yield ops.Load(old_addr(row, col))))
                for col, value in enumerate(values):
                    yield ops.Store(new_addr(row, col), value)
                for col in range(pad_words):
                    yield ops.Store(new_addr(row, row_words + col), 0)
                yield ops.Store(flags[row], 1)

            return program

        def gpu_move_row(row: int):
            def program():
                yield from gpu_spin_flag(flags[row + 1])
                yield ops.AcquireFence()
                values = yield ops.VLoad([old_addr(row, c) for c in range(row_words)])
                if not isinstance(values, tuple):
                    values = (values,)
                yield ops.VStore(
                    [new_addr(row, c) for c in range(row_words)], list(values)
                )
                yield ops.VStore(
                    [new_addr(row, row_words + c) for c in range(pad_words)], 0
                )
                yield ops.ReleaseFence()
                yield ops.AtomicRMW(flags[row], AtomicOp.EXCH, 1, scope="slc")

            return program

        gpu_rows = [row for row in range(rows) if row % 2 == 0]
        cpu_rows = [row for row in range(rows) if row % 2 == 1]

        # Workgroups are dispatched in list order; the chain resolves from
        # the last row downwards, so dispatch the highest rows first —
        # otherwise low-row wavefronts could occupy every CU slot while
        # spinning on rows whose wavefronts are still queued (deadlock).
        kernel = KernelSpec(
            "pad_gpu",
            [[gpu_move_row(row)] for row in sorted(gpu_rows, reverse=True)],
            code_addrs=code,
        )

        # CPU rows are distributed round-robin over the worker threads; each
        # thread handles its rows from the highest down (chain order).
        threads = ctx.num_cpu_cores
        per_thread: list[list[int]] = [[] for _ in range(threads)]
        for position, row in enumerate(sorted(cpu_rows, reverse=True)):
            per_thread[position % threads].append(row)

        def cpu_thread(thread_id: int, with_host: bool):
            def program():
                handle = None
                if with_host:
                    handle = yield ops.LaunchKernel(kernel)
                    # the chain starts at the sentinel flag after the last row
                    yield ops.Store(flags[rows], 1)
                for row in per_thread[thread_id]:
                    yield from cpu_move_row(row)()
                if with_host:
                    yield ops.WaitKernel(handle)

            return program

        programs = [cpu_thread(t, with_host=(t == 0)) for t in range(threads)]

        expected = {}
        for row in range(rows):
            for col in range(row_words):
                expected[new_addr(row, col)] = token(row, col)
            for col in range(pad_words):
                expected[new_addr(row, row_words + col)] = 0
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "pad layout")],
        )
