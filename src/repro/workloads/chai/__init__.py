"""The CHAI-like collaborative benchmark suite.

Ten workloads mirroring the sharing and synchronization structure of the
CHAI benchmarks the paper evaluates (§V): Bezier Surface (bs), Canny Edge
Detection (cedd), Padding (pad), Stream Compaction (sc), Task Queue (tq),
Histogram input/output partitioned (hsti/hsto), In-place Transposition
(trns), and Random Sample Consensus data/task parallel (rscd/rsct).

Each module documents which CHAI collaboration pattern it reproduces.  The
paper could not verify rscd/rsct outputs even in its baseline; ours do
verify (see EXPERIMENTS.md).
"""

from repro.workloads.chai.bs import BezierSurface
from repro.workloads.chai.cedd import CannyEdgeDetection
from repro.workloads.chai.hsti import HistogramInputPartitioned
from repro.workloads.chai.hsto import HistogramOutputPartitioned
from repro.workloads.chai.pad import Padding
from repro.workloads.chai.rscd import RansacDataParallel
from repro.workloads.chai.rsct import RansacTaskParallel
from repro.workloads.chai.sc import StreamCompaction
from repro.workloads.chai.tq import TaskQueue
from repro.workloads.chai.trns import InPlaceTransposition

#: the paper's benchmark order (Figure 4/5 x-axis)
ALL_WORKLOADS = [
    BezierSurface(),
    CannyEdgeDetection(),
    Padding(),
    StreamCompaction(),
    TaskQueue(),
    HistogramInputPartitioned(),
    HistogramOutputPartitioned(),
    InPlaceTransposition(),
    RansacDataParallel(),
    RansacTaskParallel(),
]

__all__ = [
    "ALL_WORKLOADS",
    "BezierSurface",
    "CannyEdgeDetection",
    "HistogramInputPartitioned",
    "HistogramOutputPartitioned",
    "InPlaceTransposition",
    "Padding",
    "RansacDataParallel",
    "RansacTaskParallel",
    "StreamCompaction",
    "TaskQueue",
]
