"""rsct — Random Sample Consensus, task-parallel (CHAI).

Collaboration pattern: **producer/consumer model pipeline**.  CPU threads
*generate* candidate models into a shared queue (atomic tail + per-slot
ready flag); persistent GPU wavefronts dequeue models (atomic head),
evaluate each over the whole point set, write its consensus count, and
update a packed atomic maximum.  Unlike rscd, every model handoff crosses
the CPU→GPU boundary — fine-grained task parallelism like tq, plus heavy
read streaming on the GPU side.
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import gpu_spin_flag, partition
from repro.workloads.chai.rscd import is_inlier


class RansacTaskParallel(Workload):
    name = "rsct"
    description = "task-parallel RANSAC: CPU model generation, GPU evaluation via a queue"
    collaboration = "fine-grained task parallelism, queue handoffs, atomic max"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        num_points = ctx.scaled(128, minimum=32)
        num_models = ctx.scaled(24, minimum=4)
        rng = ctx.rng()

        space = AddressSpace()
        tail = space.lines(1)
        head = space.lines(1)
        model_slots = space.words(num_models)   # one line per slot: no false sharing
        flags = space.words(num_models)
        consensus = space.array(num_models)
        best = space.lines(1)
        points = space.array(num_points)
        code = code_region(space)

        point_values = [rng.randrange(1, 1 << 16) for _ in range(num_points)]
        initial: dict[int, LineData] = {}
        for i, addr in enumerate(points):
            line = line_addr(addr)
            data = initial.get(line, LineData())
            initial[line] = data.with_word((addr % 64) // 4, point_values[i])

        def model_value(index: int) -> int:
            # deterministic "random" model parameters derived from the slot
            return (index * 2654435761) % (1 << 16) + 1

        def producer(lo: int, hi: int):
            def program():
                for _ in range(lo, hi):
                    slot = yield ops.AtomicRMW(tail, AtomicOp.ADD, 1)
                    yield ops.Think(30)  # model generation cost
                    yield ops.Store(model_slots[slot], model_value(slot))
                    yield ops.Store(flags[slot], 1)

            return program

        def consumer_wave():
            def program():
                while True:
                    index = yield ops.AtomicRMW(head, AtomicOp.ADD, 1, scope="slc")
                    if index >= num_models:
                        return
                    yield from gpu_spin_flag(flags[index])
                    yield ops.AcquireFence()
                    model = yield ops.Load(model_slots[index])
                    count = 0
                    for start in range(0, num_points, 16):
                        idx = list(range(start, min(start + 16, num_points)))
                        values = yield ops.VLoad([points[i] for i in idx])
                        if not isinstance(values, tuple):
                            values = (values,)
                        count += sum(1 for v in values if is_inlier(v, model))
                    yield ops.Store(consensus[index], count)
                    yield ops.ReleaseFence()
                    yield ops.AtomicRMW(
                        best, AtomicOp.MAX, (count << 8) | index, scope="slc"
                    )

            return program

        consumers = max(2, ctx.num_cus)
        kernel = KernelSpec(
            "rsct_gpu", [[consumer_wave()] for _ in range(consumers)], code_addrs=code
        )
        producer_spans = partition(num_models, ctx.num_cpu_cores)

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from producer(*producer_spans[0])()
            yield ops.WaitKernel(handle)

        programs = [host] + [producer(lo, hi) for lo, hi in producer_spans[1:]]

        expected_counts = [
            sum(1 for p in point_values if is_inlier(p, model_value(m)))
            for m in range(num_models)
        ]
        best_packed = max(
            (count << 8) | m for m, count in enumerate(expected_counts)
        )
        expected = {consensus[m]: expected_counts[m] for m in range(num_models)}
        expected[best] = best_packed
        expected[tail] = num_models
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "rsct consensus")],
        )
