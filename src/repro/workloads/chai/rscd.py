"""rscd — Random Sample Consensus, data-parallel (CHAI).

Collaboration pattern: **partitioned evaluation with shared atomic
consensus**.  Every candidate model is evaluated by all agents, each over
its own partition of the point set; per-model inlier counts accumulate in
shared atomic words, and a packed (count, model) maximum is maintained with
atomic MAX.  Mostly data-parallel with low write sharing — the paper notes
rscd shows limited improvement (and that its CHAI original failed output
verification even in the baseline; this reproduction verifies).
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import partition

THRESHOLD = 8
CPU_SHARE = 0.5


def is_inlier(point: int, model: int) -> bool:
    return abs((point % 64) - (model % 64)) < THRESHOLD


class RansacDataParallel(Workload):
    name = "rscd"
    description = "data-parallel RANSAC: partitioned points, atomic consensus counts"
    collaboration = "coarse data partitioning, atomic accumulators, atomic max"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        num_points = ctx.scaled(192, minimum=32)
        num_models = ctx.scaled(8, minimum=2)
        rng = ctx.rng()

        space = AddressSpace()
        points = space.array(num_points)
        models = space.array(num_models)
        consensus = space.array(num_models)
        best = space.lines(1)
        code = code_region(space)

        point_values = [rng.randrange(1, 1 << 16) for _ in range(num_points)]
        model_values = [rng.randrange(1, 1 << 16) for _ in range(num_models)]

        initial: dict[int, LineData] = {}
        for array, values in ((points, point_values), (models, model_values)):
            for i, addr in enumerate(array):
                line = line_addr(addr)
                data = initial.get(line, LineData())
                initial[line] = data.with_word((addr % 64) // 4, values[i])

        cpu_points = int(num_points * CPU_SHARE)
        cpu_spans = partition(cpu_points, ctx.num_cpu_cores)

        def cpu_worker(lo: int, hi: int):
            def program():
                model_cache = []
                for m in range(num_models):
                    model_cache.append((yield ops.Load(models[m])))
                for m, model in enumerate(model_cache):
                    count = 0
                    for i in range(lo, hi):
                        point = yield ops.Load(points[i])
                        if is_inlier(point, model):
                            count += 1
                    if count:
                        yield ops.AtomicRMW(consensus[m], AtomicOp.ADD, count)

            return program

        def gpu_wave(lo: int, hi: int):
            def program():
                model_cache = yield ops.VLoad(models)
                if not isinstance(model_cache, tuple):
                    model_cache = (model_cache,)
                for m, model in enumerate(model_cache):
                    count = 0
                    for start in range(lo, hi, 16):
                        idx = list(range(start, min(start + 16, hi)))
                        values = yield ops.VLoad([points[i] for i in idx])
                        if not isinstance(values, tuple):
                            values = (values,)
                        count += sum(1 for v in values if is_inlier(v, model))
                    if count:
                        yield ops.AtomicRMW(
                            consensus[m], AtomicOp.ADD, count, scope="slc"
                        )

            return program

        num_wgs = max(2, ctx.num_cus)
        gpu_spans = partition(num_points - cpu_points, num_wgs)
        kernel = KernelSpec(
            "rscd_gpu",
            [
                [gpu_wave(cpu_points + lo, cpu_points + hi)]
                for lo, hi in gpu_spans
                if hi > lo
            ],
            code_addrs=code,
        )

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from cpu_worker(*cpu_spans[0])()
            yield ops.WaitKernel(handle)
            # final reduction: packed (count << 8 | model) atomic max
            for m in range(num_models):
                count = yield ops.Load(consensus[m])
                yield ops.AtomicRMW(best, AtomicOp.MAX, (count << 8) | m)

        programs = [host] + [cpu_worker(lo, hi) for lo, hi in cpu_spans[1:]]

        expected_counts = [
            sum(1 for p in point_values if is_inlier(p, model))
            for model in model_values
        ]
        best_packed = max(
            (count << 8) | m for m, count in enumerate(expected_counts)
        )
        expected = {consensus[m]: expected_counts[m] for m in range(num_models)}
        expected[best] = best_packed
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "rscd consensus")],
        )
