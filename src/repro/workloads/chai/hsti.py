"""hsti — Histogram, input partitioned (CHAI).

Collaboration pattern: **shared atomic accumulators**.  The input is
partitioned between CPU threads and GPU wavefronts; every agent atomically
increments the *shared* bin array (CPU atomics in the L2, GPU system-scope
atomics at the directory), so bin lines are heavily contended across
devices.
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import partition

BINS = 32
CPU_SHARE = 0.5


class HistogramInputPartitioned(Workload):
    name = "hsti"
    description = "input-partitioned histogram with cross-device atomic bins"
    collaboration = "shared atomic accumulators, contended bin lines"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        input_words = ctx.scaled(384, minimum=64)
        rng = ctx.rng()
        space = AddressSpace()
        inputs = space.array(input_words)
        # bins spread over multiple lines (16 per line) — realistic false
        # sharing inside a bin line
        bins = space.array(BINS)
        code = code_region(space)

        samples = [rng.randrange(BINS) for _ in range(input_words)]
        initial: dict[int, LineData] = {}
        for i, addr in enumerate(inputs):
            line = line_addr(addr)
            data = initial.get(line, LineData())
            initial[line] = data.with_word((addr % 64) // 4, samples[i] + 1)

        cpu_words = int(input_words * CPU_SHARE)
        cpu_spans = partition(cpu_words, ctx.num_cpu_cores)

        def cpu_worker(lo: int, hi: int):
            def program():
                for i in range(lo, hi):
                    value = yield ops.Load(inputs[i])
                    yield ops.AtomicRMW(bins[value - 1], AtomicOp.ADD, 1)

            return program

        def gpu_wave(lo: int, hi: int):
            def program():
                span = list(range(lo, hi))
                for start in range(0, len(span), 16):
                    batch = span[start:start + 16]
                    values = yield ops.VLoad([inputs[i] for i in batch])
                    if not isinstance(values, tuple):
                        values = (values,)
                    for value in values:
                        yield ops.AtomicRMW(
                            bins[value - 1], AtomicOp.ADD, 1, scope="slc"
                        )

            return program

        num_wgs = max(2, 2 * ctx.num_cus)
        gpu_spans = partition(input_words - cpu_words, num_wgs)
        kernel = KernelSpec(
            "hsti_gpu",
            [
                [gpu_wave(cpu_words + lo, cpu_words + hi)]
                for lo, hi in gpu_spans
                if hi > lo
            ],
            code_addrs=code,
        )

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from cpu_worker(*cpu_spans[0])()
            yield ops.WaitKernel(handle)

        programs = [host] + [cpu_worker(lo, hi) for lo, hi in cpu_spans[1:]]

        expected_counts = [0] * BINS
        for sample in samples:
            expected_counts[sample] += 1
        expected = {bins[b]: expected_counts[b] for b in range(BINS)}
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "hsti bins")],
        )
