"""hsto — Histogram, output partitioned (CHAI).

Collaboration pattern: **read-only sharing of the whole input**.  Every
agent scans the *entire* input but owns a disjoint range of bins, counting
only matching samples (no atomics, no write sharing).  The full input being
streamed by 8 CPU threads and the GPU produces heavy read sharing and many
clean victims — the access pattern §III-B1 discusses (clean victims with
little reuse polluting the LLC).
"""

from __future__ import annotations

from repro.mem.address import line_addr
from repro.mem.block import LineData
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import partition

BINS = 32
GPU_BIN_SHARE = 0.5


class HistogramOutputPartitioned(Workload):
    name = "hsto"
    description = "output-partitioned histogram: full-input read sharing, private bins"
    collaboration = "read-only input sharing, disjoint outputs, clean-victim heavy"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        input_words = ctx.scaled(384, minimum=64)
        rng = ctx.rng()
        space = AddressSpace()
        inputs = space.array(input_words)
        bins = space.array(BINS)
        code = code_region(space)

        samples = [rng.randrange(BINS) for _ in range(input_words)]
        initial: dict[int, LineData] = {}
        for i, addr in enumerate(inputs):
            line = line_addr(addr)
            data = initial.get(line, LineData())
            initial[line] = data.with_word((addr % 64) // 4, samples[i] + 1)

        gpu_bins = int(BINS * GPU_BIN_SHARE)
        cpu_bin_spans = partition(BINS - gpu_bins, ctx.num_cpu_cores)

        def cpu_worker(bin_lo: int, bin_hi: int):
            def program():
                counts = [0] * (bin_hi - bin_lo)
                for i in range(input_words):
                    value = (yield ops.Load(inputs[i])) - 1
                    if bin_lo <= value < bin_hi:
                        counts[value - bin_lo] += 1
                for offset, count in enumerate(counts):
                    yield ops.Store(bins[bin_lo + offset], count)

            return program

        def gpu_wave(bin_lo: int, bin_hi: int):
            def program():
                counts = [0] * (bin_hi - bin_lo)
                for start in range(0, input_words, 16):
                    idx = list(range(start, min(start + 16, input_words)))
                    values = yield ops.VLoad([inputs[i] for i in idx])
                    if not isinstance(values, tuple):
                        values = (values,)
                    for value in values:
                        if bin_lo <= value - 1 < bin_hi:
                            counts[value - 1 - bin_lo] += 1
                yield ops.VStore(
                    [bins[bin_lo + k] for k in range(len(counts))], counts
                )
                yield ops.ReleaseFence()

            return program

        gpu_base = BINS - gpu_bins
        num_wgs = max(1, min(gpu_bins, ctx.num_cus))
        gpu_spans = partition(gpu_bins, num_wgs)
        kernel = KernelSpec(
            "hsto_gpu",
            [
                [gpu_wave(gpu_base + lo, gpu_base + hi)]
                for lo, hi in gpu_spans
                if hi > lo
            ],
            code_addrs=code,
        )

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from cpu_worker(*cpu_bin_spans[0])()
            yield ops.WaitKernel(handle)

        programs = [host] + [cpu_worker(lo, hi) for lo, hi in cpu_bin_spans[1:]]

        expected_counts = [0] * BINS
        for sample in samples:
            expected_counts[sample] += 1
        expected = {bins[b]: expected_counts[b] for b in range(BINS)}
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "hsto bins")],
        )
