"""tq — Task Queue System (CHAI).

Collaboration pattern: **fine-grained task parallelism through an unpaired
work queue**.  CPU producer threads claim queue slots with an atomic tail
counter, write task payloads, and publish each slot with a per-slot ready
flag; persistent GPU wavefronts dequeue with an atomic head counter, spin
on the slot flag (system-scope reads), acquire, process the payload, and
write results.  This is the suite's most heavily collaborating benchmark —
continuous CPU→GPU dirty-data handoffs on queue lines plus contended
atomics on head/tail — and the one the paper's state-tracking directory
helps most.
"""

from __future__ import annotations

from repro.mem.address import LINE_BYTES
from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import gpu_spin_flag, partition, token

#: payload words per task (the rest of the task line holds the ready flag)
PAYLOAD_WORDS = 8
FLAG_WORD = 15


class TaskQueue(Workload):
    name = "tq"
    description = "CPU producers feed persistent GPU consumer wavefronts via an atomic work queue"
    collaboration = "fine-grained task parallelism, atomic queue indices, per-slot flags"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        num_tasks = ctx.scaled(96, minimum=8)
        space = AddressSpace()
        tail = space.lines(1)              # producers' slot-claim counter
        head = space.lines(1)              # consumers' dequeue counter
        slots = space.lines(num_tasks)     # one line per task
        results = space.array(num_tasks)
        code = code_region(space)

        def slot_addr(index: int, word: int) -> int:
            return slots + index * LINE_BYTES + 4 * word

        def payload_value(index: int, word: int) -> int:
            return token(index, word)

        def expected_result(index: int) -> int:
            return sum(payload_value(index, w) for w in range(PAYLOAD_WORDS))

        def producer(lo: int, hi: int):
            def program():
                for _ in range(lo, hi):
                    slot = yield ops.AtomicRMW(tail, AtomicOp.ADD, 1)
                    for word in range(PAYLOAD_WORDS):
                        yield ops.Store(slot_addr(slot, word), payload_value(slot, word))
                    yield ops.Think(20)
                    # publish: the flag write is ordered after the payload
                    # stores by the in-order core
                    yield ops.Store(slot_addr(slot, FLAG_WORD), 1)

            return program

        def consumer_wave():
            def program():
                while True:
                    index = yield ops.AtomicRMW(head, AtomicOp.ADD, 1, scope="slc")
                    if index >= num_tasks:
                        return
                    yield from gpu_spin_flag(slot_addr(index, FLAG_WORD))
                    yield ops.AcquireFence()
                    values = yield ops.VLoad(
                        [slot_addr(index, w) for w in range(PAYLOAD_WORDS)]
                    )
                    yield ops.Think(40)
                    yield ops.Store(results[index], sum(values))
                    yield ops.ReleaseFence()

            return program

        consumers = max(2, ctx.num_cus)
        kernel = KernelSpec(
            "tq_consumers",
            [[consumer_wave()] for _ in range(consumers)],
            code_addrs=code,
        )

        producer_spans = partition(num_tasks, ctx.num_cpu_cores)

        def host():
            handle = yield ops.LaunchKernel(kernel)
            yield from producer(*producer_spans[0])()
            yield ops.WaitKernel(handle)

        programs = [host]
        programs += [producer(lo, hi) for lo, hi in producer_spans[1:]]

        expected = {results[i]: expected_result(i) for i in range(num_tasks)}
        expected[head] = num_tasks + consumers  # every consumer over-claims once
        expected[tail] = num_tasks
        return WorkloadBuild(
            cpu_programs=programs,
            checks=[checker(expected, "tq results")],
        )
