"""bs — Bezier Surface (CHAI).

Collaboration pattern: **coarse data partitioning**.  A small control-point
grid is read-shared by every agent; the output surface is partitioned into
disjoint tiles, the first portion computed by CPU threads and the rest by
GPU workgroups.  Coherence activity is low (read-only sharing of one hot
line plus disjoint writes), which is why the paper reports only limited
improvement on bs — reproducing that *insensitivity* is part of the
experiment.
"""

from __future__ import annotations

from repro.mem.block import LineData
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)
from repro.workloads.chai.common import partition

#: fraction of the surface computed on the CPU (CHAI's alpha parameter)
CPU_FRACTION = 0.4


class BezierSurface(Workload):
    name = "bs"
    description = "Bezier surface evaluation: read-shared control points, partitioned output"
    collaboration = "coarse data partitioning, read-only sharing"

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        surface_points = ctx.scaled(768, minimum=64)
        space = AddressSpace()
        control = space.array(16)             # 4x4 control grid, one line
        surface = space.array(surface_points)
        code = code_region(space)

        control_values = [10 * (i + 1) for i in range(16)]
        base = sum(control_values)
        initial = {
            control[0] - (control[0] % 64): LineData(control_values),
        }

        cpu_points = int(surface_points * CPU_FRACTION)
        cpu_spans = partition(cpu_points, ctx.num_cpu_cores)
        gpu_lo, gpu_hi = cpu_points, surface_points

        def evaluate(index: int) -> int:
            # stand-in for the Bernstein evaluation: deterministic f(cp, u, v)
            return base + 7 * index

        def cpu_worker(lo: int, hi: int):
            def program():
                # every thread reads the shared control grid
                weights = 0
                for addr in control:
                    weights += yield ops.Load(addr)
                for index in range(lo, hi):
                    yield ops.Think(6)
                    yield ops.Store(surface[index], weights + 7 * index)

            return program

        def gpu_wave_direct(lo: int, hi: int):
            def program():
                values = yield ops.VLoad(control)
                weights = sum(values)
                span = list(range(lo, hi))
                for start in range(0, len(span), 16):
                    batch = span[start:start + 16]
                    yield ops.Think(10)
                    yield ops.VStore(
                        [surface[i] for i in batch],
                        [weights + 7 * i for i in batch],
                    )
                yield ops.ReleaseFence()

            return program

        num_wgs = max(2, 2 * ctx.num_cus)
        gpu_spans = partition(gpu_hi - gpu_lo, num_wgs)
        workgroups = [
            [gpu_wave_direct(gpu_lo + lo, gpu_lo + hi)]
            for lo, hi in gpu_spans
            if hi > lo
        ]
        kernel = KernelSpec("bs_kernel", workgroups, code_addrs=code)

        def host(lo: int, hi: int):
            def program():
                handle = yield ops.LaunchKernel(kernel)
                yield from cpu_worker(lo, hi)()
                yield ops.WaitKernel(handle)

            return program

        programs = [host(*cpu_spans[0])]
        programs += [cpu_worker(lo, hi) for lo, hi in cpu_spans[1:]]

        expected = {surface[i]: base + 7 * i for i in range(surface_points)}
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "bs surface")],
        )
