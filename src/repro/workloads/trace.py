"""The op vocabulary of CPU-thread and GPU-wavefront programs.

Programs are Python generators: they ``yield`` ops and receive the op's
result back from the executing core/wavefront, so data-dependent control
flow (work-queue dequeues, CAS loops, flag spins) is expressed naturally::

    def worker(queue_head: int, items: int):
        while True:
            index = yield AtomicRMW(queue_head, AtomicOp.ADD, 1)
            if index >= items:
                return
            value = yield Load(item_addr(index))
            yield Store(result_addr(index), value + 1)

CPU-only ops: :class:`SpinUntil`, :class:`LaunchKernel`, :class:`WaitKernel`,
:class:`Barrier`.  GPU-only ops: :class:`VLoad`, :class:`VStore`,
:class:`LdsAccess`, :class:`WgBarrier`, :class:`AcquireFence`,
:class:`ReleaseFence`, and the ``scope`` field of :class:`AtomicRMW`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.protocol.atomics import AtomicOp


@dataclass(frozen=True)
class Think:
    """Compute for ``cycles`` of the executing core's clock."""

    cycles: int


@dataclass(frozen=True)
class Load:
    """Load one word; the yield returns its value."""

    addr: int


@dataclass(frozen=True)
class Store:
    """Store ``value`` to one word."""

    addr: int
    value: int


@dataclass(frozen=True)
class AtomicRMW:
    """Atomic read-modify-write on one word; the yield returns the old value.

    On the CPU this acquires M in the L2 and executes locally.  On the GPU,
    ``scope="glc"`` executes at the TCC (device visibility) and
    ``scope="slc"`` at the system directory (full-system visibility).
    """

    addr: int
    op: AtomicOp
    operand: int = 0
    compare: int = 0
    scope: str = "slc"  # GPU only; ignored on CPU


@dataclass(frozen=True)
class SpinUntil:
    """CPU: repeatedly load ``addr`` until ``predicate(value)``; returns the
    final value.  ``backoff_cycles`` separates retries."""

    addr: int
    predicate: Callable[[int], bool]
    backoff_cycles: int = 100


class HostBarrier:
    """A host-side (std::thread style) barrier among CPU threads."""

    def __init__(self, parties: int) -> None:
        if parties < 1:
            raise ValueError("a barrier needs at least one party")
        self.parties = parties
        self._waiting: list[Callable[[], None]] = []
        self.generations = 0

    def arrive(self, callback: Callable[[], None]) -> None:
        self._waiting.append(callback)
        if len(self._waiting) >= self.parties:
            self.generations += 1
            waiters, self._waiting = self._waiting, []
            for waiter in waiters:
                waiter()


@dataclass(frozen=True)
class Barrier:
    """CPU: wait at a :class:`HostBarrier`."""

    barrier: HostBarrier


@dataclass(frozen=True)
class LaunchKernel:
    """CPU: enqueue a GPU kernel; returns a kernel handle immediately."""

    kernel: object  # a KernelSpec; typed loosely to avoid a cycle


@dataclass(frozen=True)
class WaitKernel:
    """CPU: block until the kernel behind ``handle`` completes."""

    handle: object


@dataclass(frozen=True)
class VLoad:
    """GPU: coalesced vector load; returns a tuple of word values."""

    addrs: Sequence[int]


@dataclass(frozen=True)
class VStore:
    """GPU: coalesced vector store of ``values`` (or one broadcast value)."""

    addrs: Sequence[int]
    values: Sequence[int] | int


@dataclass(frozen=True)
class LdsAccess:
    """GPU: a Local Data Share access (CU-local scratchpad, fixed latency)."""

    count: int = 1


@dataclass(frozen=True)
class WgBarrier:
    """GPU: barrier across all wavefronts of this workgroup."""


@dataclass(frozen=True)
class AcquireFence:
    """GPU: acquire — invalidate this CU's TCP so later loads see
    system-visible data (the TCC is kept coherent by directory probes)."""


@dataclass(frozen=True)
class ReleaseFence:
    """GPU: release — make this wavefront's prior writes system-visible
    (drain outstanding write-throughs; flush dirty TCC lines in WB mode)."""


@dataclass
class DmaTransfer:
    """One DMA descriptor: read or write ``lines`` consecutive lines."""

    kind: str  # "read" | "write"
    start_addr: int
    lines: int
    value: int = 0  # fill word value for writes
    after_kernel: object | None = None  # optional ordering dependency

    def __post_init__(self) -> None:
        if self.kind not in ("read", "write"):
            raise ValueError(f"bad DMA kind {self.kind!r}")
        if self.lines < 1:
            raise ValueError("DMA transfer needs at least one line")


@dataclass
class Program:
    """A named generator factory: calling ``factory()`` yields ops."""

    name: str
    factory: Callable[[], object]
    metadata: dict = field(default_factory=dict)

    def instantiate(self):
        return self.factory()
