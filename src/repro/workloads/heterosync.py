"""HeteroSync-like GPU synchronization microbenchmarks.

The paper also evaluated HeteroSync [28] and Lulesh and found "the effects
of the enhancements are not prominent due to their limited collaborative
properties" (§V, §VIII) — HeteroSync exercises fine-grained synchronization
*among GPU threads*, not CPU↔GPU collaboration, so the system-level
directory sees mostly GPU-local traffic.  These three workloads mirror
HeteroSync's primitive classes so that negative result can be reproduced
(see ``benchmarks/test_ablation_heterosync.py``):

- :class:`GpuSpinMutex` — wavefronts contend a spin mutex protecting a
  small critical section (HeteroSync's mutex microbenchmarks);
- :class:`GpuSyncBarrier` — an atomic decentralized barrier executed
  repeatedly by all wavefronts (HeteroSync's sync primitives);
- :class:`GpuLockFreeQueue` — wavefronts move items through a lock-free
  ticket queue (HeteroSync's lock-free data structures).

All synchronization uses *device-scope* (GLC) atomics executed at the TCC
— HeteroSync's scoped synchronization, which gem5 enables through the
write-back cache configs ("WB_L1 and WB_L2 ... which enables scoped
synchronizations and memory interactions", §II).  Run these under
``gpu_tcc_writeback=True`` for the faithful setup; they also verify under
write-through (where each GLC atomic additionally writes through).  The
CPU only launches the kernel and verifies — the paper's point exactly.
"""

from __future__ import annotations

from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    KernelSpec,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
    code_region,
)


def _host_launch_and_wait(kernel: KernelSpec):
    def host():
        handle = yield ops.LaunchKernel(kernel)
        yield ops.WaitKernel(handle)

    return host


class GpuSpinMutex(Workload):
    name = "hs_mutex"
    description = "GPU wavefronts contend a spin mutex around a shared counter"
    collaboration = "GPU-only fine-grained synchronization (HeteroSync mutex)"

    def __init__(self, acquisitions_per_wave: int = 8) -> None:
        self.acquisitions = acquisitions_per_wave

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        mutex = space.lines(1)
        counter = space.lines(1)
        code = code_region(space)
        waves = max(2, ctx.num_cus)

        def wave():
            for _ in range(self.acquisitions):
                # test-and-set spin lock through device-scope CAS at the TCC
                while True:
                    old = yield ops.AtomicRMW(
                        mutex, AtomicOp.CAS, operand=1, compare=0, scope="glc"
                    )
                    if old == 0:
                        break
                    yield ops.Think(150)
                # critical section: read-modify-write the protected counter
                value = yield ops.AtomicRMW(counter, AtomicOp.ADD, 0, scope="glc")
                yield ops.Think(30)
                yield ops.AtomicRMW(
                    counter, AtomicOp.EXCH, value + 1, scope="glc"
                )
                yield ops.AtomicRMW(mutex, AtomicOp.EXCH, 0, scope="glc")

        kernel = KernelSpec(
            "hs_mutex", [[wave] for _ in range(waves)], code_addrs=code
        )
        expected = {counter: waves * self.acquisitions, mutex: 0}
        return WorkloadBuild(
            cpu_programs=[_host_launch_and_wait(kernel)],
            checks=[checker(expected, "hs_mutex counter")],
        )


class GpuSyncBarrier(Workload):
    name = "hs_barrier"
    description = "repeated atomic all-wavefront barrier (sense-reversing)"
    collaboration = "GPU-only barrier synchronization (HeteroSync sync primitives)"

    def __init__(self, rounds: int = 6) -> None:
        self.rounds = rounds

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        arrive = space.lines(1)     # arrival counter
        phase = space.lines(1)      # completed-round counter
        work = space.array(ctx.num_cus * 16)
        code = code_region(space)
        waves = max(2, ctx.num_cus)

        def wave(wave_id: int):
            def program():
                for round_index in range(self.rounds):
                    # per-round private work, then the barrier
                    yield ops.VStore(
                        work[wave_id * 16:(wave_id + 1) * 16],
                        round_index + 1,
                    )
                    position = yield ops.AtomicRMW(
                        arrive, AtomicOp.ADD, 1, scope="glc"
                    )
                    if position == (round_index + 1) * waves - 1:
                        # last arriver releases the round
                        yield ops.AtomicRMW(
                            phase, AtomicOp.ADD, 1, scope="glc"
                        )
                    else:
                        while True:
                            seen = yield ops.AtomicRMW(
                                phase, AtomicOp.ADD, 0, scope="glc"
                            )
                            if seen > round_index:
                                break
                            yield ops.Think(150)
                yield ops.ReleaseFence()

            return program

        kernel = KernelSpec(
            "hs_barrier", [[wave(i)] for i in range(waves)], code_addrs=code
        )
        expected = {phase: self.rounds, arrive: self.rounds * waves}
        expected.update({
            work[i]: self.rounds for i in range(waves * 16)
        })
        return WorkloadBuild(
            cpu_programs=[_host_launch_and_wait(kernel)],
            checks=[checker(expected, "hs_barrier")],
        )


class GpuLockFreeQueue(Workload):
    name = "hs_lfqueue"
    description = "GPU producers/consumers move items through a ticket queue"
    collaboration = "GPU-only lock-free data structure (HeteroSync)"

    def __init__(self, items_per_producer: int = 12) -> None:
        self.items = items_per_producer

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        tail = space.lines(1)
        head = space.lines(1)
        total_producers = max(1, ctx.num_cus // 2)
        total_consumers = max(1, ctx.num_cus - total_producers)
        total_items = total_producers * self.items
        slots = space.words(total_items)
        consumed = space.lines(1)   # sum of consumed values
        code = code_region(space)

        def producer(producer_id: int):
            def program():
                for index in range(self.items):
                    ticket = yield ops.AtomicRMW(tail, AtomicOp.ADD, 1, scope="glc")
                    value = (producer_id + 1) * 1000 + index
                    # publish value through a device-visible exchange
                    yield ops.AtomicRMW(
                        slots[ticket], AtomicOp.EXCH, value, scope="glc"
                    )

            return program

        def consumer():
            def program():
                while True:
                    ticket = yield ops.AtomicRMW(head, AtomicOp.ADD, 1, scope="glc")
                    if ticket >= total_items:
                        return
                    while True:
                        value = yield ops.AtomicRMW(
                            slots[ticket], AtomicOp.ADD, 0, scope="glc"
                        )
                        if value:
                            break
                        yield ops.Think(150)
                    yield ops.AtomicRMW(consumed, AtomicOp.ADD, value, scope="glc")

            return program

        workgroups = [[producer(p)] for p in range(total_producers)]
        workgroups += [[consumer()] for _ in range(total_consumers)]
        kernel = KernelSpec("hs_lfqueue", workgroups, code_addrs=code)

        expected_sum = sum(
            (p + 1) * 1000 + i
            for p in range(total_producers)
            for i in range(self.items)
        )
        expected = {consumed: expected_sum, tail: total_items}
        return WorkloadBuild(
            cpu_programs=[_host_launch_and_wait(kernel)],
            checks=[checker(expected, "hs_lfqueue")],
        )


HETEROSYNC_WORKLOADS = [GpuSpinMutex(), GpuSyncBarrier(), GpuLockFreeQueue()]
