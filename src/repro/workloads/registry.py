"""Registry of the CHAI-like benchmark suite."""

from __future__ import annotations

from repro.workloads.base import Workload


def _suite() -> dict[str, Workload]:
    # Imported lazily so `repro.workloads` has no import cycle with the
    # benchmark modules (which import the trace/base vocabulary).
    from repro.workloads.chai import ALL_WORKLOADS

    return {workload.name: workload for workload in ALL_WORKLOADS}


def available_workloads() -> list[str]:
    """Names of every bundled benchmark, in the paper's order."""
    return list(_suite().keys())


def get_workload(name: str) -> Workload:
    suite = _suite()
    try:
        return suite[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(suite)}"
        ) from None
