"""Microbenchmarks isolating single coherence mechanisms.

These are not part of the CHAI suite; they exist so tests and ablations can
exercise one protocol path at a time:

- :class:`ReadersWriterSweep` — every CPU thread reads a block of lines
  (building wide S-state sharing at the directory), then one writer
  invalidates them all, repeatedly.  This is the pattern where sharer
  *multicast* beats owner-mode *broadcast* and where limited-pointer
  overflow shows up.
- :class:`MigratoryCounter` — a counter line ping-pongs between every CPU
  core and GPU system-scope atomics: the dirty-owner probe path.
- :class:`StreamingScan` — each thread streams a large private region once
  (pure capacity traffic: clean victims, LLC victim-cache behaviour).
"""

from __future__ import annotations

from repro.protocol.atomics import AtomicOp
from repro.workloads import trace as ops
from repro.workloads.base import (
    AddressSpace,
    Workload,
    WorkloadBuild,
    WorkloadContext,
    checker,
)


class ReadersWriterSweep(Workload):
    name = "micro_readers_writer"
    description = "all threads read-share a block; one writer invalidates it each round"
    collaboration = "wide S-state sharing, multicast vs broadcast invalidations"

    def __init__(self, lines: int = 8, rounds: int = 6) -> None:
        self.lines = lines
        self.rounds = rounds

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        block = [space.lines(1) for _ in range(self.lines)]
        round_flag = space.lines(1)
        ack_flags = [space.lines(1) for _ in range(ctx.num_cpu_cores)]
        rounds = self.rounds

        def writer():
            for round_index in range(rounds):
                # wait until every reader has read this round's data
                for flag in ack_flags[1:]:
                    yield ops.SpinUntil(flag, lambda v, r=round_index: v > r)
                for addr in block:
                    yield ops.Store(addr, round_index + 1)
                yield ops.Store(round_flag, round_index + 1)
                value = yield ops.Load(block[0])
                yield ops.Store(ack_flags[0], value)

        def reader(reader_id: int):
            def program():
                for round_index in range(rounds):
                    total = 0
                    for addr in block:
                        total += yield ops.Load(addr)
                    yield ops.Think(20)
                    yield ops.Store(ack_flags[reader_id], round_index + 1)
                    yield ops.SpinUntil(round_flag, lambda v, r=round_index: v > r)

            return program

        programs = [writer] + [reader(i) for i in range(1, ctx.num_cpu_cores)]
        expected = {addr: rounds for addr in block}
        return WorkloadBuild(
            cpu_programs=programs,
            checks=[checker(expected, "readers-writer block")],
        )


class MigratoryCounter(Workload):
    name = "micro_migratory"
    description = "one counter line migrates between all cores via atomics"
    collaboration = "dirty-owner probes, contended atomics"

    def __init__(self, increments_per_thread: int = 40) -> None:
        self.increments = increments_per_thread

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        counter = space.lines(1)

        def bumper():
            for _ in range(self.increments):
                yield ops.AtomicRMW(counter, AtomicOp.ADD, 1)
                yield ops.Think(10)

        programs = [bumper] * ctx.num_cpu_cores
        expected = {counter: self.increments * ctx.num_cpu_cores}
        return WorkloadBuild(
            cpu_programs=programs,
            checks=[checker(expected, "migratory counter")],
        )


class ReadOnlySharedScan(Workload):
    """Every thread repeatedly scans a shared *read-only* block.

    The block's address range is fixed at construction (``self.region``) so
    a :class:`DirectoryPolicy` can declare it read-only before the system
    is built — the conclusion's "not tracking read-only pages" future work.
    Results are written outside the region.
    """

    name = "micro_readonly_scan"
    description = "all threads stream a shared read-only block; results outside it"
    collaboration = "wide read-only sharing, directory-capacity pressure"

    BASE_LINE = 16  # AddressSpace's first line

    def __init__(self, lines: int = 96, passes: int = 2) -> None:
        self.lines = lines
        self.passes = passes
        from repro.mem.address import LINE_BYTES

        self.region = (
            self.BASE_LINE * LINE_BYTES,
            (self.BASE_LINE + lines) * LINE_BYTES,
        )

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        from repro.mem.address import LINE_BYTES, line_addr
        from repro.mem.block import LineData

        space = AddressSpace(base_line=self.BASE_LINE)
        block = [space.lines(1) for _ in range(self.lines)]
        assert (block[0], block[-1] + LINE_BYTES) == self.region
        results = space.words(ctx.num_cpu_cores)

        initial: dict[int, LineData] = {}
        for index, addr in enumerate(block):
            initial[line_addr(addr)] = LineData([index + 1] + [0] * 15)

        def scanner(tid: int):
            def program():
                total = 0
                for _ in range(self.passes):
                    for addr in block:
                        total += yield ops.Load(addr)
                yield ops.Store(results[tid], total)

            return program

        expected_total = self.passes * sum(range(1, self.lines + 1))
        programs = [scanner(tid) for tid in range(ctx.num_cpu_cores)]
        expected = {results[tid]: expected_total for tid in range(ctx.num_cpu_cores)}
        return WorkloadBuild(
            cpu_programs=programs,
            initial_memory=initial,
            checks=[checker(expected, "readonly scan totals")],
        )


class DirtySharingChain(Workload):
    """Owner write-back with remaining dirty sharers, repeatedly.

    Each round: a writer dirties a block; readers pull dirty-shared copies
    (directory O + sharers); the writer then streams a flush region large
    enough to evict the block (VicDirty with sharers still tracked); the
    readers re-read.  Preserving the sharers (Table I's O→S) makes the
    re-reads local L2 hits; the conservative §VII variant invalidates them,
    forcing refetches — the probe/traffic delta this microbenchmark exposes.
    """

    name = "micro_dirty_sharing"
    description = "owner write-back under dirty sharers, per-round flag chain"
    collaboration = "dirty sharing, owner eviction, sharer preservation"

    def __init__(self, lines: int = 8, rounds: int = 4, flush_lines: int = 48) -> None:
        self.lines = lines
        self.rounds = rounds
        self.flush_lines = flush_lines

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        block = [space.lines(1) for _ in range(self.lines)]
        flush_region = [space.lines(1) for _ in range(self.flush_lines)]
        written = space.lines(1)
        acked = space.lines(1)
        evicted = space.lines(1)
        reread = space.lines(1)
        readers = max(1, ctx.num_cpu_cores - 1)

        def writer():
            for round_index in range(self.rounds):
                for offset, addr in enumerate(block):
                    yield ops.Store(addr, (round_index + 1) * 1000 + offset)
                yield ops.AtomicRMW(written, AtomicOp.ADD, 1)
                yield ops.SpinUntil(
                    acked, lambda v, want=(round_index + 1) * readers: v >= want
                )
                # stream the flush region to evict the (now owned-O) block
                for addr in flush_region:
                    yield ops.Load(addr)
                yield ops.AtomicRMW(evicted, AtomicOp.ADD, 1)
                yield ops.SpinUntil(
                    reread, lambda v, want=(round_index + 1) * readers: v >= want
                )

        def reader(_rid: int):
            def program():
                for round_index in range(self.rounds):
                    yield ops.SpinUntil(written, lambda v, w=round_index + 1: v >= w)
                    for addr in block:
                        yield ops.Load(addr)
                    yield ops.AtomicRMW(acked, AtomicOp.ADD, 1)
                    yield ops.SpinUntil(evicted, lambda v, w=round_index + 1: v >= w)
                    for addr in block:
                        yield ops.Load(addr)  # the contested re-read
                    yield ops.AtomicRMW(reread, AtomicOp.ADD, 1)

            return program

        programs = [writer] + [reader(r) for r in range(readers)]
        expected = {
            block[offset]: self.rounds * 1000 + offset
            for offset in range(self.lines)
        }
        return WorkloadBuild(
            cpu_programs=programs,
            checks=[checker(expected, "dirty-sharing block")],
        )


class StreamingScan(Workload):
    name = "micro_streaming"
    description = "each thread streams a private region once (clean-victim capacity traffic)"
    collaboration = "none: pure capacity/eviction behaviour"

    def __init__(self, lines_per_thread: int = 96) -> None:
        self.lines_per_thread = lines_per_thread

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        space = AddressSpace()
        regions = [
            [space.lines(1) for _ in range(self.lines_per_thread)]
            for _ in range(ctx.num_cpu_cores)
        ]

        def scanner(region: list[int]):
            def program():
                # write once (dirty victims), then stream-read twice
                for addr in region:
                    yield ops.Store(addr, addr)
                for _ in range(2):
                    for addr in region:
                        yield ops.Load(addr)

            return program

        programs = [scanner(region) for region in regions]
        expected = {region[0]: region[0] for region in regions}
        return WorkloadBuild(
            cpu_programs=programs,
            checks=[checker(expected, "streaming regions")],
        )
