"""Workload framework: kernels, builds, and the Workload base class.

A workload ``build()`` produces per-CPU-thread programs, GPU kernels (which
the CPU programs launch), optional DMA transfers, initial memory contents,
and post-run functional checks — our substitute for the CHAI benchmarks'
output verification step.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Generator

from repro.mem.address import LINE_BYTES, make_addr
from repro.mem.block import LineData
from repro.workloads.trace import DmaTransfer


@dataclass
class KernelSpec:
    """A GPU kernel: workgroups of wavefront program factories.

    ``code_addrs`` is the ring of instruction lines wavefronts fetch through
    the SQC (every ``ifetch_interval`` ops).
    """

    name: str
    workgroups: list[list[Callable[[], Generator]]]
    code_addrs: tuple[int, ...] = ()
    ifetch_interval: int = 8


@dataclass
class WorkloadContext:
    """What a workload may inspect while building itself."""

    num_cpu_cores: int
    num_cus: int
    seed: int = 0
    #: problem-size multiplier; 1.0 is the default benchmark size.
    scale: float = 1.0

    def rng(self) -> random.Random:
        return random.Random(self.seed)

    def scaled(self, n: int, minimum: int = 1) -> int:
        return max(minimum, int(n * self.scale))


@dataclass
class WorkloadBuild:
    """Everything a built workload hands to the APU system."""

    cpu_programs: list[Callable[[], Generator]]
    dma_transfers: list[DmaTransfer] = field(default_factory=list)
    initial_memory: dict[int, LineData] = field(default_factory=dict)
    #: post-run checks: each callable receives the ApuSystem and returns a
    #: list of failure descriptions (empty = pass).
    checks: list[Callable[[object], list[str]]] = field(default_factory=list)


class Workload:
    """Base class for benchmarks.  Subclasses set the metadata fields and
    implement :meth:`build`."""

    #: short name, e.g. "tq"
    name: str = "abstract"
    #: one-line description
    description: str = ""
    #: which CHAI collaboration pattern this mirrors
    collaboration: str = ""

    def build(self, ctx: WorkloadContext) -> WorkloadBuild:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<Workload {self.name}>"


class AddressSpace:
    """A bump allocator of line-aligned regions, keeping workload address
    maps readable and collision-free.

    Line 0 is reserved (the directory Flush fence uses address 0).
    """

    def __init__(self, base_line: int = 16) -> None:
        self._next_line = base_line

    def lines(self, count: int) -> int:
        """Allocate ``count`` consecutive lines; returns the base address."""
        if count < 1:
            raise ValueError("allocation needs at least one line")
        base = self._next_line * LINE_BYTES
        self._next_line += count
        return base

    def words(self, count: int) -> list[int]:
        """Allocate ``count`` words, one per line (no false sharing)."""
        return [self.lines(1) for _ in range(count)]

    def array(self, num_words: int) -> list[int]:
        """Allocate a dense array of word addresses (16 words per line)."""
        lines = (num_words + 15) // 16
        base = self.lines(lines)
        return [base + 4 * i for i in range(num_words)]


def checker(expected: dict[int, int], label: str) -> Callable[[object], list[str]]:
    """A post-run check asserting coherent word values.

    ``expected`` maps word addresses to required final values; the check
    reads through :meth:`ApuSystem.coherent_word`.
    """

    def run(system: object) -> list[str]:
        errors = []
        for addr, want in expected.items():
            got = system.coherent_word(addr)
            if got != want:
                errors.append(f"{label}: word {addr:#x} = {got}, expected {want}")
        return errors

    return run


def code_region(space: AddressSpace, lines: int = 4) -> tuple[int, ...]:
    """Allocate a small instruction region; returns its line addresses."""
    base = space.lines(lines)
    return tuple(base + i * LINE_BYTES for i in range(lines))


__all__ = [
    "AddressSpace",
    "KernelSpec",
    "Workload",
    "WorkloadBuild",
    "WorkloadContext",
    "checker",
    "code_region",
    "make_addr",
]
