"""Parallel experiment runner with a persistent result cache.

Public surface:

- :class:`Cell` — one (workload, config) simulation.
- :func:`run_cells` — cache-aware, process-pool execution of many cells.
- :class:`ResultCache` / :func:`cell_key` — the on-disk cache.
"""

from repro.runner.cache import ResultCache, cell_key, source_digest, workload_token
from repro.runner.cells import Cell
from repro.runner.executor import (
    CellError,
    CellTimeout,
    default_progress,
    effective_jobs,
    run_cell_inline,
    run_cells,
)

__all__ = [
    "Cell",
    "CellError",
    "CellTimeout",
    "ResultCache",
    "cell_key",
    "default_progress",
    "effective_jobs",
    "run_cell_inline",
    "run_cells",
    "source_digest",
    "workload_token",
]
