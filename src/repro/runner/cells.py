"""Cell specification: one independent (workload, config) simulation.

The evaluation matrix — figures, tables, ablations, design-space sweeps —
decomposes into *cells*: a workload run on one fully-specified
:class:`SystemConfig`.  Cells are deterministic and independent, which is
what lets the executor fan them out over a process pool and the cache key
them content-addressed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system.config import SystemConfig
from repro.workloads.base import Workload


@dataclass
class Cell:
    """One simulation to run: workload x config x run parameters.

    ``workload`` is either a registered benchmark name (dispatched to
    workers by name) or a :class:`Workload` instance (pickled across the
    process boundary; must be picklable, which all bundled workloads are).
    ``label`` is only for progress lines and error messages.
    """

    workload: str | Workload
    config: SystemConfig
    scale: float = 1.0
    verify: bool = False
    seed: int = 0
    label: str = ""

    @property
    def workload_name(self) -> str:
        return self.workload if isinstance(self.workload, str) else self.workload.name

    @property
    def display(self) -> str:
        return self.label or self.workload_name
