"""Persistent, content-addressed simulation-result cache.

Results live under ``.repro_cache/`` (override with ``REPRO_CACHE_DIR``),
one JSON file per cell, keyed by a stable hash of everything that
determines the outcome:

- the full :class:`SystemConfig` (including its ``DirectoryPolicy``),
  serialized through :mod:`repro.system.serialize`;
- the workload (registry name, or class + constructor state for ad-hoc
  instances);
- the ``scale`` / ``verify`` / ``seed`` run parameters;
- a digest of every ``repro`` source file, so any code change invalidates
  the whole cache rather than serving stale results.

Because the simulator is deterministic, a cache hit is bit-identical to a
re-run; repeated ``pytest benchmarks/`` or ``examples/reproduce_paper.py``
invocations therefore perform zero simulations once warm.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile

from repro.runner.cells import Cell
from repro.system.apu import SimulationResult
from repro.system.serialize import config_to_dict, result_from_dict, result_to_dict

#: bump when the key schema or stored payload layout changes
CACHE_VERSION = 1

DEFAULT_CACHE_DIR = ".repro_cache"

_SOURCE_DIGEST: str | None = None


def source_digest() -> str:
    """Digest of every ``repro`` source file (computed once per process)."""
    global _SOURCE_DIGEST
    if _SOURCE_DIGEST is None:
        root = pathlib.Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _SOURCE_DIGEST = digest.hexdigest()
    return _SOURCE_DIGEST


def workload_token(workload) -> str:
    """A stable identity for a cell's workload.

    Registered benchmarks are identified by name; ad-hoc :class:`Workload`
    instances (microbenchmarks, parameterized variants) by their class and
    constructor state, so two instances with the same parameters share
    cache entries.
    """
    if isinstance(workload, str):
        return workload
    state = {key: repr(value) for key, value in sorted(vars(workload).items())}
    return (
        f"{type(workload).__module__}.{type(workload).__qualname__}"
        f":{json.dumps(state, sort_keys=True)}"
    )


def cell_key(cell: Cell) -> str:
    """Content-addressed cache key for ``cell`` (hex sha256)."""
    payload = {
        "version": CACHE_VERSION,
        "source": source_digest(),
        "workload": workload_token(cell.workload),
        "config": config_to_dict(cell.config),
        "scale": cell.scale,
        "verify": cell.verify,
        "seed": cell.seed,
    }
    blob = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()


class ResultCache:
    """On-disk result store; safe under concurrent writers (atomic rename)."""

    def __init__(self, root: str | os.PathLike | None = None, enabled: bool = True) -> None:
        self.root = pathlib.Path(
            root if root is not None
            else os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
        )
        self.enabled = enabled
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """The cached result for ``key``, or None on a miss.

        A present-but-corrupt entry (truncated write, bad JSON, wrong
        shape) is evicted so it cannot shadow a future good write, then
        reported as an ordinary miss.
        """
        if not self.enabled:
            return None
        path = self._path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            result = result_from_dict(json.loads(text)["result"])
        except (ValueError, KeyError, TypeError):
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, key: str, cell: Cell, result: SimulationResult) -> None:
        """Persist ``result`` for ``key`` (atomic: concurrent writers race
        benignly — last rename wins with identical content)."""
        if not self.enabled:
            return
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "version": CACHE_VERSION,
            "key": key,
            "workload": workload_token(cell.workload),
            "scale": cell.scale,
            "verify": cell.verify,
            "seed": cell.seed,
            "config": config_to_dict(cell.config),
            "result": result_to_dict(result),
        }
        # Crash-safe: serialize to a sibling temp file, flush it to disk,
        # then atomically rename over the final name — readers only ever
        # see a missing entry or a complete one, never a partial write.
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            path.unlink()
            removed += 1
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.json"))

    def __repr__(self) -> str:
        return (
            f"ResultCache({str(self.root)!r}, enabled={self.enabled}, "
            f"hits={self.hits}, misses={self.misses})"
        )
