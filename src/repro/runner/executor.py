"""Process-pool execution of simulation cells.

``run_cells`` is the single entry point: it checks the persistent cache,
fans the remaining cells out over a :class:`ProcessPoolExecutor`
(``jobs=1`` stays in-process), enforces a per-cell timeout (SIGALRM inside
the worker, where available), retries each crashed cell once in a fresh
pool, and emits structured progress lines.

Workers rebuild the system from the serialized config and return the
result as a plain dict (see :mod:`repro.system.serialize`), so nothing
simulator-internal crosses the process boundary and parallel results are
bit-identical to serial ones.
"""

from __future__ import annotations

import os
import pickle
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence

from repro.runner.cache import ResultCache, cell_key
from repro.runner.cells import Cell
from repro.system.apu import SimulationResult
from repro.system.serialize import config_from_dict, config_to_dict, result_from_dict, result_to_dict

#: how many times a crashed cell is resubmitted before giving up
DEFAULT_RETRIES = 1


class CellError(RuntimeError):
    """A cell failed to execute (crash, timeout, or worker exception)."""


class CellTimeout(CellError):
    """A cell exceeded its per-cell wall-clock timeout."""


def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: None means one worker per CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _alarm_handler(_signum, _frame):  # pragma: no cover - fires in workers
    raise CellTimeout("cell exceeded its wall-clock timeout")


def _cell_payload(cell: Cell, timeout_s: float | None) -> dict:
    return {
        "workload": cell.workload,  # name, or pickled Workload instance
        "config": config_to_dict(cell.config),
        "scale": cell.scale,
        "verify": cell.verify,
        "seed": cell.seed,
        "timeout_s": timeout_s,
        "label": cell.display,
    }


def _run_payload(payload: dict) -> dict:
    """Worker entry point: rebuild, simulate, return a result dict."""
    timeout_s = payload.get("timeout_s")
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    try:
        from repro.system.builder import build_system
        from repro.workloads.registry import get_workload

        config = config_from_dict(payload["config"])
        workload = payload["workload"]
        if isinstance(workload, str):
            workload = get_workload(workload)
        system = build_system(config)
        result = system.run_workload(
            workload,
            seed=payload["seed"],
            scale=payload["scale"],
            verify=payload["verify"],
        )
        return result_to_dict(result)
    finally:
        if use_alarm:
            signal.alarm(0)


def run_cell_inline(cell: Cell) -> SimulationResult:
    """Run one cell in this process (the serial reference path)."""
    from repro.system.builder import build_system
    from repro.workloads.registry import get_workload

    workload = cell.workload
    if isinstance(workload, str):
        workload = get_workload(workload)
    system = build_system(cell.config)
    return system.run_workload(
        workload, seed=cell.seed, scale=cell.scale, verify=cell.verify
    )


def _picklable(payload: dict) -> bool:
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


def run_cells(
    cells: Sequence[Cell],
    jobs: int | None = None,
    cache: ResultCache | None = None,
    timeout_s: float | None = None,
    retries: int = DEFAULT_RETRIES,
    progress: Callable[[str], None] | None = None,
) -> list[SimulationResult]:
    """Run every cell, in input order, returning one result per cell.

    Cached cells are served from ``cache`` without simulating; the rest run
    on a pool of ``jobs`` workers (``jobs=1`` or a single pending cell runs
    in-process).  Identical duplicate cells are simulated once.
    """
    jobs = effective_jobs(jobs)
    emit = progress or (lambda line: None)
    total = len(cells)
    results: list[SimulationResult | None] = [None] * total
    keys = [cell_key(cell) if cache is not None else None for cell in cells]

    pending: list[int] = []
    seen_keys: dict[str, int] = {}
    duplicates: list[tuple[int, int]] = []
    for index, cell in enumerate(cells):
        key = keys[index]
        if cache is not None:
            cached = cache.get(key)
            if cached is not None:
                results[index] = cached
                emit(f"[runner] {index + 1}/{total} {cell.display}: cache hit")
                continue
            if key in seen_keys:
                duplicates.append((index, seen_keys[key]))
                continue
            seen_keys[key] = index
        pending.append(index)

    if pending:
        if jobs <= 1 or len(pending) == 1:
            for position, index in enumerate(pending):
                start = time.perf_counter()
                results[index] = run_cell_inline(cells[index])
                emit(
                    f"[runner] {position + 1}/{len(pending)} {cells[index].display}: "
                    f"simulated inline in {time.perf_counter() - start:.2f}s"
                )
        else:
            _run_pool(cells, pending, results, jobs, timeout_s, retries, emit)
        if cache is not None:
            for index in pending:
                cache.put(keys[index], cells[index], results[index])

    for index, source in duplicates:
        results[index] = results[source]
    return results  # type: ignore[return-value]


def _run_pool(
    cells: Sequence[Cell],
    pending: list[int],
    results: list,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    emit: Callable[[str], None],
) -> None:
    payloads = {index: _cell_payload(cells[index], timeout_s) for index in pending}
    # Unpicklable workload instances cannot cross the process boundary;
    # run them inline rather than poisoning the pool.
    queue = []
    for index in pending:
        if _picklable(payloads[index]):
            queue.append(index)
        else:
            emit(f"[runner] {cells[index].display}: not picklable, running inline")
            results[index] = run_cell_inline(cells[index])

    attempts = dict.fromkeys(queue, 0)
    done = 0
    total = len(queue)
    while queue:
        # A fresh pool per round also recovers from BrokenProcessPool.
        with ProcessPoolExecutor(max_workers=min(jobs, len(queue))) as pool:
            futures = {pool.submit(_run_payload, payloads[i]): i for i in queue}
            queue = []
            for future in as_completed(futures):
                index = futures[future]
                cell = cells[index]
                try:
                    results[index] = result_from_dict(future.result())
                    done += 1
                    emit(f"[runner] {done}/{total} {cell.display}: simulated on pool")
                except CellTimeout as exc:
                    raise CellError(
                        f"cell {cell.display} timed out after {timeout_s}s"
                    ) from exc
                except Exception as exc:  # crash, BrokenProcessPool, pickling
                    attempts[index] += 1
                    if attempts[index] > retries:
                        raise CellError(
                            f"cell {cell.display} failed after "
                            f"{attempts[index]} attempt(s): {exc}"
                        ) from exc
                    emit(
                        f"[runner] {cell.display}: crashed ({type(exc).__name__}), "
                        f"retry {attempts[index]}/{retries}"
                    )
                    queue.append(index)


def default_progress(line: str) -> None:
    """A ready-made progress sink: one line per event on stderr."""
    print(line, file=sys.stderr, flush=True)
