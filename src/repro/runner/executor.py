"""Process-pool execution of simulation cells.

``run_cells`` is a thin client of the results store: it delegates to
:func:`repro.store.resolve.resolve_cells`, the single resolution entry
point shared by figures, sweeps, benchmarks, and the serve daemon.  This
module keeps the execution primitives resolution fans out to:

- :func:`run_cell_inline` — the serial in-process reference path;
- :func:`run_pool` — fan-out over a :class:`ProcessPoolExecutor` with a
  per-cell timeout (SIGALRM inside the worker, where available) and
  bounded retries for crashed *or* timed-out cells;
- :func:`_run_payload` — the worker entry point (also used by the serve
  daemon's persistent pool).

Workers rebuild the system from the serialized config and return the
result as a plain dict (see :mod:`repro.system.serialize`), so nothing
simulator-internal crosses the process boundary and parallel results are
bit-identical to serial ones.
"""

from __future__ import annotations

import os
import pickle
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence

from repro.runner.cells import Cell
from repro.system.apu import SimulationResult
from repro.system.serialize import config_from_dict, config_to_dict, result_from_dict

#: how many times a crashed or timed-out cell is resubmitted before giving up
DEFAULT_RETRIES = 1


class CellError(RuntimeError):
    """A cell failed to execute (crash, timeout, or worker exception)."""


class CellTimeout(CellError):
    """A cell exceeded its per-cell wall-clock timeout."""


def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: None means one worker per CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _alarm_handler(_signum, _frame):  # pragma: no cover - fires in workers
    raise CellTimeout("cell exceeded its wall-clock timeout")


def _cell_payload(cell: Cell, timeout_s: float | None) -> dict:
    return {
        "workload": cell.workload,  # name, or pickled Workload instance
        "config": config_to_dict(cell.config),
        "scale": cell.scale,
        "verify": cell.verify,
        "seed": cell.seed,
        "timeout_s": timeout_s,
        "label": cell.display,
    }


def _run_payload(payload: dict) -> dict:
    """Worker entry point: rebuild, simulate, return a result dict."""
    timeout_s = payload.get("timeout_s")
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    try:
        from repro.system.builder import build_system
        from repro.system.serialize import result_to_dict
        from repro.workloads.registry import get_workload

        config = config_from_dict(payload["config"])
        workload = payload["workload"]
        if isinstance(workload, str):
            workload = get_workload(workload)
        system = build_system(config)
        result = system.run_workload(
            workload,
            seed=payload["seed"],
            scale=payload["scale"],
            verify=payload["verify"],
        )
        return result_to_dict(result)
    finally:
        if use_alarm:
            signal.alarm(0)


def run_cell_inline(cell: Cell) -> SimulationResult:
    """Run one cell in this process (the serial reference path)."""
    from repro.system.builder import build_system
    from repro.workloads.registry import get_workload

    workload = cell.workload
    if isinstance(workload, str):
        workload = get_workload(workload)
    system = build_system(cell.config)
    return system.run_workload(
        workload, seed=cell.seed, scale=cell.scale, verify=cell.verify
    )


def _picklable(payload: dict) -> bool:
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


def run_cells(
    cells: Sequence[Cell],
    jobs: int | None = None,
    cache=None,
    timeout_s: float | None = None,
    retries: int = DEFAULT_RETRIES,
    progress: Callable[[str], None] | None = None,
    store=None,
    serve=None,
) -> list[SimulationResult]:
    """Run every cell, in input order, returning one result per cell.

    A thin client of the results store: ``store`` (a
    :class:`repro.store.ResultStore`) or ``cache`` (the legacy file
    :class:`ResultCache` — both expose the same backend surface) serves
    warm cells without simulating, ``serve`` routes execution to a running
    ``repro serve`` daemon, and the rest fans out over ``jobs`` local
    workers.  Identical duplicate cells are simulated once.
    """
    from repro.store.resolve import resolve_cells

    return resolve_cells(
        cells,
        store=store if store is not None else cache,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
        serve=serve,
    )


def run_inline(
    cells: Sequence[Cell],
    pending: Sequence[int],
    results: list,
    emit: Callable[[str], None],
) -> None:
    """Serial execution of ``pending`` into ``results`` (reference path)."""
    for position, index in enumerate(pending):
        start = time.perf_counter()
        results[index] = run_cell_inline(cells[index])
        emit(
            f"[runner] {position + 1}/{len(pending)} {cells[index].display}: "
            f"simulated inline in {time.perf_counter() - start:.2f}s"
        )


def pool_map(
    worker: Callable[[dict], dict],
    payloads: dict,
    labels: dict,
    pending: Sequence[int],
    results: list,
    decode: Callable[[dict], object],
    jobs: int,
    timeout_s: float | None,
    retries: int,
    emit: Callable[[str], None],
) -> None:
    """Generic process-pool fan-out with retry on crash/timeout.

    ``payloads``/``labels`` map each pending index to the worker payload
    and its progress label; ``decode`` turns each worker answer back into
    the caller's result type.  Progress accounting counts each *unique*
    item exactly once: an item that times out or crashes and then
    succeeds on retry contributes one ``done/total`` line, and ``total``
    never inflates with re-attempts.
    """
    attempts = dict.fromkeys(pending, 0)
    done = 0
    total = len(pending)
    queue = list(pending)
    while queue:
        # A fresh pool per round also recovers from BrokenProcessPool.
        with ProcessPoolExecutor(max_workers=min(jobs, len(queue))) as pool:
            futures = {pool.submit(worker, payloads[i]): i for i in queue}
            queue = []
            for future in as_completed(futures):
                index = futures[future]
                label = labels[index]
                try:
                    results[index] = decode(future.result())
                except Exception as exc:  # timeout, crash, BrokenProcessPool
                    attempts[index] += 1
                    timed_out = isinstance(exc, CellTimeout)
                    if attempts[index] > retries:
                        if timed_out:
                            raise CellError(
                                f"cell {label} timed out after "
                                f"{timeout_s}s ({attempts[index]} attempt(s))"
                            ) from exc
                        raise CellError(
                            f"cell {label} failed after "
                            f"{attempts[index]} attempt(s): {exc}"
                        ) from exc
                    reason = (
                        "timed out" if timed_out
                        else f"crashed ({type(exc).__name__})"
                    )
                    emit(
                        f"[runner] {label}: {reason}, "
                        f"retry {attempts[index]}/{retries}"
                    )
                    queue.append(index)
                else:
                    done += 1
                    emit(f"[runner] {done}/{total} {label}: simulated on pool")


def run_pool(
    cells: Sequence[Cell],
    pending: Sequence[int],
    results: list,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    emit: Callable[[str], None],
) -> None:
    """Fan ``pending`` out over a process pool with retry on crash/timeout."""
    payloads = {index: _cell_payload(cells[index], timeout_s) for index in pending}
    # Unpicklable workload instances cannot cross the process boundary;
    # run them inline rather than poisoning the pool.
    queue = []
    for index in pending:
        if _picklable(payloads[index]):
            queue.append(index)
        else:
            emit(f"[runner] {cells[index].display}: not picklable, running inline")
            results[index] = run_cell_inline(cells[index])

    labels = {index: cells[index].display for index in queue}
    pool_map(_run_payload, payloads, labels, queue, results,
             result_from_dict, jobs, timeout_s, retries, emit)


# -- litmus fan-out -------------------------------------------------------------
#
# The litmus analogue of the cell worker: a (test, policy, schedule)
# triple crosses the process boundary as JSON (the DSL is JSON-able by
# design), the worker rebuilds everything from names, and the outcome
# comes back as a plain dict.  Postconditions are code and cannot cross;
# registry tests reattach theirs by name, anything else runs inline.


def litmus_run_label(test, policy_name: str, schedule) -> str:
    return f"{test.name}@{policy_name}@{schedule.label()}"


def litmus_payload(test, policy_name: str, schedule, max_events: int,
                   coverage: bool, timeout_s: float | None) -> dict | None:
    """Serialize one litmus run for the pool, or None if it cannot cross
    the process boundary (a non-registry postcondition closure)."""
    registry_post = False
    if test.postcondition is not None:
        from repro.verify.litmus.registry import REGISTRY

        registered = REGISTRY.get(test.name)
        if registered is not None and registered.to_json() == test.to_json():
            registry_post = True
        else:
            return None
    return {
        "test": test.to_json(),
        "registry_postcondition": registry_post,
        "policy": policy_name,
        "schedule": schedule.to_json(),
        "max_events": max_events,
        "coverage": coverage,
        "timeout_s": timeout_s,
    }


def _run_litmus_payload(payload: dict) -> dict:
    """Worker entry point: rebuild the litmus run, execute, return a dict."""
    timeout_s = payload.get("timeout_s")
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    try:
        from repro.verify.litmus.dsl import LitmusTest
        from repro.verify.litmus.harness import outcome_to_dict, run_litmus
        from repro.verify.litmus.schedule import Schedule

        test = LitmusTest.from_json(payload["test"])
        if payload.get("registry_postcondition"):
            from repro.verify.litmus.registry import get_litmus

            test = get_litmus(test.name)
        outcome = run_litmus(
            test,
            policy_name=payload["policy"],
            schedule=Schedule.from_json(payload["schedule"]),
            max_events=payload["max_events"],
            coverage=payload["coverage"],
        )
        return outcome_to_dict(outcome)
    finally:
        if use_alarm:
            signal.alarm(0)


def run_litmus_pool(
    runs: Sequence[tuple],
    pending: Sequence[int],
    results: list,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    emit: Callable[[str], None],
    max_events: int,
    coverage: bool,
) -> None:
    """Fan pending ``(test, policy_name, schedule)`` runs out over a pool."""
    from repro.verify.litmus.harness import outcome_from_dict, run_litmus

    payloads = {}
    labels = {}
    queue = []
    for index in pending:
        test, policy_name, schedule = runs[index]
        label = litmus_run_label(test, policy_name, schedule)
        payload = litmus_payload(test, policy_name, schedule, max_events,
                                 coverage, timeout_s)
        if payload is None:
            emit(f"[runner] {label}: postcondition cannot cross the pool, "
                 "running inline")
            results[index] = run_litmus(
                test, policy_name=policy_name, schedule=schedule,
                max_events=max_events, coverage=coverage,
            )
            continue
        payloads[index] = payload
        labels[index] = label
        queue.append(index)

    pool_map(_run_litmus_payload, payloads, labels, queue, results,
             outcome_from_dict, jobs, timeout_s, retries, emit)


def default_progress(line: str) -> None:
    """A ready-made progress sink: one line per event on stderr."""
    print(line, file=sys.stderr, flush=True)
