"""Process-pool execution of simulation cells.

``run_cells`` is a thin client of the results store: it delegates to
:func:`repro.store.resolve.resolve_cells`, the single resolution entry
point shared by figures, sweeps, benchmarks, and the serve daemon.  This
module keeps the execution primitives resolution fans out to:

- :func:`run_cell_inline` — the serial in-process reference path;
- :func:`run_pool` — fan-out over a :class:`ProcessPoolExecutor` with a
  per-cell timeout (SIGALRM inside the worker, where available) and
  bounded retries for crashed *or* timed-out cells;
- :func:`_run_payload` — the worker entry point (also used by the serve
  daemon's persistent pool).

Workers rebuild the system from the serialized config and return the
result as a plain dict (see :mod:`repro.system.serialize`), so nothing
simulator-internal crosses the process boundary and parallel results are
bit-identical to serial ones.
"""

from __future__ import annotations

import os
import pickle
import signal
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable, Sequence

from repro.runner.cells import Cell
from repro.system.apu import SimulationResult
from repro.system.serialize import config_from_dict, config_to_dict, result_from_dict

#: how many times a crashed or timed-out cell is resubmitted before giving up
DEFAULT_RETRIES = 1


class CellError(RuntimeError):
    """A cell failed to execute (crash, timeout, or worker exception)."""


class CellTimeout(CellError):
    """A cell exceeded its per-cell wall-clock timeout."""


def effective_jobs(jobs: int | None) -> int:
    """Resolve a ``--jobs`` value: None means one worker per CPU."""
    if jobs is None:
        return os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _alarm_handler(_signum, _frame):  # pragma: no cover - fires in workers
    raise CellTimeout("cell exceeded its wall-clock timeout")


def _cell_payload(cell: Cell, timeout_s: float | None) -> dict:
    return {
        "workload": cell.workload,  # name, or pickled Workload instance
        "config": config_to_dict(cell.config),
        "scale": cell.scale,
        "verify": cell.verify,
        "seed": cell.seed,
        "timeout_s": timeout_s,
        "label": cell.display,
    }


def _run_payload(payload: dict) -> dict:
    """Worker entry point: rebuild, simulate, return a result dict."""
    timeout_s = payload.get("timeout_s")
    use_alarm = timeout_s is not None and hasattr(signal, "SIGALRM")
    if use_alarm:
        signal.signal(signal.SIGALRM, _alarm_handler)
        signal.alarm(max(1, int(timeout_s)))
    try:
        from repro.system.builder import build_system
        from repro.system.serialize import result_to_dict
        from repro.workloads.registry import get_workload

        config = config_from_dict(payload["config"])
        workload = payload["workload"]
        if isinstance(workload, str):
            workload = get_workload(workload)
        system = build_system(config)
        result = system.run_workload(
            workload,
            seed=payload["seed"],
            scale=payload["scale"],
            verify=payload["verify"],
        )
        return result_to_dict(result)
    finally:
        if use_alarm:
            signal.alarm(0)


def run_cell_inline(cell: Cell) -> SimulationResult:
    """Run one cell in this process (the serial reference path)."""
    from repro.system.builder import build_system
    from repro.workloads.registry import get_workload

    workload = cell.workload
    if isinstance(workload, str):
        workload = get_workload(workload)
    system = build_system(cell.config)
    return system.run_workload(
        workload, seed=cell.seed, scale=cell.scale, verify=cell.verify
    )


def _picklable(payload: dict) -> bool:
    try:
        pickle.dumps(payload)
        return True
    except Exception:
        return False


def run_cells(
    cells: Sequence[Cell],
    jobs: int | None = None,
    cache=None,
    timeout_s: float | None = None,
    retries: int = DEFAULT_RETRIES,
    progress: Callable[[str], None] | None = None,
    store=None,
    serve=None,
) -> list[SimulationResult]:
    """Run every cell, in input order, returning one result per cell.

    A thin client of the results store: ``store`` (a
    :class:`repro.store.ResultStore`) or ``cache`` (the legacy file
    :class:`ResultCache` — both expose the same backend surface) serves
    warm cells without simulating, ``serve`` routes execution to a running
    ``repro serve`` daemon, and the rest fans out over ``jobs`` local
    workers.  Identical duplicate cells are simulated once.
    """
    from repro.store.resolve import resolve_cells

    return resolve_cells(
        cells,
        store=store if store is not None else cache,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        progress=progress,
        serve=serve,
    )


def run_inline(
    cells: Sequence[Cell],
    pending: Sequence[int],
    results: list,
    emit: Callable[[str], None],
) -> None:
    """Serial execution of ``pending`` into ``results`` (reference path)."""
    for position, index in enumerate(pending):
        start = time.perf_counter()
        results[index] = run_cell_inline(cells[index])
        emit(
            f"[runner] {position + 1}/{len(pending)} {cells[index].display}: "
            f"simulated inline in {time.perf_counter() - start:.2f}s"
        )


def run_pool(
    cells: Sequence[Cell],
    pending: Sequence[int],
    results: list,
    jobs: int,
    timeout_s: float | None,
    retries: int,
    emit: Callable[[str], None],
) -> None:
    """Fan ``pending`` out over a process pool with retry on crash/timeout.

    Progress accounting counts each *unique* cell exactly once: a cell
    that times out or crashes and then succeeds on retry contributes one
    ``done/total`` line, and ``total`` never inflates with re-attempts.
    """
    payloads = {index: _cell_payload(cells[index], timeout_s) for index in pending}
    # Unpicklable workload instances cannot cross the process boundary;
    # run them inline rather than poisoning the pool.
    queue = []
    for index in pending:
        if _picklable(payloads[index]):
            queue.append(index)
        else:
            emit(f"[runner] {cells[index].display}: not picklable, running inline")
            results[index] = run_cell_inline(cells[index])

    attempts = dict.fromkeys(queue, 0)
    done = 0
    total = len(queue)
    while queue:
        # A fresh pool per round also recovers from BrokenProcessPool.
        with ProcessPoolExecutor(max_workers=min(jobs, len(queue))) as pool:
            futures = {pool.submit(_run_payload, payloads[i]): i for i in queue}
            queue = []
            for future in as_completed(futures):
                index = futures[future]
                cell = cells[index]
                try:
                    results[index] = result_from_dict(future.result())
                except Exception as exc:  # timeout, crash, BrokenProcessPool
                    attempts[index] += 1
                    timed_out = isinstance(exc, CellTimeout)
                    if attempts[index] > retries:
                        if timed_out:
                            raise CellError(
                                f"cell {cell.display} timed out after "
                                f"{timeout_s}s ({attempts[index]} attempt(s))"
                            ) from exc
                        raise CellError(
                            f"cell {cell.display} failed after "
                            f"{attempts[index]} attempt(s): {exc}"
                        ) from exc
                    reason = (
                        "timed out" if timed_out
                        else f"crashed ({type(exc).__name__})"
                    )
                    emit(
                        f"[runner] {cell.display}: {reason}, "
                        f"retry {attempts[index]}/{retries}"
                    )
                    queue.append(index)
                else:
                    done += 1
                    emit(f"[runner] {done}/{total} {cell.display}: simulated on pool")


def default_progress(line: str) -> None:
    """A ready-made progress sink: one line per event on stderr."""
    print(line, file=sys.stderr, flush=True)
