"""The ``repro serve`` daemon and its client.

- :class:`ServeDaemon` — localhost HTTP server owning the results store
  and a persistent worker pool, with in-flight dedup of identical cells.
- :class:`ServeClient` — resolves cell batches against a running daemon.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import cell_to_payload, parse_address, payload_to_cell
from repro.serve.server import ServeDaemon, ServeStats

__all__ = [
    "ServeClient",
    "ServeDaemon",
    "ServeError",
    "ServeStats",
    "cell_to_payload",
    "parse_address",
    "payload_to_cell",
]
