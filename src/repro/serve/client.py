"""Client for the ``repro serve`` daemon.

``ServeClient`` turns a batch of cells into results over one streamed
HTTP request, forwarding the daemon's progress lines to the caller's
``progress`` sink.  ``resolve_cells`` uses it transparently whenever a
daemon address is configured (``serve=`` argument or ``$REPRO_SERVE``).
"""

from __future__ import annotations

import http.client
import json
from typing import Callable, Sequence

from repro.runner.cells import Cell
from repro.serve.protocol import cell_to_payload, parse_address
from repro.system.apu import SimulationResult
from repro.system.serialize import result_from_dict

#: socket timeout for quick control-plane calls (health, stats)
CONTROL_TIMEOUT_S = 5.0


class ServeError(OSError):
    """The daemon reported a failure or returned a malformed response."""


class ServeClient:
    """Talks to one daemon at ``host:port`` (see ``repro serve``)."""

    def __init__(self, address: str) -> None:
        self.host, self.port = parse_address(address)

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _json_get(self, path: str) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=CONTROL_TIMEOUT_S
        )
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            data = json.loads(response.read())
            if response.status != 200:
                raise ServeError(f"GET {path} -> {response.status}: {data}")
            return data
        finally:
            conn.close()

    def health(self) -> dict:
        return self._json_get("/health")

    def stats(self) -> dict:
        return self._json_get("/stats")

    def resolve(
        self,
        cells: Sequence[Cell],
        progress: Callable[[str], None] | None = None,
        timeout_s: float | None = None,
    ) -> list[SimulationResult]:
        """Resolve ``cells`` (registry-name workloads only) on the daemon.

        Blocks until every cell is answered; the connection has no read
        timeout because cold cells legitimately simulate for a while.
        ``timeout_s`` is the *per-cell* budget enforced inside the
        daemon's workers, not a transport timeout.
        """
        if not cells:
            return []
        emit = progress or (lambda line: None)
        body = json.dumps({
            "cells": [cell_to_payload(cell) for cell in cells],
            "timeout_s": timeout_s,
        }).encode()
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=CONTROL_TIMEOUT_S)
        try:
            conn.request("POST", "/cells", body=body, headers={
                "Content-Type": "application/json",
                "Content-Length": str(len(body)),
            })
            # The connect used the control timeout; reads can stall for as
            # long as one simulation takes.  Must happen before
            # getresponse(): a close-delimited response detaches the
            # socket from the connection object.
            if conn.sock is not None:
                conn.sock.settimeout(None)
            response = conn.getresponse()
            if response.status != 200:
                raise ServeError(
                    f"POST /cells -> {response.status}: {response.read()!r}"
                )
            for raw in response:
                line = raw.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except ValueError as exc:
                    raise ServeError(f"malformed serve event: {line!r}") from exc
                kind = event.get("event")
                if kind == "progress":
                    emit(event.get("line", ""))
                elif kind == "error":
                    raise ServeError(
                        f"serve daemon failed: {event.get('message')}"
                    )
                elif kind == "done":
                    results = event["results"]
                    if len(results) != len(cells):
                        raise ServeError(
                            f"daemon answered {len(results)} of "
                            f"{len(cells)} cells"
                        )
                    return [result_from_dict(data) for data in results]
            raise ServeError("serve stream ended without a done event")
        finally:
            conn.close()


__all__ = ["ServeClient", "ServeError", "CONTROL_TIMEOUT_S"]
