"""The ``repro serve`` daemon: an always-on experiment-cell server.

One process owns the results store and a persistent worker pool; clients
POST batches of cells and read a streamed response.  Per cell:

1. **warm** — the store answers without simulating (sub-millisecond);
2. **in-flight dedup** — a cell identical to one already simulating (for
   *any* client) joins that simulation instead of starting its own: one
   run, N waiters, one store insert;
3. **cold** — the cell is sharded to the persistent
   :class:`ProcessPoolExecutor` and its result inserted into the store.

Because workers rebuild systems from serialized configs exactly like the
local runner does, a served result is bit-identical to a serial
in-process run.  The daemon binds localhost only; it is a trusted
single-machine service, not an internet-facing one.
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import Future, ProcessPoolExecutor
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.runner.cache import cell_key
from repro.runner.executor import _run_payload, effective_jobs
from repro.serve.protocol import payload_to_cell
from repro.system.serialize import result_from_dict, result_to_dict


class ServeStats:
    """Monotonic counters describing daemon activity (thread-safe)."""

    FIELDS = ("requests", "cells", "store_hits", "simulated",
              "inflight_joined", "errors")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        for name in self.FIELDS:
            setattr(self, name, 0)

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self, name, getattr(self, name) + amount)

    def snapshot(self) -> dict:
        with self._lock:
            return {name: getattr(self, name) for name in self.FIELDS}


class ServeDaemon:
    """HTTP front-end + worker pool + in-flight dedup table.

    ``port=0`` binds an ephemeral port (see :attr:`address` after
    construction) — used by tests and by ``repro serve`` with no
    explicit port.
    """

    def __init__(self, store, host: str = "127.0.0.1", port: int = 0,
                 jobs: int | None = None,
                 timeout_s: float | None = None) -> None:
        self.store = store
        self.jobs = effective_jobs(jobs)
        self.timeout_s = timeout_s
        self.stats = ServeStats()
        self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

        daemon = self

        class Handler(_ServeHandler):
            pass

        Handler.daemon = daemon
        self.httpd = ThreadingHTTPServer((host, port), Handler)

    @property
    def address(self) -> str:
        host, port = self.httpd.server_address[:2]
        return f"{host}:{port}"

    # -- lifecycle --------------------------------------------------------

    def serve_forever(self) -> None:
        self.httpd.serve_forever()

    def start_background(self) -> "ServeDaemon":
        """Run the accept loop on a daemon thread (tests, embedding)."""
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()
        return self

    def shutdown(self) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        self._pool.shutdown(wait=False, cancel_futures=True)
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None

    # -- cell resolution --------------------------------------------------

    def _claim(self, key: str, payload: dict) -> tuple[Future, bool]:
        """The future computing ``key`` — joined if one is already in
        flight, freshly submitted to the pool otherwise."""
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                return future, False
            future = self._pool.submit(_run_payload, payload)
            self._inflight[key] = future
            return future, True

    def resolve_batch(self, payloads: list[dict],
                      timeout_s: float | None, emit) -> list[dict]:
        """Resolve a batch in request order, streaming progress via
        ``emit``; returns one serialized result dict per payload."""
        self.stats.bump("cells", len(payloads))
        results: list[dict | None] = [None] * len(payloads)
        claims: list[tuple[int, str, Future, bool]] = []
        total = len(payloads)
        for index, payload in enumerate(payloads):
            cell = payload_to_cell(payload)
            key = cell_key(cell)
            hit = self.store.get(key)
            if hit is not None:
                self.stats.bump("store_hits")
                results[index] = result_to_dict(hit)
                emit(f"[serve] {index + 1}/{total} {cell.display}: store hit")
                continue
            worker_payload = dict(payload)
            worker_payload["timeout_s"] = (
                timeout_s if timeout_s is not None else self.timeout_s
            )
            future, created = self._claim(key, worker_payload)
            claims.append((index, key, future, created))
            if created:
                emit(f"[serve] {index + 1}/{total} {cell.display}: "
                     f"sharded to worker pool")
            else:
                self.stats.bump("inflight_joined")
                emit(f"[serve] {index + 1}/{total} {cell.display}: "
                     f"joined in-flight simulation")
        for index, key, future, created in claims:
            try:
                data = future.result()
            finally:
                if created:
                    # insert before unlinking so late arrivals always find
                    # the result (store hit or still-registered future)
                    try:
                        if not future.exception():
                            self.store.put(
                                key, payload_to_cell(payloads[index]),
                                result_from_dict(future.result()),
                            )
                            self.stats.bump("simulated")
                    finally:
                        with self._lock:
                            self._inflight.pop(key, None)
            results[index] = data
            emit(f"[serve] {payloads[index].get('label', key[:12])}: done")
        return results  # type: ignore[return-value]


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes: GET /health, GET /stats, POST /cells (ndjson stream)."""

    daemon: ServeDaemon  # injected per-instance class in ServeDaemon
    protocol_version = "HTTP/1.0"  # close-delimited bodies stream cleanly

    def log_message(self, *_args) -> None:  # silence per-request stderr noise
        pass

    def _send_json(self, payload: dict, status: int = 200) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        if self.path == "/health":
            self._send_json({
                "ok": True,
                "store": str(self.daemon.store.path),
                "jobs": self.daemon.jobs,
            })
        elif self.path == "/stats":
            self._send_json({
                "serve": self.daemon.stats.snapshot(),
                "store": self.daemon.store.stats(),
            })
        else:
            self._send_json({"error": f"unknown path {self.path}"}, 404)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        if self.path != "/cells":
            self._send_json({"error": f"unknown path {self.path}"}, 404)
            return
        self.daemon.stats.bump("requests")
        try:
            length = int(self.headers.get("Content-Length", "0"))
            request = json.loads(self.rfile.read(length))
            payloads = request["cells"]
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json({"error": f"bad request: {exc}"}, 400)
            return

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()

        def emit_event(event: dict) -> None:
            try:
                self.wfile.write(json.dumps(event).encode() + b"\n")
                self.wfile.flush()
            except OSError:
                pass  # client went away; keep simulating for other waiters

        try:
            results = self.daemon.resolve_batch(
                payloads,
                request.get("timeout_s"),
                lambda line: emit_event({"event": "progress", "line": line}),
            )
            emit_event({"event": "done", "results": results})
        except Exception as exc:
            self.daemon.stats.bump("errors")
            emit_event({"event": "error", "message": f"{type(exc).__name__}: {exc}"})


__all__ = ["ServeDaemon", "ServeStats"]
