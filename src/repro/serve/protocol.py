"""Wire format shared by the serve daemon and its client.

Requests and responses are plain JSON over localhost HTTP; the
``/cells`` response is newline-delimited JSON (one event object per
line) so progress streams while cells simulate:

``{"event": "progress", "line": "..."}``
    a human-readable runner progress line, forwarded live;
``{"event": "error", "index": N, "message": "..."}``
    cell N failed on the daemon (the client raises :class:`CellError`);
``{"event": "done", "results": [...]}``
    terminal event: one serialized result per requested cell, in order.

Only registry-name workloads cross the wire (a name plus a fully
serialized :class:`SystemConfig` reconstructs the cell exactly);
ad-hoc :class:`Workload` instances stay on the client and run locally.
"""

from __future__ import annotations

from repro.runner.cells import Cell
from repro.system.serialize import config_from_dict, config_to_dict


def cell_to_payload(cell: Cell) -> dict:
    """Serialize a registry-name cell for the wire."""
    if not isinstance(cell.workload, str):
        raise ValueError(
            f"only registry-name workloads can be served, got "
            f"{type(cell.workload).__name__}"
        )
    return {
        "workload": cell.workload,
        "config": config_to_dict(cell.config),
        "scale": cell.scale,
        "verify": cell.verify,
        "seed": cell.seed,
        "label": cell.display,
    }


def payload_to_cell(payload: dict) -> Cell:
    """Rebuild the exact cell a payload describes (validates the config)."""
    return Cell(
        workload=payload["workload"],
        config=config_from_dict(payload["config"]),
        scale=payload.get("scale", 1.0),
        verify=bool(payload.get("verify", False)),
        seed=payload.get("seed", 0),
        label=payload.get("label", ""),
    )


def parse_address(address: str) -> tuple[str, int]:
    """``host:port`` (with optional ``http://`` prefix) -> (host, port)."""
    address = address.strip()
    for prefix in ("http://", "https://"):
        if address.startswith(prefix):
            address = address[len(prefix):]
    address = address.rstrip("/")
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"serve address must be host:port, got {address!r}")
    return host, int(port)


__all__ = ["cell_to_payload", "payload_to_cell", "parse_address"]
