"""DMA engine: non-caching line-granular reads/writes through the directory."""

from repro.dma.engine import DmaEngine

__all__ = ["DmaEngine"]
