"""The DMA engine.

DMA engines do not cache lines and do not participate in coherence; their
reads and writes are serviced by the directory (Figure 3 of the paper),
which probes the processor caches on their behalf — in the baseline, DMA
requests broadcast probes, and DMA writes additionally probe the GPU
caches.

Transfers are line-granular descriptors (:class:`repro.workloads.trace.
DmaTransfer`), executed in order with a bounded number of outstanding line
requests; a transfer may be gated on a kernel completion handle.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.coherence.banking import DirectoryMap, as_directory_map
from repro.mem.address import LINE_BYTES, line_addr
from repro.mem.block import ZERO_LINE, LineData
from repro.protocol.messages import Message
from repro.protocol.types import MsgType, RequesterKind
from repro.sim.clock import ClockDomain
from repro.sim.component import Controller
from repro.sim.event_queue import SimulationError
from repro.workloads.trace import DmaTransfer

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network


class DmaEngine(Controller):
    kind_name = "dma"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        dir_name: "str | DirectoryMap",
        max_outstanding: int = 4,
    ) -> None:
        super().__init__(sim, name, clock)
        self.network = network
        self.dir_map = as_directory_map(dir_name)
        self.max_outstanding = max_outstanding
        self._transfers: deque[DmaTransfer] = deque()
        self._on_done: Callable[[], None] | None = None
        self._outstanding = 0
        self._lines_left: deque[tuple[str, int, int]] = deque()
        self.done = True

    # -- host interface ----------------------------------------------------------

    def run_transfers(
        self, transfers: list[DmaTransfer], on_done: Callable[[], None] | None = None
    ) -> None:
        if not self.done:
            raise SimulationError(f"{self.name} already busy")
        self._transfers = deque(transfers)
        self._on_done = on_done
        self.done = False
        self.schedule(0, self._next_transfer)

    def _next_transfer(self) -> None:
        if not self._transfers:
            self.done = True
            if self._on_done is not None:
                self._on_done()
            return
        transfer = self._transfers.popleft()

        def begin() -> None:
            base = line_addr(transfer.start_addr)
            self._lines_left = deque(
                (transfer.kind, base + i * LINE_BYTES, transfer.value)
                for i in range(transfer.lines)
            )
            self._pump()

        gate = transfer.after_kernel
        if gate is not None:
            gate.when_done(begin)
        else:
            begin()

    def _pump(self) -> None:
        while self._lines_left and self._outstanding < self.max_outstanding:
            kind, addr, value = self._lines_left.popleft()
            self._outstanding += 1
            if kind == "read":
                self.stats.inc("line_reads")
                self.network.send(
                    Message.request(
                        MsgType.DMA_RD, self.name, self.dir_map.bank_of(addr), addr,
                        RequesterKind.DMA,
                    )
                )
            else:
                self.stats.inc("line_writes")
                fill = LineData([value] * len(ZERO_LINE.words)) if value else ZERO_LINE
                self.network.send(
                    Message.request(
                        MsgType.DMA_WR, self.name, self.dir_map.bank_of(addr), addr,
                        RequesterKind.DMA, data=fill,
                    )
                )

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is not MsgType.DMA_RESP:
            raise SimulationError(f"{self.name} received unexpected {msg!r}")
        self._outstanding -= 1
        if self._lines_left:
            self._pump()
        elif self._outstanding == 0:
            self._next_transfer()

    def pending_work(self) -> str | None:
        if not self.done:
            return f"{self._outstanding} lines outstanding, {len(self._transfers)} transfers queued"
        return None
