"""GPU device: kernel queue, dispatch, and acquire/release at boundaries.

Kernels run one at a time (a single HSA queue).  Launch performs the
*acquire* (invalidate every TCP and the SQC — the TCC stays, since
directory probes keep it coherent with CPU writes); completion performs the
*release* (TCC flush/drain plus a directory Flush) before the host-visible
completion event fires.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.sqc import SqcCache
from repro.gpu.tcc import TccController
from repro.gpu.tcc_group import TccGroup
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator

_handle_counter = itertools.count(1)


class KernelHandle:
    """Host-visible completion token for a launched kernel."""

    def __init__(self, kernel: object) -> None:
        self.id = next(_handle_counter)
        self.kernel = kernel
        self.done = False
        self.finished_at: int | None = None
        self._callbacks: list[Callable[[], None]] = []

    def when_done(self, callback: Callable[[], None]) -> None:
        if self.done:
            callback()
        else:
            self._callbacks.append(callback)

    def _complete(self, now: int) -> None:
        self.done = True
        self.finished_at = now
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()


class GpuDevice(Component):
    """The GPU cluster seen from the host."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        cus: list[ComputeUnit],
        tcc: "TccController | TccGroup",
        sqc: SqcCache,
        launch_overhead_cycles: float = 200.0,
        dispatch_cycles: float = 4.0,
    ) -> None:
        super().__init__(sim, name, clock)
        if not cus:
            raise SimulationError("a GPU needs at least one CU")
        self.cus = cus
        self.tcc = tcc if isinstance(tcc, TccGroup) else TccGroup([tcc])
        self.sqc = sqc
        self.launch_overhead_cycles = launch_overhead_cycles
        self.dispatch_cycles = dispatch_cycles
        self._queue: deque[KernelHandle] = deque()
        self._running: KernelHandle | None = None

    # -- host interface --------------------------------------------------------

    def launch(self, kernel: object) -> KernelHandle:
        """Enqueue ``kernel`` (a KernelSpec-like object); returns its handle."""
        handle = KernelHandle(kernel)
        self.stats.inc("kernels_launched")
        self._queue.append(handle)
        if self._running is None:
            self._start_next()
        return handle

    def when_done(self, handle: KernelHandle, callback: Callable[[], None]) -> None:
        handle.when_done(callback)

    # -- kernel lifecycle -----------------------------------------------------------

    def _start_next(self) -> None:
        if not self._queue:
            return
        self._running = self._queue.popleft()
        kernel = self._running.kernel
        # Acquire: drop potentially-stale L1 state.
        for cu in self.cus:
            cu.tcp_invalidate_all()
        self.sqc.invalidate_all()
        workgroups = list(kernel.workgroups)
        if not workgroups:
            raise SimulationError(f"kernel {kernel!r} has no workgroups")
        self._remaining_wgs = len(workgroups)
        for index, programs in enumerate(workgroups):
            cu = self.cus[index % len(self.cus)]
            delay = self.dispatch_cycles * (index // len(self.cus) + 1)
            self.schedule(
                delay,
                lambda c=cu, p=list(programs), k=kernel: c.enqueue_workgroup(
                    p, k, self._wg_done
                ),
            )

    def _wg_done(self) -> None:
        self._remaining_wgs -= 1
        if self._remaining_wgs == 0:
            self._release()

    def _release(self) -> None:
        handle = self._running
        assert handle is not None

        def after_release() -> None:
            self.stats.inc("kernels_completed")
            self._running = None
            handle._complete(self.now)
            self._start_next()

        self.tcc.release(after_release)

    def pending_work(self) -> str | None:
        if self._running is not None:
            return f"kernel {self._running.id} running"
        if self._queue:
            return f"{len(self._queue)} kernels queued"
        return None
