"""Compute units, TCPs, LDS, and wavefronts.

A CU schedules up to ``max_wavefronts`` concurrent wavefronts (latency
hiding: while one wavefront waits on memory, others issue), each executing
a generator program of :mod:`repro.workloads.trace` ops.  Vector memory ops
are coalesced to unique lines before touching the TCP.

The TCP (Texture Cache per Pipe) is the CU-private L1: a VI cache,
write-through/no-write-allocate by default, or write-back (``WB_L1``) with
fetch-on-write and flush-on-release.  The LDS is a fixed-latency CU-local
scratchpad that does not participate in coherence.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Generator

from repro.gpu.sqc import SqcCache
from repro.gpu.tcc import TccController
from repro.gpu.tcc_group import TccGroup
from repro.mem.address import line_addr, word_index
from repro.mem.block import LineData
from repro.mem.cache_array import CacheArray
from repro.protocol.types import ViState
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.event_queue import SimulationError
from repro.workloads import trace as ops

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class GpuExecError(SimulationError):
    pass


class _Workgroup:
    """Shared state of one workgroup's wavefronts (barrier + completion)."""

    def __init__(self, size: int, on_done: Callable[[], None]) -> None:
        self.alive = size
        self.on_done = on_done
        self._at_barrier: list[Callable[[], None]] = []

    def arrive(self, resume: Callable[[], None]) -> None:
        self._at_barrier.append(resume)
        self._maybe_release()

    def wavefront_finished(self) -> None:
        self.alive -= 1
        if self.alive == 0:
            self.on_done()
        else:
            self._maybe_release()

    def _maybe_release(self) -> None:
        if self.alive > 0 and len(self._at_barrier) >= self.alive:
            waiting, self._at_barrier = self._at_barrier, []
            for resume in waiting:
                resume()


class ComputeUnit(Component):
    """One CU: wavefront slots + TCP + LDS port."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        tcc: "TccController | TccGroup",
        sqc: SqcCache,
        tcp_geometry: tuple[int, int] = (16 * 2**10, 16),
        tcp_latency: float = 4.0,
        tcp_writeback: bool = False,
        lds_latency: float = 2.0,
        max_wavefronts: int = 8,
        issue_cycles: float = 1.0,
    ) -> None:
        super().__init__(sim, name, clock)
        self.tcc = tcc if isinstance(tcc, TccGroup) else TccGroup([tcc])
        self.sqc = sqc
        self.tcp = CacheArray.from_geometry(*tcp_geometry)
        self.tcp_latency = tcp_latency
        self.tcp_writeback = tcp_writeback
        self.lds_latency = lds_latency
        self.max_wavefronts = max_wavefronts
        self.issue_cycles = issue_cycles
        self._next_issue = 0
        self._running = 0
        self._wg_queue: deque[tuple[list, object, Callable[[], None]]] = deque()
        self._wave_seq = 0

    # -- workgroup scheduling ---------------------------------------------------

    def enqueue_workgroup(
        self, programs: list, kernel: object, on_done: Callable[[], None]
    ) -> None:
        if not programs:
            raise GpuExecError(f"{self.name}: empty workgroup")
        self._wg_queue.append((programs, kernel, on_done))
        self._pump()

    def _pump(self) -> None:
        while self._wg_queue:
            programs, kernel, on_done = self._wg_queue[0]
            if self._running + len(programs) > self.max_wavefronts and self._running:
                return  # wait for slots (a too-large WG alone is always admitted)
            self._wg_queue.popleft()
            group = _Workgroup(len(programs), on_done)
            for factory in programs:
                self._wave_seq += 1
                wave = Wavefront(
                    self, f"{self.name}.wf{self._wave_seq}", factory(), group, kernel
                )
                self._running += 1
                wave.start()

    def _wavefront_done(self) -> None:
        self._running -= 1
        self._pump()

    # -- issue port ----------------------------------------------------------------

    def issue_delay_ticks(self) -> int:
        """Claim the CU's single issue port (1 op per cycle)."""
        start = max(self.now, self._next_issue)
        self._next_issue = start + self.clock.cycles_to_ticks(self.issue_cycles)
        return start - self.now

    # -- TCP ---------------------------------------------------------------------------

    def tcp_load(self, line: int, callback: Callable[[LineData], None]) -> None:
        cached = self.tcp.lookup(line)
        if cached is not None:
            self.stats.inc("tcp_hits")
            self.schedule(self.tcp_latency, lambda: callback(cached.data))
            return
        self.stats.inc("tcp_misses")

        def on_fill(data: LineData) -> None:
            self._tcp_install(line, data)
            callback(data)

        self.tcc.of(line).fetch(line, on_fill)

    def tcp_store(
        self, line: int, updates: dict[int, int], callback: Callable[[], None]
    ) -> None:
        cached = self.tcp.lookup(line)
        if self.tcp_writeback:
            if cached is not None:
                self._tcp_dirty_words(cached, updates)
                self.schedule(self.tcp_latency, callback)
                return

            def on_fill(data: LineData) -> None:
                # Fetch-on-write: install, then apply the store on top.
                self._tcp_install(line, data)
                filled = self.tcp.lookup(line)
                assert filled is not None
                self._tcp_dirty_words(filled, updates)
                callback()

            self.tcc.of(line).fetch(line, on_fill)
            return
        # Write-through, no write-allocate: update a present copy, forward.
        if cached is not None:
            cached.data = _apply(cached.data, updates)
        self.tcc.of(line).write(line, updates, callback)

    @staticmethod
    def _tcp_dirty_words(cached, updates: dict[int, int]) -> None:
        """Apply a store, tracking which words this TCP dirtied so flushes
        and evictions write back only those (never clobbering other
        agents' words in falsely-shared lines)."""
        cached.data = _apply(cached.data, updates)
        cached.dirty = True
        if cached.meta is None:
            cached.meta = set()
        cached.meta.update(updates.keys())

    def _tcp_install(self, line: int, data: LineData) -> None:
        existing = self.tcp.lookup(line)
        if existing is not None:
            existing.data = data
            return
        victim = self.tcp.choose_victim(line)
        if victim.valid and victim.dirty:
            self.stats.inc("tcp_dirty_evictions")
            snapshot = self.tcp.invalidate(victim.addr)
            words = snapshot.meta or set(range(len(snapshot.data.words)))
            self.tcc.of(snapshot.addr).write(
                snapshot.addr,
                {w: snapshot.data.word(w) for w in words},
                lambda: None,
            )
        self.tcp.install(line, state=ViState.V, data=data, dirty=False)

    def tcp_flush(self, callback: Callable[[], None]) -> None:
        """Write back dirty TCP lines (WB_L1) into the TCC, then callback."""
        if not self.tcp_writeback:
            callback()
            return
        dirty = [c for c in self.tcp.iter_valid() if c.dirty]
        remaining = len(dirty)
        if remaining == 0:
            callback()
            return

        def one_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                callback()

        for cached in dirty:
            words = cached.meta or set(range(len(cached.data.words)))
            cached.dirty = False
            cached.meta = None
            self.stats.inc("tcp_flush_writebacks")
            self.tcc.of(cached.addr).write(
                cached.addr, {w: cached.data.word(w) for w in words}, one_done
            )

    def tcp_invalidate_all(self) -> None:
        for cached in list(self.tcp.iter_valid()):
            if cached.dirty:
                self.stats.inc("tcp_dropped_dirty")
            self.tcp.invalidate(cached.addr)

    def pending_work(self) -> str | None:
        if self._running or self._wg_queue:
            return f"{self._running} wavefronts running, {len(self._wg_queue)} WGs queued"
        return None


class Wavefront:
    """One wavefront executing a generator program on a CU."""

    def __init__(
        self, cu: ComputeUnit, name: str, program: Generator, group: _Workgroup,
        kernel: object,
    ) -> None:
        self.cu = cu
        self.name = name
        self.program = program
        self.group = group
        self.kernel = kernel
        self._op_count = 0
        self._code_cursor = 0

    def start(self) -> None:
        self.cu.schedule(0, lambda: self._advance(None))

    # -- program loop -------------------------------------------------------------

    def _advance(self, result: object) -> None:
        try:
            op = self.program.send(result)
        except StopIteration:
            self.group.wavefront_finished()
            self.cu._wavefront_done()
            return
        self.cu.stats.inc("wave_ops")
        self._maybe_ifetch(lambda: self._issue(op))

    def _maybe_ifetch(self, then: Callable[[], None]) -> None:
        code = getattr(self.kernel, "code_addrs", ())
        interval = getattr(self.kernel, "ifetch_interval", 0)
        if not code or interval <= 0:
            then()
            return
        self._op_count += 1
        if self._op_count % interval:
            then()
            return
        addr = code[self._code_cursor % len(code)]
        self._code_cursor += 1
        self.cu.sqc.fetch(addr, then)

    def _issue(self, op: object) -> None:
        delay = self.cu.issue_delay_ticks()
        self.cu.sim.events.schedule_after(delay, lambda: self._dispatch(op))

    # -- op dispatch -----------------------------------------------------------------

    def _dispatch(self, op: object) -> None:
        if isinstance(op, ops.Think):
            self.cu.schedule(op.cycles, lambda: self._advance(None))
        elif isinstance(op, ops.Load):
            self._vload([op.addr], single=True)
        elif isinstance(op, ops.VLoad):
            self._vload(list(op.addrs), single=False)
        elif isinstance(op, ops.Store):
            self._vstore([op.addr], [op.value])
        elif isinstance(op, ops.VStore):
            values = op.values
            if isinstance(values, int):
                values = [values] * len(op.addrs)
            self._vstore(list(op.addrs), list(values))
        elif isinstance(op, ops.AtomicRMW):
            line = line_addr(op.addr)
            self.cu.tcc.of(line).atomic(
                line, word_index(op.addr), op.op, op.operand,
                op.compare, op.scope, self._advance,
            )
        elif isinstance(op, ops.LdsAccess):
            self.cu.stats.inc("lds_accesses", op.count)
            self.cu.schedule(self.cu.lds_latency * op.count, lambda: self._advance(None))
        elif isinstance(op, ops.WgBarrier):
            self.group.arrive(lambda: self.cu.schedule(0, lambda: self._advance(None)))
        elif isinstance(op, ops.AcquireFence):
            self._acquire()
        elif isinstance(op, ops.ReleaseFence):
            self._release()
        else:
            raise GpuExecError(f"{self.name}: GPU cannot execute {op!r}")

    def _vload(self, addrs: list[int], single: bool) -> None:
        lines = sorted({line_addr(a) for a in addrs})
        results: dict[int, LineData] = {}

        def on_line(line: int, data: LineData) -> None:
            results[line] = data
            if len(results) < len(lines):
                return
            values = tuple(
                results[line_addr(a)].word(word_index(a)) for a in addrs
            )
            self._advance(values[0] if single else values)

        self.cu.stats.inc("vloads")
        for line in lines:
            self.cu.tcp_load(line, lambda data, ln=line: on_line(ln, data))

    def _vstore(self, addrs: list[int], values: list[int]) -> None:
        if len(addrs) != len(values):
            raise GpuExecError(f"{self.name}: VStore addr/value length mismatch")
        per_line: dict[int, dict[int, int]] = {}
        for addr, value in zip(addrs, values):
            per_line.setdefault(line_addr(addr), {})[word_index(addr)] = value
        remaining = len(per_line)

        def one_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                self._advance(None)

        self.cu.stats.inc("vstores")
        for line, updates in per_line.items():
            self.cu.tcp_store(line, updates, one_done)

    def _acquire(self) -> None:
        def after_flush() -> None:
            self.cu.tcp_invalidate_all()
            self.cu.schedule(1, lambda: self._advance(None))

        self.cu.tcp_flush(after_flush)

    def _release(self) -> None:
        def after_tcp() -> None:
            if self.cu.tcc.writeback:
                self.cu.tcc.flush(lambda: self._advance(None))
            else:
                self.cu.tcc.drain(lambda: self._advance(None))  # all banks

        self.cu.tcp_flush(after_tcp)


def _apply(data: LineData, updates: dict[int, int]) -> LineData:
    for index, value in updates.items():
        data = data.with_word(index, value)
    return data
