"""GPU cluster: CUs with TCPs, the shared TCC, SQC, LDS, and kernel queue.

The cache model follows VIPER (§II-C of the paper): TCP and TCC are simple
Valid/Invalid caches.  The TCC supports write-through (default) and
write-back (``WB_L2``) configurations; so does the TCP (``WB_L1``).  The
TCC never forwards data on probes but invalidates itself; device-scope
(GLC) atomics execute at the TCC, system-scope (SLC) atomics bypass it to
the directory.  Kernel launch performs the acquire (TCP invalidation) and
kernel completion the release (TCC flush + directory Flush).
"""

from repro.gpu.compute_unit import ComputeUnit
from repro.gpu.gpu_device import GpuDevice, KernelHandle
from repro.gpu.sqc import SqcCache
from repro.gpu.tcc import TccController

__all__ = ["ComputeUnit", "GpuDevice", "KernelHandle", "SqcCache", "TccController"]
