"""The Sequencer Cache — the GPU's read-only instruction cache.

A simple VI cache shared by the CUs; misses refill through the TCC (which
in turn fetches from the directory).  Kernel code is immutable during a
launch, so the SQC never needs invalidation for correctness; it is still
dropped at kernel launch (new code may live at reused addresses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.gpu.tcc import TccController
from repro.gpu.tcc_group import TccGroup
from repro.mem.address import line_addr
from repro.mem.cache_array import CacheArray
from repro.protocol.types import ViState
from repro.sim.clock import ClockDomain
from repro.sim.component import Component

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class SqcCache(Component):
    """Shared GPU instruction cache."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        tcc: "TccController | TccGroup",
        geometry: tuple[int, int] = (32 * 2**10, 8),
        latency_cycles: float = 1.0,
    ) -> None:
        super().__init__(sim, name, clock)
        self.tcc = tcc if isinstance(tcc, TccGroup) else TccGroup([tcc])
        self.array = CacheArray.from_geometry(*geometry)
        self.latency_cycles = latency_cycles

    def fetch(self, addr: int, callback: Callable[[], None]) -> None:
        line = line_addr(addr)
        if self.array.lookup(line) is not None:
            self.stats.inc("hits")
            self.schedule(self.latency_cycles, callback)
            return
        self.stats.inc("misses")

        def on_fill(_data) -> None:
            self.array.install(line, state=ViState.V)
            callback()

        self.tcc.of(line).fetch(line, on_fill)

    def invalidate_all(self) -> None:
        for cached in list(self.array.iter_valid()):
            self.array.invalidate(cached.addr)
