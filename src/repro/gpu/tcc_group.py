"""Address-interleaved group of TCC banks.

Table III configures one TCC, but the paper consistently writes "TCC(s)" —
real GPUs bank the TCC by address.  A :class:`TccGroup` routes line
addresses to banks the same way the directory map does, and fans
group-wide operations (drain/flush/release/invalidate) to every bank.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.mem.address import LINE_BYTES

if TYPE_CHECKING:
    from repro.gpu.tcc import TccController


class TccGroup:
    """Routes per-line traffic to TCC banks; fans out fences."""

    def __init__(self, banks: list["TccController"]) -> None:
        if not banks:
            raise ValueError("a TCC group needs at least one bank")
        self.banks = list(banks)

    def of(self, line: int) -> "TccController":
        return self.banks[(line // LINE_BYTES) % len(self.banks)]

    def __len__(self) -> int:
        return len(self.banks)

    def __iter__(self):
        return iter(self.banks)

    @property
    def writeback(self) -> bool:
        return self.banks[0].writeback

    # -- fan-out operations --------------------------------------------------

    def _fan_out(self, operation: str, callback: Callable[[], None]) -> None:
        remaining = len(self.banks)

        def one_done() -> None:
            nonlocal remaining
            remaining -= 1
            if remaining == 0:
                callback()

        for bank in self.banks:
            getattr(bank, operation)(one_done)

    def drain(self, callback: Callable[[], None]) -> None:
        self._fan_out("drain", callback)

    def flush(self, callback: Callable[[], None]) -> None:
        self._fan_out("flush", callback)

    def release(self, callback: Callable[[], None]) -> None:
        self._fan_out("release", callback)

    def invalidate_all(self) -> None:
        for bank in self.banks:
            bank.invalidate_all()
