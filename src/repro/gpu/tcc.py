"""The Texture Cache per Channel — the GPU's shared L2.

A Valid/Invalid cache with optional dirty bits (write-back mode, ``WB_L2``).
Behaviour per §II-C of the paper:

- Misses fetch lines from the directory with ``RdBlk``; if exclusive status
  is granted it is ignored.
- Write-through mode: stores are forwarded to the directory as word-masked
  ``WT`` requests; a cached copy is updated in place but stores never
  allocate.
- Write-back mode: stores allocate (fetch-on-write) and set per-word dirty
  masks; the dirty words are written back as word-masked ``WT`` requests on
  eviction (``is_writeback``: the line is relinquished) and on flush
  (kernel release / store-release: the clean line is retained).
- Device-scope (GLC) atomics execute here; system-scope (SLC) atomics
  bypass (non-inclusive behaviour) and run at the directory.
- Probes never extract *line* data (§II-C); an invalidating probe drops the
  line, but in write-back mode the word-granular dirty mask (the gem5
  byte-mask equivalent) rides in the ack so modified words are never lost
  under false sharing — see DESIGN.md for this substitution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.coherence.banking import DirectoryMap, as_directory_map
from repro.coherence.engine import ProtocolFSM, TransitionTable
from repro.mem.block import LineData
from repro.mem.cache_array import CacheArray
from repro.protocol.atomics import AtomicOp, apply_atomic
from repro.protocol.messages import Message
from repro.protocol.types import MsgType, ProbeType, RequesterKind, ViState
from repro.sim.clock import ClockDomain
from repro.sim.component import Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network


class TccError(SimulationError):
    pass


@dataclass
class _Mshr:
    waiters: list[Callable[[LineData], None]] = field(default_factory=list)


# -- VI protocol table --------------------------------------------------------

EV_FILL = "Fill"              #: directory data response (or refresh) installs
EV_PRB_INV = "PrbInv"
EV_PRB_DOWN = "PrbDown"
EV_EVICT = "Evict"            #: dirty capacity eviction (write-back + drop)
EV_SLC_BYPASS = "SlcBypass"   #: system-scope atomic bypasses the local copy
EV_FLUSH_LINE = "FlushLine"   #: flush cleans the line but retains it
EV_INV_ALL = "InvAll"         #: full-cache invalidate drops the line

_PROBE_EVENT = {ProbeType.INVALIDATE: EV_PRB_INV, ProbeType.DOWNGRADE: EV_PRB_DOWN}


def build_tcc_table() -> TransitionTable:
    """The TCC's Valid/Invalid table (§II-C), per-line.

    Stores are not transitions — they update data (and, in WB mode, the
    per-word dirty mask) without changing the V/I state.  Clean capacity
    displacement happens inside ``CacheArray.install`` and is likewise not
    a declared event (no message leaves the TCC for it).
    """
    V, I = ViState.V, ViState.I
    T = TccController
    table = TransitionTable(
        "tcc-vi",
        (I, V),
        (EV_FILL, EV_PRB_INV, EV_PRB_DOWN, EV_EVICT, EV_SLC_BYPASS,
         EV_FLUSH_LINE, EV_INV_ALL),
        initial=I,
    )
    table.on((I, V), EV_FILL, V, action=T._act_fill,
             note="miss fill allocates (evicting a dirty victim first); a "
                  "hit refreshes the data in place")
    table.on(V, EV_PRB_INV, I, action=T._act_probe_inv,
             note="drop the line; modified words ride in the ack (no line "
                  "data forwarding, §II-C)")
    table.on(I, EV_PRB_INV, I, action=T._act_probe_noop,
             note="no copy: ack had_copy=False")
    table.on(I, EV_PRB_DOWN, I, action=T._act_probe_noop,
             note="VI has nothing to downgrade: ack and keep state")
    table.on(V, EV_PRB_DOWN, V, action=T._act_probe_noop)
    table.on(V, EV_EVICT, I, action=T._act_evict,
             note="dirty capacity eviction: word-masked write-back (WT "
                  "is_writeback) relinquishes the line")
    table.on(V, EV_SLC_BYPASS, I, action=T._act_slc_bypass,
             note="SLC atomic bypass: invalidate, carrying dirty words along")
    table.on(V, EV_FLUSH_LINE, V, action=T._act_flush_line,
             note="flush writes dirty words back but retains the clean line")
    table.on(V, EV_INV_ALL, I, action=T._act_inv_all,
             note="full-cache invalidate (dirty data dropped by design)")
    table.illegal(I, (EV_EVICT, EV_SLC_BYPASS, EV_FLUSH_LINE, EV_INV_ALL),
                  note="these events only exist for resident lines")
    return table


class TccController(Controller):
    """Network endpoint of kind ``"tcc"``."""

    kind_name = "tcc"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        dir_name: "str | DirectoryMap",
        geometry: tuple[int, int] = (256 * 2**10, 16),
        latency_cycles: float = 8.0,
        writeback: bool = False,
        service_cycles: float = 1.0,
    ) -> None:
        super().__init__(sim, name, clock, service_cycles=service_cycles)
        self.network = network
        self.dir_map = as_directory_map(dir_name)
        self.array = CacheArray.from_geometry(*geometry)
        self.latency_cycles = latency_cycles
        self._latency_ticks = clock.cycles_to_ticks(latency_cycles)
        self.writeback = writeback
        self._mshrs: dict[int, _Mshr] = {}
        #: WT acks awaited, FIFO per address.
        self._wt_pending: dict[int, deque[Callable[[], None]]] = {}
        self._wt_outstanding = 0
        self._drain_waiters: list[Callable[[], None]] = []
        self._atomic_pending: dict[int, deque[Callable[[int], None]]] = {}
        #: FIFO of in-flight fences: [outstanding bank acks, callback]
        self._flush_pending: list[list] = []
        #: per-line VI FSMs; lines at rest in I carry no entry
        self._fsms: dict[int, ProtocolFSM] = {}

    def fsm_tables(self):
        """The declared tables this controller dispatches through."""
        return (_TCC_TABLE,)

    # -- protocol FSM ----------------------------------------------------------

    def _fire(self, line: int, event: str, prev, ctx=None):
        """Dispatch one VI event for ``line``; ``prev`` is derived from the
        array (the authoritative source) so the FSM can never drift."""
        fsm = self._fsms.get(line)
        if fsm is None:
            fsm = self._fsms[line] = ProtocolFSM(_TCC_TABLE, prev)
        else:
            fsm.state = prev
        nxt = fsm.fire(event, self, line, ctx)
        if nxt is ViState.I:
            del self._fsms[line]
        return nxt

    # -- CU-facing interface ----------------------------------------------------

    def _claim(self) -> int:
        start = max(self.now, self._next_free)
        self._next_free = start + self._service_ticks
        return start + self._latency_ticks

    def fetch(self, line: int, callback: Callable[[LineData], None]) -> None:
        """Read a full line (TCP miss or SQC miss path)."""
        ready = self._claim()

        def run() -> None:
            cached = self.array.lookup(line)
            if cached is not None:
                self.stats.inc("hits")
                callback(cached.data)
                return
            self.stats.inc("misses")
            mshr = self._mshrs.get(line)
            if mshr is not None:
                mshr.waiters.append(callback)
                return
            self._mshrs[line] = _Mshr(waiters=[callback])
            self.network.send(
                Message.request(
                    MsgType.RDBLK, self.name, self.dir_map.bank_of(line), line,
                    RequesterKind.TCC
                )
            )

        self.sim.events.schedule(ready, run)

    def write(
        self, line: int, updates: dict[int, int], callback: Callable[[], None]
    ) -> None:
        """A (coalesced) store from a TCP.  ``callback`` fires when the
        store retires for the wavefront: write-through mode retires once the
        WT is issued (store-buffer semantics; use :meth:`drain` for
        visibility), write-back mode once the TCC line is written."""
        ready = self._claim()

        def run() -> None:
            self.stats.inc("writes")
            if self.writeback:
                self._write_back_mode(line, updates, callback)
            else:
                cached = self.array.lookup(line)
                if cached is not None:
                    cached.data = _apply(cached.data, updates)
                self._send_wt(line, word_updates=dict(updates))
                callback()

        self.sim.events.schedule(ready, run)

    def _write_back_mode(
        self, line: int, updates: dict[int, int], callback: Callable[[], None]
    ) -> None:
        cached = self.array.lookup(line)
        if cached is not None:
            self._dirty_words(cached, updates)
            callback()
            return
        # Fetch-on-write: allocate the full line, then apply.
        def on_fill(_data: LineData) -> None:
            filled = self.array.lookup(line)
            if filled is None:  # probed away between fill and apply: refetch
                self._write_back_mode(line, updates, callback)
                return
            self._dirty_words(filled, updates)
            callback()

        self.fetch(line, on_fill)

    @staticmethod
    def _dirty_words(cached, updates: dict[int, int]) -> None:
        """Apply a store and track exactly which words this cache dirtied —
        the word-granular analogue of gem5 VIPER's byte masks, needed so
        write-backs and probe forwards never clobber other agents' words."""
        cached.data = _apply(cached.data, updates)
        cached.dirty = True
        if cached.meta is None:
            cached.meta = set()
        cached.meta.update(updates.keys())

    def atomic(
        self,
        line: int,
        word: int,
        op: AtomicOp,
        operand: int,
        compare: int,
        scope: str,
        callback: Callable[[int], None],
    ) -> None:
        """A GPU atomic: GLC executes here, SLC at the directory."""
        ready = self._claim()

        def run() -> None:
            if scope == "slc":
                self._slc_atomic(line, word, op, operand, compare, callback)
            elif scope == "glc":
                self._glc_atomic(line, word, op, operand, compare, callback)
            else:
                raise TccError(f"unknown atomic scope {scope!r}")

        self.sim.events.schedule(ready, run)

    def _slc_atomic(self, line, word, op, operand, compare, callback) -> None:
        self.stats.inc("slc_atomics")
        # SLC requests bypass the TCC (non-inclusive behaviour): drop any
        # local copy so we never serve stale data for this line.
        carried: dict[int, int] | None = None
        if self.array.lookup(line, touch=False) is not None:
            ctx: dict = {"line": line}
            self._fire(line, EV_SLC_BYPASS, ViState.V, ctx)
            carried = ctx.get("carried")
        self._atomic_pending.setdefault(line, deque()).append(callback)
        self.network.send(
            Message.request(
                MsgType.ATOMIC, self.name, self.dir_map.bank_of(line), line,
                RequesterKind.TCC,
                atomic_op=op, operand=operand, compare=compare, word=word,
                word_updates=carried,
            )
        )

    def _glc_atomic(self, line, word, op, operand, compare, callback) -> None:
        self.stats.inc("glc_atomics")
        cached = self.array.lookup(line)
        if cached is None:
            self.fetch(
                line,
                lambda _d: self._glc_atomic(line, word, op, operand, compare, callback),
            )
            return
        new_data, old = apply_atomic(cached.data, word, op, operand, compare)
        if self.writeback:
            self._dirty_words(cached, {word: new_data.word(word)})
        else:
            cached.data = new_data
            self._send_wt(line, word_updates={word: new_data.word(word)})
        callback(old)

    # -- visibility: drain / flush / release ------------------------------------------

    def drain(self, callback: Callable[[], None]) -> None:
        """Fire when all outstanding WTs have been acked by the directory."""
        if self._wt_outstanding == 0:
            callback()
        else:
            self._drain_waiters.append(callback)

    def flush(self, callback: Callable[[], None]) -> None:
        """Write back every dirty line (WB mode), then drain."""
        if self.writeback:
            for cached in self.array.iter_valid():
                if cached.dirty:
                    self._fire(cached.addr, EV_FLUSH_LINE, ViState.V, cached)
        self.drain(callback)

    def _act_flush_line(self, cached) -> None:
        # A flush *cleans* the line but retains it, so the directory must
        # keep tracking the TCC (streaming-WT semantics, is_writeback=False);
        # only capacity evictions relinquish the line.
        self.stats.inc("flush_writebacks")
        words = cached.meta or set(range(len(cached.data.words)))
        self._send_wt(
            cached.addr,
            word_updates={w: cached.data.word(w) for w in words},
        )
        cached.dirty = False
        cached.meta = None
        return None  # stays V

    def release(self, callback: Callable[[], None]) -> None:
        """Kernel-release: flush, then a directory Flush as the fence."""

        def after_flush() -> None:
            banks = self.dir_map.all_banks()
            self._flush_pending.append([len(banks), callback])
            for bank in banks:
                self.network.send(
                    Message.request(
                        MsgType.FLUSH, self.name, bank, 0, RequesterKind.TCC
                    )
                )

        self.flush(after_flush)

    def invalidate_all(self) -> None:
        """Drop every line (clean or dirty) — full-cache invalidate."""
        for cached in list(self.array.iter_valid()):
            self._fire(cached.addr, EV_INV_ALL, ViState.V, cached)

    def _act_inv_all(self, cached) -> ViState:
        if cached.dirty:
            self.stats.inc("dropped_dirty_on_invalidate")
        self.array.invalidate(cached.addr)
        return ViState.I

    # -- WT plumbing -----------------------------------------------------------------------

    def _send_wt(
        self,
        line: int,
        word_updates: dict[int, int] | None = None,
        data: LineData | None = None,
        is_writeback: bool = False,
        on_ack: Callable[[], None] | None = None,
    ) -> None:
        self._wt_outstanding += 1
        self._wt_pending.setdefault(line, deque()).append(on_ack or (lambda: None))
        self.network.send(
            Message.request(
                MsgType.WT, self.name, self.dir_map.bank_of(line), line,
                RequesterKind.TCC,
                data=data, word_updates=word_updates, is_writeback=is_writeback,
            )
        )

    # -- network messages ---------------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MsgType.DATA_RESP:
            self._on_fill(msg)
        elif msg.mtype is MsgType.WT_ACK:
            self._on_wt_ack(msg)
        elif msg.mtype is MsgType.ATOMIC_RESP:
            self._on_atomic_resp(msg)
        elif msg.mtype is MsgType.FLUSH_ACK:
            self._on_flush_ack(msg)
        elif msg.mtype is MsgType.PROBE:
            self._on_probe(msg)
        else:
            raise TccError(f"{self.name} received unexpected {msg!r}")

    def _on_fill(self, msg: Message) -> None:
        mshr = self._mshrs.pop(msg.addr, None)
        if mshr is None:
            raise TccError(f"{self.name}: fill without MSHR: {msg!r}")
        if msg.data is None:
            raise TccError(f"{self.name}: fill without data: {msg!r}")
        self._install(msg.addr, msg.data)
        for waiter in mshr.waiters:
            waiter(msg.data)

    def _install(self, line: int, data: LineData) -> None:
        prev = ViState.I if self.array.lookup(line) is None else ViState.V
        self._fire(line, EV_FILL, prev, (line, data))

    def _act_fill(self, ctx: tuple) -> ViState:
        line, data = ctx
        existing = self.array.lookup(line)
        if existing is not None:
            existing.data = data
            return ViState.V
        victim = self.array.choose_victim(line)
        if victim.valid and victim.dirty:
            # Capacity eviction of a dirty line: write back its dirty words.
            self._fire(victim.addr, EV_EVICT, ViState.V, victim.addr)
        _, displaced = self.array.install(line, state=ViState.V, data=data,
                                          dirty=False)
        if displaced is not None:
            # Clean capacity displacement: silent (no protocol event), but
            # the displaced line's FSM bookkeeping must not leak.
            self._fsms.pop(displaced.addr, None)
        return ViState.V

    def _act_evict(self, addr: int) -> ViState:
        self.stats.inc("dirty_evictions")
        snapshot = self.array.invalidate(addr)
        words = snapshot.meta or set(range(len(snapshot.data.words)))
        self._send_wt(
            snapshot.addr,
            word_updates={w: snapshot.data.word(w) for w in words},
            is_writeback=True,
        )
        return ViState.I

    def _act_slc_bypass(self, ctx: dict) -> ViState:
        snapshot = self.array.invalidate(ctx["line"])
        if snapshot.dirty and snapshot.meta:
            # carry our dirty words along so the bypass does not lose them
            carried = {w: snapshot.data.word(w) for w in snapshot.meta}
            self.stats.inc("dirty_words_carried_on_bypass", len(carried))
            ctx["carried"] = carried
        return ViState.I

    def _on_wt_ack(self, msg: Message) -> None:
        queue = self._wt_pending.get(msg.addr)
        if not queue:
            raise TccError(f"{self.name}: WT ack without pending WT: {msg!r}")
        on_ack = queue.popleft()
        if not queue:
            del self._wt_pending[msg.addr]
        self._wt_outstanding -= 1
        on_ack()
        if self._wt_outstanding == 0 and self._drain_waiters:
            waiters, self._drain_waiters = self._drain_waiters, []
            for waiter in waiters:
                waiter()

    def _on_atomic_resp(self, msg: Message) -> None:
        queue = self._atomic_pending.get(msg.addr)
        if not queue:
            raise TccError(f"{self.name}: atomic resp without request: {msg!r}")
        callback = queue.popleft()
        if not queue:
            del self._atomic_pending[msg.addr]
        callback(msg.result)

    def _on_flush_ack(self, msg: Message) -> None:
        if not self._flush_pending:
            raise TccError(f"{self.name}: flush ack without flush: {msg!r}")
        fence = self._flush_pending[0]
        fence[0] -= 1
        if fence[0] == 0:
            self._flush_pending.pop(0)
            fence[1]()

    def _on_probe(self, msg: Message) -> None:
        self.stats.inc("probes_received")
        event = _PROBE_EVENT.get(msg.probe_type)
        if event is None:
            raise TccError(f"{self.name}: bad probe {msg!r}")
        cached = self.array.lookup(msg.addr, touch=False)
        prev = ViState.I if cached is None else ViState.V
        self._fire(msg.addr, event, prev, (msg, cached))

    def _act_probe_inv(self, ctx: tuple) -> ViState:
        msg, cached = ctx
        forwarded: dict[int, int] | None = None
        if cached.dirty and cached.meta:
            # The TCC never forwards *line* data on probes (§II-C), but
            # its word-granular dirty mask must not be lost under false
            # sharing: the modified words ride in the ack (the gem5
            # byte-mask equivalent; see DESIGN.md).
            forwarded = {w: cached.data.word(w) for w in cached.meta}
            self.stats.inc("dirty_words_forwarded_on_probe", len(forwarded))
        self.array.invalidate(msg.addr)
        self.network.send(
            Message.probe_ack(
                self.name, msg.src, msg.addr, msg.tid, had_copy=True,
                word_updates=forwarded,
            )
        )
        return ViState.I

    def _act_probe_noop(self, ctx: tuple) -> None:
        msg, cached = ctx
        self.network.send(
            Message.probe_ack(
                self.name, msg.src, msg.addr, msg.tid,
                had_copy=cached is not None,
            )
        )
        return None  # state unchanged

    # -- bookkeeping -----------------------------------------------------------------------------

    def peek_word(self, addr: int) -> int | None:
        from repro.mem.address import line_addr, word_index

        cached = self.array.lookup(line_addr(addr), touch=False)
        if cached is None:
            return None
        return cached.data.word(word_index(addr))

    def pending_work(self) -> str | None:
        parts = []
        if self._mshrs:
            parts.append(f"{len(self._mshrs)} MSHRs")
        if self._wt_outstanding:
            parts.append(f"{self._wt_outstanding} WTs in flight")
        if self._atomic_pending:
            parts.append("atomics in flight")
        if self._flush_pending:
            parts.append("flush in flight")
        return ", ".join(parts) or None


def _apply(data: LineData, updates: dict[int, int]) -> LineData:
    for index, value in updates.items():
        data = data.with_word(index, value)
    return data


#: shared by every TCC (immutable once built; built here because the rows
#: bind the action methods above)
_TCC_TABLE = build_tcc_table()
