"""Command-line interface: ``python -m repro``.

Subcommands:

- ``run`` — run one workload on one policy, print the headline metrics
  (optionally energy breakdown, stats dump, protocol trace tail).
- ``compare`` — run one workload across several policies, print a table.
- ``figures`` — regenerate the paper's figures (Figures 4-7 + tables).
- ``bench`` — regenerate figures through the results store (``--jobs``,
  ``--no-cache``, ``--clear-cache``, ``--serve``); warm cells are
  sub-millisecond store lookups.
- ``store`` — administer the persistent SQLite results store
  (``stats``, ``gc``, ``clear``, ``export``/``import`` snapshots,
  ``migrate`` a legacy ``.repro_cache/`` tree).
- ``serve`` — run the always-on cell server: shards cold cells over a
  persistent worker pool, dedups in-flight identical cells, answers
  warm cells from the store.
- ``lint-protocol`` — statically lint every shipped transition table
  (unhandled pairs, unreachable states, dead transitions).
- ``litmus`` — run the litmus suite across schedules and policy variants
  (``--all``), minimize failures to replayable artifacts (``--minimize``),
  and replay dumped artifacts (``--replay``).
- ``fuzz`` — coverage-guided litmus fuzzing: ``run`` a budgeted campaign,
  ``coverage`` reports per-policy table coverage (with a CI baseline
  gate), ``corpus`` lists/replays/re-minimizes the saved inputs.
- ``list`` — list bundled workloads and policy presets.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.energy import energy_comparison, estimate_energy
from repro.analysis.experiments import (
    ExperimentMatrix,
    figure5_reduction,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    table2_text,
    table3_text,
)
from repro.analysis.report import format_table
from repro.coherence.policies import PRESETS
from repro.system.builder import build_system
from repro.system.config import SystemConfig
from repro.workloads.registry import available_workloads, get_workload

CONFIGS = {
    "benchmark": SystemConfig.benchmark,
    "small": SystemConfig.small,
    "ryzen": SystemConfig.ryzen_2200g,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Heterogeneous system coherence reproduction (IISWC 2024)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one workload on one policy")
    run_p.add_argument("workload", choices=available_workloads())
    run_p.add_argument("--policy", default="baseline", choices=sorted(PRESETS))
    run_p.add_argument("--config", default="benchmark", choices=sorted(CONFIGS))
    run_p.add_argument("--scale", type=float, default=1.0)
    run_p.add_argument("--seed", type=int, default=0)
    run_p.add_argument("--verify", action="store_true",
                       help="attach the invariant monitor and value oracle")
    run_p.add_argument("--energy", action="store_true", help="print energy breakdown")
    run_p.add_argument("--stats", action="store_true", help="dump all counters")
    run_p.add_argument("--trace", type=int, metavar="N", default=0,
                       help="print the last N protocol trace events")
    run_p.add_argument("--config-file", metavar="JSON", default=None,
                       help="load the full SystemConfig from a JSON file "
                            "(overrides --policy/--config)")
    run_p.add_argument("--save-config", metavar="JSON", default=None,
                       help="write the effective SystemConfig to a JSON file")

    cmp_p = sub.add_parser("compare", help="run one workload across policies")
    cmp_p.add_argument("workload", choices=available_workloads())
    cmp_p.add_argument("--policies", nargs="+", default=["baseline", "sharers"],
                       choices=sorted(PRESETS))
    cmp_p.add_argument("--config", default="benchmark", choices=sorted(CONFIGS))
    cmp_p.add_argument("--scale", type=float, default=1.0)
    cmp_p.add_argument("--energy", action="store_true")

    fig_p = sub.add_parser("figures", help="regenerate the paper's figures")
    fig_p.add_argument("--scale", type=float, default=1.0)
    fig_p.add_argument("--jobs", type=_positive_int, default=None,
                       help="worker processes (default: os.cpu_count())")

    bench_p = sub.add_parser(
        "bench",
        help="regenerate figures via the parallel runner + persistent cache",
    )
    bench_p.add_argument("--figure", choices=["4", "5", "6", "7", "all"],
                         default="all", help="which figure to regenerate")
    bench_p.add_argument("--jobs", type=_positive_int, default=None,
                         help="worker processes (default: os.cpu_count())")
    bench_p.add_argument("--scale", type=float, default=1.0)
    bench_p.add_argument("--verify", action="store_true",
                         help="attach the invariant monitor and value oracle")
    bench_p.add_argument("--no-cache", action="store_true",
                         help="disable the persistent results store")
    bench_p.add_argument("--store-path", default=None, metavar="DB",
                         help="results store location (default: "
                              ".repro_store.sqlite, or $REPRO_STORE_PATH)")
    bench_p.add_argument("--cache-dir", default=None, metavar="DIR",
                         help="use the legacy file cache at DIR instead of "
                              "the SQLite store")
    bench_p.add_argument("--clear-cache", action="store_true",
                         help="clear the store/cache before running")
    bench_p.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="per-cell wall-clock timeout in seconds")
    bench_p.add_argument("--serve", default=None, metavar="HOST:PORT",
                         help="resolve cold cells via a running "
                              "`repro serve` daemon (default: $REPRO_SERVE)")

    prof_p = sub.add_parser(
        "profile",
        help="profile one workload run: cProfile hot functions plus "
             "per-component / per-category event and message accounting",
    )
    prof_p.add_argument("workload", choices=available_workloads())
    prof_p.add_argument("--policy", default="baseline", choices=sorted(PRESETS))
    prof_p.add_argument("--config", default="benchmark", choices=sorted(CONFIGS))
    prof_p.add_argument("--scale", type=float, default=1.0)
    prof_p.add_argument("--seed", type=int, default=0)
    prof_p.add_argument("--sort", default="tottime",
                        choices=["tottime", "cumulative", "ncalls"],
                        help="cProfile sort order")
    prof_p.add_argument("--limit", type=_positive_int, default=20,
                        help="rows per report section")
    prof_p.add_argument("--pstats-out", metavar="FILE", default=None,
                        help="also dump raw cProfile data for snakeviz/pstats")

    lint_p = sub.add_parser(
        "lint-protocol",
        help="statically check every shipped transition table: unhandled "
             "(state, event) pairs, unreachable states, dead transitions",
    )
    lint_p.add_argument("--describe", action="store_true",
                        help="also print each table's declared transitions")

    lit_p = sub.add_parser(
        "litmus",
        help="run coherence litmus tests across schedules and policy "
             "variants; minimize and replay failing traces",
    )
    lit_p.add_argument("tests", nargs="*", metavar="TEST",
                       help="litmus test names (default: the whole suite)")
    lit_p.add_argument("--all", action="store_true",
                       help="run the whole suite (explicit form of the "
                            "no-name default)")
    lit_p.add_argument("--list", action="store_true",
                       help="list registered litmus tests and exit")
    lit_p.add_argument("--schedules", type=_positive_int, default=8,
                       metavar="N", help="explored interleavings per "
                       "(test, policy) pair (default 8)")
    lit_p.add_argument("--policies", nargs="+", default=None, metavar="P",
                       help="policy variants to sweep (default: all 12; "
                            "see --list)")
    lit_p.add_argument("--bounded", action="store_true",
                       help="run every explored schedule on the bounded "
                            "fabric with the liveness watchdog armed "
                            "(the flow-control sweep; default rotation "
                            "includes one bounded slot)")
    lit_p.add_argument("--minimize", action="store_true",
                       help="shrink each failing triple to a minimal "
                            "reproducer and dump a replayable artifact")
    lit_p.add_argument("--artifact-dir", default=".", metavar="DIR",
                       help="where --minimize writes artifacts (default .)")
    lit_p.add_argument("--replay", metavar="JSON", default=None,
                       help="replay a dumped reproducer artifact instead "
                            "of sweeping")
    lit_p.add_argument("--trace", type=int, metavar="N", default=0,
                       help="with --replay: print the last N protocol "
                            "trace events")
    lit_p.add_argument("-v", "--verbose", action="store_true",
                       help="print every (policy, schedule) run")
    lit_p.add_argument("--store", nargs="?", const="", default=None,
                       metavar="DB",
                       help="memoize (test, policy, schedule) outcomes in "
                            "the results store (default path: "
                            ".repro_store.sqlite, or $REPRO_STORE_PATH)")

    fuzz_p = sub.add_parser(
        "fuzz",
        help="coverage-guided litmus fuzzing: generate random litmus "
             "programs, track protocol-table coverage, keep a minimized "
             "corpus",
    )
    fuzz_sub = fuzz_p.add_subparsers(dest="fuzz_command", required=True)

    frun_p = fuzz_sub.add_parser(
        "run", help="run a budgeted coverage-guided campaign"
    )
    frun_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    frun_p.add_argument("--budget", type=_positive_int, default=2000,
                        help="(litmus, policy, schedule) runs to spend "
                             "(default 2000)")
    frun_p.add_argument("--policies", nargs="+", default=None, metavar="P",
                        help="policy variants to sweep (default: "
                             "baseline, owner, sharers)")
    frun_p.add_argument("--corpus", default=".repro_fuzz", metavar="DIR",
                        help="corpus directory (default .repro_fuzz)")
    frun_p.add_argument("--jobs", type=_positive_int, default=None,
                        help="worker processes (default: os.cpu_count())")
    frun_p.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-run wall-clock timeout in seconds")
    frun_p.add_argument("--min-runs", type=_positive_int, default=None,
                        metavar="N", help="shrink budget per corpus entry")
    frun_p.add_argument("--target", action="append", default=None,
                        metavar="TABLE:STATE:EVENT",
                        help="directed mode: bias generation toward this "
                             "(table, state, event) row (repeatable); see "
                             "`repro fuzz coverage --policy P` for the "
                             "reachable-but-unhit rows")
    frun_p.add_argument("--store", nargs="?", const="", default=None,
                        metavar="DB",
                        help="memoize runs in the results store (resume "
                             "support; default path: .repro_store.sqlite, "
                             "or $REPRO_STORE_PATH)")

    fcov_p = fuzz_sub.add_parser(
        "coverage", help="report per-policy table coverage from a corpus"
    )
    fcov_p.add_argument("--corpus", default=".repro_fuzz", metavar="DIR")
    fcov_p.add_argument("--policy", default=None, metavar="P",
                        help="also list the reachable-but-unhit rows of "
                             "one policy")
    fcov_p.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail (exit 1) if coverage regresses below "
                             "the committed baseline JSON")
    fcov_p.add_argument("--json-out", default=None, metavar="FILE",
                        help="also write the canonical report JSON")

    fcorpus_p = fuzz_sub.add_parser(
        "corpus", help="list, replay, or re-minimize corpus entries"
    )
    fcorpus_p.add_argument("action", choices=["list", "replay", "minimize"])
    fcorpus_p.add_argument("digest", nargs="?", default=None,
                           help="entry digest prefix (replay/minimize; "
                                "default: every entry)")
    fcorpus_p.add_argument("--corpus", default=".repro_fuzz", metavar="DIR")

    store_p = sub.add_parser(
        "store",
        help="administer the persistent SQLite results store",
    )
    store_p.add_argument("action",
                         choices=["stats", "gc", "clear", "export", "import",
                                  "migrate"])
    store_p.add_argument("file", nargs="?", default=None,
                         help="snapshot file (export/import) or legacy "
                              "cache directory (migrate)")
    store_p.add_argument("--path", default=None, metavar="DB",
                         help="store location (default: .repro_store.sqlite, "
                              "or $REPRO_STORE_PATH)")
    store_p.add_argument("--kind", default=None,
                         choices=["cell", "litmus"],
                         help="export only rows of this kind")
    store_p.add_argument("--all", action="store_true",
                         help="export stale rows too (default: only rows "
                              "fresh against the current sources)")
    store_p.add_argument("--older-than", type=float, default=None,
                         metavar="S", help="gc: also drop fresh rows older "
                         "than S seconds")

    serve_p = sub.add_parser(
        "serve",
        help="run the always-on experiment-cell server (localhost HTTP)",
    )
    serve_p.add_argument("--host", default="127.0.0.1")
    serve_p.add_argument("--port", type=int, default=0,
                         help="listen port (default: ephemeral; the bound "
                              "address is printed on startup)")
    serve_p.add_argument("--jobs", type=_positive_int, default=None,
                         help="persistent worker processes "
                              "(default: os.cpu_count())")
    serve_p.add_argument("--timeout", type=float, default=None, metavar="S",
                         help="default per-cell wall-clock timeout")
    serve_p.add_argument("--store-path", default=None, metavar="DB",
                         help="results store location (default: "
                              ".repro_store.sqlite, or $REPRO_STORE_PATH)")

    val_p = sub.add_parser("validate",
                           help="check every headline claim (scorecard)")
    val_p.add_argument("--scale", type=float, default=1.0)

    sub.add_parser("list", help="list workloads and policies")
    return parser


def _run_one(args) -> int:
    if args.config_file:
        from repro.system.serialize import load_config

        config = load_config(args.config_file)
    else:
        config = CONFIGS[args.config](policy=PRESETS[args.policy])
    if args.save_config:
        from repro.system.serialize import save_config

        save_config(config, args.save_config)
    system = build_system(config)
    trace = None
    if args.trace:
        from repro.sim.tracing import ProtocolTrace

        trace = ProtocolTrace().attach_system(system)
    result = system.run_workload(
        get_workload(args.workload), seed=args.seed, scale=args.scale,
        verify=args.verify,
    )
    print(f"workload          {result.workload}")
    print(f"policy            {args.policy}")
    print(f"simulated cycles  {result.cycles:,.0f}")
    print(f"directory probes  {result.dir_probes}")
    print(f"memory accesses   {result.mem_accesses} "
          f"(reads {result.mem_reads}, writes {result.mem_writes})")
    print(f"network           {result.network_messages} msgs, "
          f"{result.network_bytes} bytes")
    print(f"LLC               {result.llc_hits} hits / {result.llc_misses} misses")
    if args.verify:
        status = "PASSED" if result.ok else "FAILED"
        print(f"verification      {status}")
        for error in result.check_errors[:10]:
            print(f"  ! {error}")
    if args.energy:
        print("\nenergy breakdown")
        print(estimate_energy(result).to_text())
    if args.stats:
        print("\nstatistics")
        for key in sorted(result.stats):
            print(f"  {key} = {result.stats[key]}")
    if trace is not None:
        print("\nprotocol trace (tail)")
        print(trace.dump(limit=args.trace))
    return 0 if result.ok else 1


def _compare(args) -> int:
    results = {}
    for policy_name in args.policies:
        system = build_system(CONFIGS[args.config](policy=PRESETS[policy_name]))
        result = system.run_workload(get_workload(args.workload), scale=args.scale)
        if not result.ok:
            print(f"!! {policy_name} failed verification", file=sys.stderr)
        results[policy_name] = result
    baseline = results[args.policies[0]]
    rows = [
        [
            name,
            f"{r.cycles:.0f}",
            f"{r.speedup_over(baseline):+.2f}",
            r.dir_probes,
            r.mem_accesses,
            r.network_messages,
        ]
        for name, r in results.items()
    ]
    print(format_table(
        ["policy", "cycles", "speedup %", "probes", "mem", "msgs"],
        rows,
        title=f"{args.workload} across directory policies",
    ))
    if args.energy:
        print()
        print(energy_comparison(results))
    return 0


def _figures(args) -> int:
    matrix = ExperimentMatrix(scale=args.scale, jobs=getattr(args, "jobs", None))
    print(table2_text())
    print()
    print(table3_text())
    for figure in (run_figure4(matrix), run_figure5(matrix),
                   run_figure6(matrix), run_figure7(matrix)):
        print("\n" + "=" * 70)
        print(figure.to_text())
        if figure.name == "Figure 5":
            print(f"average reduction: {figure5_reduction(figure):.1f}% [paper: 50.4%]")
    return 0


def _bench(args) -> int:
    import time

    from repro.runner import ResultCache, default_progress
    from repro.store import ResultStore

    if args.cache_dir is not None:
        backend = ResultCache(args.cache_dir, enabled=not args.no_cache)
        location = backend.root
    else:
        backend = ResultStore(args.store_path, enabled=not args.no_cache)
        location = backend.path
    if args.clear_cache:
        removed = backend.clear()
        print(f"cleared {removed} stored result(s) from {location}")
    matrix = ExperimentMatrix(
        scale=args.scale,
        verify=args.verify,
        jobs=args.jobs,
        store=backend if not args.no_cache else None,
        progress=default_progress,
        timeout_s=args.timeout,
        serve=args.serve,
    )
    figures = {
        "4": run_figure4,
        "5": run_figure5,
        "6": run_figure6,
        "7": run_figure7,
    }
    selected = list(figures.values()) if args.figure == "all" else [figures[args.figure]]
    start = time.perf_counter()
    for regenerate in selected:
        figure = regenerate(matrix)
        print("\n" + "=" * 70)
        print(figure.to_text())
        if figure.name == "Figure 5":
            print(f"average reduction: {figure5_reduction(figure):.1f}% [paper: 50.4%]")
    elapsed = time.perf_counter() - start
    print(
        f"\n[bench] {elapsed:.2f}s wall clock, "
        f"store: {backend.hits} hit(s) / {backend.misses} miss(es) "
        f"at {location}"
    )
    return 0


def _profile(args) -> int:
    """Run one cell under cProfile and print a kernel-centric report."""
    import cProfile
    import io
    import pstats
    import time

    config = CONFIGS[args.config](policy=PRESETS[args.policy])
    system = build_system(config)
    workload = get_workload(args.workload)

    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    result = system.run_workload(workload, seed=args.seed, scale=args.scale)
    profiler.disable()
    elapsed = time.perf_counter() - start

    events = system.sim.events.executed_events
    print(f"workload          {result.workload} (policy {args.policy}, "
          f"scale {args.scale})")
    print(f"wall clock        {elapsed:.3f} s")
    print(f"executed events   {events:,}  ({events / elapsed:,.0f} events/s)")
    print(f"simulated ticks   {result.ticks:,} "
          f"({result.cycles:,.0f} cpu cycles)")

    # -- per-category message accounting (from the fabric's own stats) ----
    net = system.network.stats
    total_msgs = net["messages"]
    print(f"\nfabric messages   {int(total_msgs):,} "
          f"({int(net['bytes']):,} bytes)")
    categories = sorted(
        (key.split(".", 1)[1], value)
        for key, value in net.counters().items()
        if key.startswith("messages.")
    )
    for category, count in categories:
        share = 100.0 * count / total_msgs if total_msgs else 0.0
        print(f"  {category:<12} {int(count):>10,}  ({share:5.1f}%)")
    routes = sorted(net.child("routes").counters().items(),
                    key=lambda kv: -kv[1])[:args.limit]
    if routes:
        print("top routes")
        for route, count in routes:
            print(f"  {route:<12} {int(count):>10,}")

    # -- per-component event/message accounting ---------------------------
    rows = []
    for component in system.sim.components:
        stats = getattr(component, "stats", None)
        if stats is None:
            continue
        received = stats["messages_received"]
        waited = stats["queue_wait_ticks"]
        if received or waited:
            rows.append((component.name, int(received), int(waited)))
    rows.sort(key=lambda row: -row[1])
    print("\nbusiest controllers (messages received / queue-wait ticks)")
    for name, received, waited in rows[:args.limit]:
        print(f"  {name:<16} {received:>10,}  {waited:>12,}")

    # -- cProfile hot functions -------------------------------------------
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(args.sort).print_stats(args.limit)
    print(f"\nhot functions (cProfile, by {args.sort})")
    print(buffer.getvalue())
    if args.pstats_out:
        stats.dump_stats(args.pstats_out)
        print(f"raw profile written to {args.pstats_out}")
    return 0 if result.ok else 1


def _lint_protocol(args) -> int:
    from repro.coherence.lint import lint_tables, shipped_tables

    tables = shipped_tables()
    if args.describe:
        for table in dict.fromkeys(tables.values()):
            print(table.describe())
            print()
    text, clean = lint_tables(tables)
    print(text)
    return 0 if clean else 1


def _litmus(args) -> int:
    import os
    import time

    from repro.verify.litmus import (
        POLICY_VARIANTS,
        REGISTRY,
        bounded_schedules,
        default_schedules,
        dump_artifact,
        get_litmus,
        load_artifact,
        minimize_failure,
        replay_artifact,
        run_differential,
    )

    if args.replay:
        recorded = load_artifact(args.replay)["failure"]["kind"]
        outcome = replay_artifact(args.replay, trace=bool(args.trace))
        print(outcome.describe())
        reproduced = outcome.failure_kind == recorded
        print(f"recorded failure kind: {recorded}; "
              f"reproduced: {'yes' if reproduced else 'NO'}")
        if not reproduced and outcome.ok:
            print("(fault-injected artifacts only reproduce under the same "
                  "mutate_system hook — see tests/verify/litmus)")
        if args.trace and outcome.trace_text:
            print("\nprotocol trace (tail)")
            print(outcome.trace_text)
        return 0 if reproduced else 1

    if args.list:
        width = max(len(name) for name in REGISTRY)
        for name, test in REGISTRY.items():
            print(f"  {name:<{width}}  {test.description}")
        print("\npolicy variants:")
        for name in POLICY_VARIANTS:
            print(f"  {name}")
        return 0

    names = args.tests or sorted(REGISTRY)
    tests = [get_litmus(name) for name in names]
    if args.policies:
        unknown = set(args.policies) - set(POLICY_VARIANTS)
        if unknown:
            print(f"unknown policy variants: {sorted(unknown)}",
                  file=sys.stderr)
            return 2
        policies = {name: POLICY_VARIANTS[name] for name in args.policies}
    else:
        policies = POLICY_VARIANTS
    schedules = (
        bounded_schedules(args.schedules) if args.bounded
        else default_schedules(args.schedules)
    )
    store = None
    if args.store is not None:
        from repro.store import ResultStore

        store = ResultStore(args.store or None)

    start = time.perf_counter()
    total_runs = failures = mismatches = 0
    failed_reports = []
    for test in tests:
        report = run_differential(test, policies=policies,
                                  schedules=schedules, store=store)
        total_runs += len(report.outcomes)
        failures += len(report.failures)
        mismatches += len(report.mismatches)
        status = "ok" if report.ok else "FAIL"
        print(f"  {test.name:<26} {len(report.outcomes):>4} runs  {status}")
        if args.verbose:
            for outcome in report.outcomes:
                print(f"    {outcome.describe()}")
        if not report.ok:
            failed_reports.append(report)
            print(report.describe())

    elapsed = time.perf_counter() - start
    print(f"\n[litmus] {len(tests)} tests x {len(policies)} policies x "
          f"{len(schedules)} schedules = {total_runs} runs in {elapsed:.1f}s: "
          f"{failures} failure(s), {mismatches} differential mismatch(es)")
    if store is not None:
        print(f"[litmus] store: {store.hits} warm hit(s), "
              f"{store.puts} new row(s) at {store.path}")

    if failed_reports and args.minimize:
        os.makedirs(args.artifact_dir, exist_ok=True)
        for report in failed_reports:
            fail = next((o for o in report.failures), None)
            if fail is None:
                continue  # mismatch-only report: nothing to shrink
            result = minimize_failure(
                get_litmus(fail.test), fail.policy, fail.schedule
            )
            if result is None:
                print(f"  {fail.test}: failure did not reproduce during "
                      f"minimization (flaky?)")
                continue
            path = os.path.join(
                args.artifact_dir,
                f"litmus-{fail.test}-{fail.policy.replace('+', '_')}.json",
            )
            dump_artifact(result, path)
            print(f"  minimized: {result.describe()}\n  artifact: {path}")
    return 0 if not failed_reports else 1


def _fuzz(args) -> int:
    import os

    from repro.runner.executor import default_progress
    from repro.verify.fuzz.corpus import Corpus, minimize_entry
    from repro.verify.fuzz.coverage import (
        CoverageState,
        check_baseline,
        coverage_report,
        report_json,
        unhit_detail,
    )

    if args.fuzz_command == "run":
        from repro.verify.fuzz.campaign import run_campaign
        from repro.verify.litmus import POLICY_VARIANTS

        if args.policies:
            unknown = set(args.policies) - set(POLICY_VARIANTS)
            if unknown:
                print(f"unknown policy variants: {sorted(unknown)}",
                      file=sys.stderr)
                return 2
        store = None
        if args.store is not None:
            from repro.store import ResultStore

            store = ResultStore(args.store or None)
        kwargs = {}
        if args.min_runs is not None:
            kwargs["minimize_runs"] = args.min_runs
        if args.target:
            targets = []
            for spec in args.target:
                parts = spec.split(":")
                if len(parts) != 3 or not all(parts):
                    print(f"bad --target {spec!r} "
                          "(expected TABLE:STATE:EVENT)", file=sys.stderr)
                    return 2
                targets.append(tuple(parts))
            kwargs["targets"] = targets
        result = run_campaign(
            seed=args.seed,
            budget=args.budget,
            corpus_dir=args.corpus,
            policies=args.policies,
            store=store,
            jobs=args.jobs,
            timeout_s=args.timeout,
            progress=default_progress,
            **kwargs,
        )
        print(result.describe())
        if store is not None:
            print(f"[fuzz] store: {store.hits} warm hit(s), "
                  f"{store.puts} new row(s) at {store.path}")
        return 1 if result.failures else 0

    if args.fuzz_command == "coverage":
        coverage_path = os.path.join(args.corpus, "coverage.json")
        if not os.path.exists(coverage_path):
            print(f"no coverage state at {coverage_path} "
                  "(run `repro fuzz run` first)", file=sys.stderr)
            return 2
        state = CoverageState.load(coverage_path)
        text, data = coverage_report(state)
        print(text)
        if args.policy:
            print()
            print(unhit_detail(data, args.policy))
        if args.json_out:
            with open(args.json_out, "w") as handle:
                handle.write(report_json(data))
        if args.check:
            import json as json_module

            with open(args.check) as handle:
                baseline = json_module.load(handle)
            problems = check_baseline(data, baseline)
            if problems:
                print("\ncoverage regressions against "
                      f"{args.check}:", file=sys.stderr)
                for problem in problems:
                    print(f"  {problem}", file=sys.stderr)
                return 1
            print(f"\ncoverage holds the {args.check} baseline")
        return 0

    corpus = Corpus(args.corpus)
    if args.action == "list":
        entries = corpus.entries()
        for entry in entries:
            print(entry.describe())
        print(f"{len(entries)} entries, corpus digest "
              f"{corpus.corpus_digest()}")
        return 0

    digests = (
        [corpus.find(args.digest).digest()] if args.digest
        else corpus.digests()
    )
    status = 0
    for digest in digests:
        entry = corpus.load(digest)
        if args.action == "replay":
            outcome = entry.replay()
            hit = set(entry.new_coverage) <= set(outcome.coverage or ())
            verdict = "rows reproduced" if hit else "ROWS NOT REPRODUCED"
            print(f"{entry.describe()}  -> {('ok' if outcome.ok else outcome.failure_kind)}, {verdict}")
            if not hit or not outcome.ok:
                status = 1
        else:  # minimize
            shrunk = minimize_entry(entry)
            if shrunk.digest() != digest:
                corpus.remove(digest)
                corpus.add(shrunk)
                print(f"{digest[:12]} -> {shrunk.describe()}")
            else:
                print(f"{digest[:12]} already minimal")
    return status


def _store(args) -> int:
    from repro.store import ResultStore

    store = ResultStore(args.path)
    if args.action == "stats":
        stats = store.stats()
        session = stats.pop("session")
        for key, value in stats.items():
            print(f"{key:<12} {value}")
        del session  # freshly opened: all zeros, not informative
        return 0
    if args.action == "gc":
        removed = store.gc(older_than_s=args.older_than)
        print(f"reclaimed {removed} row(s) from {store.path}")
        return 0
    if args.action == "clear":
        removed = store.clear()
        print(f"cleared {removed} row(s) from {store.path}")
        return 0
    if args.file is None:
        print(f"store {args.action} needs a file argument", file=sys.stderr)
        return 2
    if args.action == "export":
        count = store.export_snapshot(
            args.file, kind=args.kind, fresh_only=not args.all
        )
        print(f"exported {count} row(s) to {args.file}")
        return 0
    if args.action == "import":
        count = store.import_snapshot(args.file)
        print(f"imported {count} row(s) from {args.file} into {store.path}")
        return 0
    count = store.migrate_cache(args.file)
    print(f"migrated {count} legacy cache entr(ies) from {args.file} "
          f"into {store.path}")
    return 0


def _serve(args) -> int:
    from repro.serve import ServeDaemon
    from repro.store import ResultStore

    store = ResultStore(args.store_path)
    daemon = ServeDaemon(
        store, host=args.host, port=args.port, jobs=args.jobs,
        timeout_s=args.timeout,
    )
    print(f"[serve] listening on {daemon.address} "
          f"({daemon.jobs} worker(s), store {store.path})")
    print(f"[serve] point clients at it with REPRO_SERVE={daemon.address}")
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("\n[serve] shutting down")
    finally:
        daemon.shutdown()
        store.close()
    return 0


def _validate(args) -> int:
    from repro.analysis.validate import build_scorecard, scorecard_text

    claims = build_scorecard(ExperimentMatrix(scale=args.scale))
    print(scorecard_text(claims))
    return 0 if all(claim.holds for claim in claims) else 1


def _list() -> int:
    print("workloads:")
    for name in available_workloads():
        workload = get_workload(name)
        print(f"  {name:<6} {workload.description}")
    print("\npolicies:")
    for name, policy in PRESETS.items():
        print(f"  {name:<18} kind={policy.kind.value}, "
              f"llcWB={policy.llc_writeback}, useL3OnWT={policy.use_l3_on_wt}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "run":
        return _run_one(args)
    if args.command == "compare":
        return _compare(args)
    if args.command == "figures":
        return _figures(args)
    if args.command == "bench":
        return _bench(args)
    if args.command == "profile":
        return _profile(args)
    if args.command == "lint-protocol":
        return _lint_protocol(args)
    if args.command == "litmus":
        return _litmus(args)
    if args.command == "fuzz":
        return _fuzz(args)
    if args.command == "store":
        return _store(args)
    if args.command == "serve":
        return _serve(args)
    if args.command == "validate":
        return _validate(args)
    return _list()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
