"""CPU cluster: CorePairs (2 cores + L1I + 2xL1D + shared MOESI L2) and cores."""

from repro.cpu.core import CpuCore
from repro.cpu.corepair import CorePair, CpuRequest

__all__ = ["CorePair", "CpuCore", "CpuRequest"]
