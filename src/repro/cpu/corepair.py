"""The CorePair: two CPU cores behind a shared, inclusive MOESI L2.

Per §II-B of the paper, a CorePair has two cores, a dedicated L1D per core,
a shared context-sensitive L1I, and a shared inclusive L2.  Coherence is
enforced at the L2: lines can be M/O/E/S/I, exclusive lines silently turn
modified, evictions send VicDirty (M/O) or VicClean (E/S) — making eviction
traffic "noisy" — and the CorePair answers directory probes:

- downgrade: M→O with dirty data, O stays O with dirty data, E→S silently
  (clean, no data forwarded), S acks without data;
- invalidate: M/O forward dirty data, everything drops to I (including L1
  copies, for inclusivity).

The L1s are latency filters: data and permissions live in the L2 (the L1D
is modelled write-through into the L2), which is how probes can be answered
at the L2 alone.  A line with an in-flight victim ("vic-pending") still
answers probes with its data — the race resolution the directory relies on
to drop the later-arriving stale victim safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.coherence.banking import DirectoryMap, as_directory_map
from repro.mem.address import line_addr, word_index
from repro.mem.block import LineData
from repro.mem.cache_array import CacheArray
from repro.protocol.atomics import AtomicOp, apply_atomic
from repro.protocol.messages import Message
from repro.protocol.types import MoesiState, MsgType, ProbeType, RequesterKind
from repro.sim.clock import ClockDomain
from repro.sim.component import Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network


class CorePairError(SimulationError):
    pass


@dataclass(frozen=True)
class CpuRequest:
    """One core-side memory operation presented to the CorePair."""

    kind: str  # "load" | "store" | "atomic" | "ifetch"
    addr: int
    value: int = 0
    atomic_op: AtomicOp | None = None
    operand: int = 0
    compare: int = 0


#: per-kind stat counter names, prebuilt so ``access`` never formats one.
_OPS_KEY = {kind: f"ops.{kind}" for kind in ("load", "store", "atomic", "ifetch")}


@dataclass
class _Mshr:
    kind: str  # "r" | "w" | "i"
    waiters: list[tuple[int, CpuRequest, Callable]] = field(default_factory=list)


@dataclass
class _PendingVictim:
    data: LineData
    dirty: bool
    waiters: list[tuple[int, CpuRequest, Callable]] = field(default_factory=list)


_MISS_REQUEST = {"r": MsgType.RDBLK, "w": MsgType.RDBLKM, "i": MsgType.RDBLKS}


class CorePair(Controller):
    """Network endpoint of kind ``"l2"`` embedding the whole CorePair."""

    kind_name = "l2"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        dir_name: "str | DirectoryMap",
        l2_geometry: tuple[int, int] = (2 * 2**20, 8),
        l1d_geometry: tuple[int, int] = (64 * 2**10, 2),
        l1i_geometry: tuple[int, int] = (32 * 2**10, 2),
        l1_latency: float = 1.0,
        l2_latency: float = 8.0,
        service_cycles: float = 1.0,
    ) -> None:
        super().__init__(sim, name, clock, service_cycles=service_cycles)
        self.network = network
        self.dir_map = as_directory_map(dir_name)
        self.l2 = CacheArray.from_geometry(*l2_geometry)
        self.l1d = [
            CacheArray.from_geometry(*l1d_geometry),
            CacheArray.from_geometry(*l1d_geometry),
        ]
        self.l1i = CacheArray.from_geometry(*l1i_geometry)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self._mshrs: dict[int, _Mshr] = {}
        self._vic_pending: dict[int, _PendingVictim] = {}

    # -- core-facing interface -------------------------------------------------

    def access(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        """Submit a memory op from core ``slot`` (0 or 1); serialized with
        incoming probe traffic on the shared L2 controller."""
        if slot not in (0, 1):
            raise CorePairError(f"bad core slot {slot}")
        kind = request.kind
        self.stats.inc(_OPS_KEY.get(kind) or f"ops.{kind}")
        start = max(self.now, self._next_free)
        self._next_free = start + self.clock.cycles_to_ticks(self.service_cycles)
        self.sim.events.schedule(start, self._execute_queued, 0, (slot, request, callback))

    # -- execution ---------------------------------------------------------------

    def _execute_queued(self, queued: tuple) -> None:
        """Event-queue shim: unpack a queued ``(slot, request, callback)``."""
        self._execute(*queued)

    def _execute(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        pending = self._vic_pending.get(line)
        if pending is not None:
            pending.waiters.append((slot, request, callback))
            return
        handler = {
            "load": self._do_load,
            "store": self._do_store,
            "atomic": self._do_atomic,
            "ifetch": self._do_ifetch,
        }.get(request.kind)
        if handler is None:
            raise CorePairError(f"unknown request kind {request.kind!r}")
        handler(slot, request, callback)

    def _hit_latency(self, slot: int, line: int, icache: bool = False) -> float:
        """L1 latency on an L1 hit, else L1+L2 (and fill the L1)."""
        l1 = self.l1i if icache else self.l1d[slot]
        if l1.lookup(line) is not None:
            self.stats.inc("l1i_hits" if icache else "l1d_hits")
            return self.l1_latency
        l1.install(line, state=True)
        self.stats.inc("l2_hits")
        return self.l1_latency + self.l2_latency

    def _do_load(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.readable:
            self._miss(slot, request, callback, want="r")
            return
        latency = self._hit_latency(slot, line)

        def finish() -> None:
            again = self.l2.lookup(line)
            if again is None or not again.state.readable:
                self._execute(slot, request, callback)  # lost to a probe; retry
                return
            callback(again.data.word(word_index(request.addr)))

        self.schedule(latency, finish)

    def _do_store(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.writable:
            self._miss(slot, request, callback, want="w")
            return
        latency = self._hit_latency(slot, line)

        def finish() -> None:
            again = self.l2.lookup(line)
            if again is None or not again.state.writable:
                self._execute(slot, request, callback)
                return
            again.data = again.data.with_word(word_index(request.addr), request.value)
            again.state = MoesiState.M  # silent E->M
            again.dirty = True
            callback(None)

        self.schedule(latency, finish)

    def _do_atomic(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.writable:
            self._miss(slot, request, callback, want="w")
            return
        latency = self._hit_latency(slot, line)

        def finish() -> None:
            again = self.l2.lookup(line)
            if again is None or not again.state.writable:
                self._execute(slot, request, callback)
                return
            new_data, old = apply_atomic(
                again.data, word_index(request.addr),
                request.atomic_op, request.operand, request.compare,
            )
            again.data = new_data
            again.state = MoesiState.M
            again.dirty = True
            callback(old)

        self.schedule(latency, finish)

    def _do_ifetch(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.readable:
            self._miss(slot, request, callback, want="i")
            return
        latency = self._hit_latency(slot, line, icache=True)
        self.schedule(latency, lambda: callback(None))

    # -- misses ----------------------------------------------------------------------

    def _miss(self, slot: int, request: CpuRequest, callback: Callable, want: str) -> None:
        line = line_addr(request.addr)
        mshr = self._mshrs.get(line)
        if mshr is not None:
            mshr.waiters.append((slot, request, callback))
            self.stats.inc("mshr_merges")
            return
        mshr = _Mshr(kind=want)
        mshr.waiters.append((slot, request, callback))
        self._mshrs[line] = mshr
        self.stats.inc("misses")
        self.stats.inc(f"misses.{want}")
        self.network.send(
            Message.request(
                _MISS_REQUEST[want], self.name, self.dir_map.bank_of(line), line,
                RequesterKind.CPU_L2,
            )
        )

    # -- network messages ---------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MsgType.DATA_RESP:
            self._on_data_resp(msg)
        elif msg.mtype is MsgType.PROBE:
            self._on_probe(msg)
        elif msg.mtype is MsgType.WB_ACK:
            self._on_wb_ack(msg)
        else:
            raise CorePairError(f"{self.name} received unexpected {msg!r}")

    def _on_data_resp(self, msg: Message) -> None:
        line = msg.addr
        mshr = self._mshrs.pop(line, None)
        if mshr is None:
            raise CorePairError(f"{self.name}: response without MSHR: {msg!r}")
        data = msg.data
        existing = self.l2.lookup(line)
        if existing is not None and existing.state.readable:
            # Upgrade (S/O -> M): our own copy is the current one — an O
            # copy is dirty w.r.t. the memory data the response may carry,
            # and no third cache can hold anything newer while we are a
            # holder.  Response data (if any) must not clobber it.
            data = existing.data
        if data is None:
            raise CorePairError(
                f"{self.name}: data-less response but no local copy: {msg!r}"
            )
        if msg.word_updates:
            # word-granular dirty data forwarded by probed VI caches
            for index, value in msg.word_updates.items():
                data = data.with_word(index, value)
        if msg.state is None or msg.state is MoesiState.I:
            raise CorePairError(f"{self.name}: bad granted state in {msg!r}")
        self._install_line(line, msg.state, data)
        self.network.send(Message.unblock(self.name, msg.src, line, msg.tid))
        for slot, request, callback in mshr.waiters:
            self._execute(slot, request, callback)

    def _install_line(self, line: int, state: MoesiState, data: LineData) -> None:
        if self.l2.lookup(line, touch=False) is None:
            victim = self.l2.choose_victim(
                line, cost_of=lambda cl: 1 if cl.addr in self._mshrs else 0
            )
            if victim.valid:
                if victim.addr in self._mshrs:
                    raise CorePairError(
                        f"{self.name}: L2 set exhausted by outstanding misses"
                    )
                snapshot = self.l2.invalidate(victim.addr)
                self._send_victim(snapshot)
        self.l2.install(line, state=state, data=data, dirty=state.is_dirty)

    def _send_victim(self, snapshot) -> None:
        dirty = snapshot.state in (MoesiState.M, MoesiState.O)
        self.stats.inc("victims.dirty" if dirty else "victims.clean")
        self._vic_pending[snapshot.addr] = _PendingVictim(snapshot.data, dirty)
        self._drop_l1_copies(snapshot.addr)
        mtype = MsgType.VIC_DIRTY if dirty else MsgType.VIC_CLEAN
        self.network.send(
            Message.request(
                mtype, self.name, self.dir_map.bank_of(snapshot.addr), snapshot.addr,
                RequesterKind.CPU_L2, data=snapshot.data,
            )
        )

    def _on_wb_ack(self, msg: Message) -> None:
        pending = self._vic_pending.pop(msg.addr, None)
        if pending is None:
            raise CorePairError(f"{self.name}: WB ack without pending victim: {msg!r}")
        for slot, request, callback in pending.waiters:
            self._execute(slot, request, callback)

    # -- probes ------------------------------------------------------------------------------

    def _on_probe(self, msg: Message) -> None:
        self.stats.inc("probes_received")
        line = msg.addr
        pending = self._vic_pending.get(line)
        if pending is not None:
            # Vic in flight: forward the data so the directory never depends
            # on the (soon stale-dropped) victim message, and flag its origin
            # so system-level writes know to drop the superseded victim.
            self._ack(msg, data=pending.data if pending.dirty else None,
                      dirty=pending.dirty, had_copy=True, from_victim=True)
            return
        cached = self.l2.lookup(line, touch=False)
        if cached is None:
            self._ack(msg, had_copy=False)
            return
        if msg.probe_type is ProbeType.DOWNGRADE:
            if cached.state in (MoesiState.M, MoesiState.O):
                cached.state = MoesiState.O
                self._ack(msg, data=cached.data, dirty=True, had_copy=True)
            elif cached.state is MoesiState.E:
                cached.state = MoesiState.S
                self._ack(msg, had_copy=True)
            else:  # S
                self._ack(msg, had_copy=True)
        elif msg.probe_type is ProbeType.INVALIDATE:
            dirty = cached.state in (MoesiState.M, MoesiState.O)
            data = cached.data if dirty else None
            self.l2.invalidate(line)
            self._drop_l1_copies(line)
            self.stats.inc("probe_invalidations")
            self._ack(msg, data=data, dirty=dirty, had_copy=True)
        else:
            raise CorePairError(f"bad probe {msg!r}")

    def _ack(self, probe: Message, data: LineData | None = None,
             dirty: bool = False, had_copy: bool = False,
             from_victim: bool = False) -> None:
        self.network.send(
            Message.probe_ack(
                self.name, probe.src, probe.addr, probe.tid,
                data=data, dirty=dirty, had_copy=had_copy,
                from_victim=from_victim,
            )
        )

    def _drop_l1_copies(self, line: int) -> None:
        for l1 in (*self.l1d, self.l1i):
            l1.invalidate(line)

    # -- introspection ------------------------------------------------------------------------

    def peek_state(self, line: int) -> MoesiState:
        cached = self.l2.lookup(line, touch=False)
        return MoesiState.I if cached is None else cached.state

    def peek_word(self, addr: int) -> int | None:
        cached = self.l2.lookup(line_addr(addr), touch=False)
        if cached is None or cached.data is None:
            return None
        return cached.data.word(word_index(addr))

    def pending_work(self) -> str | None:
        if self._mshrs:
            addr, mshr = next(iter(self._mshrs.items()))
            return f"{len(self._mshrs)} MSHRs (e.g. {addr:#x} want={mshr.kind})"
        if self._vic_pending:
            return f"{len(self._vic_pending)} pending victims"
        return None
