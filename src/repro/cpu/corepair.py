"""The CorePair: two CPU cores behind a shared, inclusive MOESI L2.

Per §II-B of the paper, a CorePair has two cores, a dedicated L1D per core,
a shared context-sensitive L1I, and a shared inclusive L2.  Coherence is
enforced at the L2: lines can be M/O/E/S/I, exclusive lines silently turn
modified, evictions send VicDirty (M/O) or VicClean (E/S) — making eviction
traffic "noisy" — and the CorePair answers directory probes:

- downgrade: M→O with dirty data, O stays O with dirty data, E→S silently
  (clean, no data forwarded), S acks without data;
- invalidate: M/O forward dirty data, everything drops to I (including L1
  copies, for inclusivity).

The L1s are latency filters: data and permissions live in the L2 (the L1D
is modelled write-through into the L2), which is how probes can be answered
at the L2 alone.  A line with an in-flight victim ("vic-pending") still
answers probes with its data — the race resolution the directory relies on
to drop the later-arriving stale victim safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.coherence.banking import DirectoryMap, as_directory_map
from repro.coherence.engine import ProtocolFSM, TransitionTable
from repro.mem.address import line_addr, word_index
from repro.mem.block import LineData
from repro.mem.cache_array import CacheArray
from repro.protocol.atomics import AtomicOp, apply_atomic
from repro.protocol.messages import Message
from repro.protocol.types import MoesiState, MsgType, ProbeType, RequesterKind
from repro.sim.clock import ClockDomain
from repro.sim.component import Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator
    from repro.sim.network import Network


class CorePairError(SimulationError):
    pass


@dataclass(frozen=True)
class CpuRequest:
    """One core-side memory operation presented to the CorePair."""

    kind: str  # "load" | "store" | "atomic" | "ifetch"
    addr: int
    value: int = 0
    atomic_op: AtomicOp | None = None
    operand: int = 0
    compare: int = 0


#: per-kind stat counter names, prebuilt so ``access`` never formats one.
_OPS_KEY = {kind: f"ops.{kind}" for kind in ("load", "store", "atomic", "ifetch")}


@dataclass
class _Mshr:
    kind: str  # "r" | "w" | "i"
    waiters: list[tuple[int, CpuRequest, Callable]] = field(default_factory=list)


@dataclass
class _PendingVictim:
    data: LineData
    dirty: bool
    waiters: list[tuple[int, CpuRequest, Callable]] = field(default_factory=list)


_MISS_REQUEST = {"r": MsgType.RDBLK, "w": MsgType.RDBLKM, "i": MsgType.RDBLKS}

# -- MOESI protocol table -----------------------------------------------------

#: pseudo-state for a line whose victim is in flight (invalid in the L2
#: array, but still answering probes out of the victim buffer)
VIC_PENDING = "VP"

EV_FILL = "Fill"        #: directory data response installs the line
EV_STORE = "Store"      #: a store hit on a non-M line (the silent E->M edge)
EV_PRB_DOWN = "PrbDown"
EV_PRB_INV = "PrbInv"
EV_EVICT = "Evict"      #: capacity eviction out of the L2 array
EV_WB_ACK = "WBAck"     #: directory acknowledged the victim

_PROBE_EVENT = {ProbeType.DOWNGRADE: EV_PRB_DOWN, ProbeType.INVALIDATE: EV_PRB_INV}


def build_corepair_table() -> TransitionTable:
    """The CorePair L2's MOESI table (§II-B), per-line.

    M-hit stores are deliberately *not* modelled as transitions (M x Store
    is declared illegal): they change no state and sit on the hottest path.
    The one store transition that exists is the silent E -> M upgrade.
    """
    M, O, E, S, I = (MoesiState.M, MoesiState.O, MoesiState.E,
                     MoesiState.S, MoesiState.I)
    C = CorePair
    table = TransitionTable(
        "corepair-moesi",
        (I, S, E, O, M, VIC_PENDING),
        (EV_FILL, EV_STORE, EV_PRB_DOWN, EV_PRB_INV, EV_EVICT, EV_WB_ACK),
        initial=I,
    )
    table.on(I, EV_FILL, (M, E, S), action=C._act_fill,
             note="miss fill with the directory-granted state")
    table.on((S, O), EV_FILL, M, action=C._act_fill,
             note="upgrade fill (RdBlkM): local data kept, permission raised")
    table.on(E, EV_STORE, M, action=C._act_store,
             note="silent E->M: no message leaves the CorePair")
    table.on((M, O), EV_PRB_DOWN, O, action=C._act_down_dirty,
             note="downgrade with dirty data; this copy keeps write-back duty")
    table.on(E, EV_PRB_DOWN, S, action=C._act_down_e,
             note="clean downgrade: no data forwarded (dir falls back to LLC)")
    table.on(S, EV_PRB_DOWN, S, action=C._act_down_s)
    table.on(I, (EV_PRB_DOWN, EV_PRB_INV), I, action=C._act_probe_miss,
             note="no copy: ack had_copy=False")
    table.on((M, O), EV_PRB_INV, I, action=C._act_inv,
             note="invalidate forwarding the dirty line")
    table.on((E, S), EV_PRB_INV, I, action=C._act_inv)
    table.on(VIC_PENDING, (EV_PRB_DOWN, EV_PRB_INV), VIC_PENDING,
             action=C._act_probe_vic,
             note="probe answered from the victim buffer (from_victim ack "
                  "lets system writes drop the superseded Vic*)")
    table.on((M, O, E, S), EV_EVICT, VIC_PENDING, action=C._act_evict,
             note="capacity eviction: VicDirty (M/O) or VicClean (E/S)")
    table.on(VIC_PENDING, EV_WB_ACK, I, action=C._act_wb_ack,
             note="victim acknowledged; parked requests replay")
    table.illegal(M, EV_STORE, note="M-hit stores are silent (no transition)")
    table.illegal((O, S, I, VIC_PENDING), EV_STORE,
                  note="stores need write permission: these states miss")
    table.illegal((M, E, VIC_PENDING), EV_FILL,
                  note="M/E never miss; vic-pending lines park requests")
    table.illegal((I, VIC_PENDING), EV_EVICT,
                  note="only resident lines are eviction victims")
    table.illegal((M, O, E, S, I), EV_WB_ACK,
                  note="WB ack without a pending victim")
    return table


class CorePair(Controller):
    """Network endpoint of kind ``"l2"`` embedding the whole CorePair."""

    kind_name = "l2"

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        network: "Network",
        dir_name: "str | DirectoryMap",
        l2_geometry: tuple[int, int] = (2 * 2**20, 8),
        l1d_geometry: tuple[int, int] = (64 * 2**10, 2),
        l1i_geometry: tuple[int, int] = (32 * 2**10, 2),
        l1_latency: float = 1.0,
        l2_latency: float = 8.0,
        service_cycles: float = 1.0,
    ) -> None:
        super().__init__(sim, name, clock, service_cycles=service_cycles)
        self.network = network
        self.dir_map = as_directory_map(dir_name)
        self.l2 = CacheArray.from_geometry(*l2_geometry)
        self.l1d = [
            CacheArray.from_geometry(*l1d_geometry),
            CacheArray.from_geometry(*l1d_geometry),
        ]
        self.l1i = CacheArray.from_geometry(*l1i_geometry)
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self._mshrs: dict[int, _Mshr] = {}
        self._vic_pending: dict[int, _PendingVictim] = {}
        #: per-line MOESI FSMs; lines at rest in I carry no entry
        self._fsms: dict[int, ProtocolFSM] = {}
        #: the MOESI table this instance dispatches through.  Normally the
        #: shared module table; tests overlay a mutated copy here (before
        #: any traffic) to inject protocol faults for the litmus minimizer.
        self.moesi_table: TransitionTable = _COREPAIR_TABLE

    def fsm_tables(self):
        """The declared tables this controller dispatches through."""
        return (self.moesi_table,)

    # -- protocol FSM ----------------------------------------------------------

    def _fire(self, line: int, event: str, prev, ctx=None):
        """Dispatch one MOESI event for ``line`` through the declared table.

        ``prev`` is the line's current state as derived from the L2 array /
        victim buffer — the authoritative source — so the FSM can never
        drift from the arrays it shadows.
        """
        fsm = self._fsms.get(line)
        if fsm is None:
            fsm = self._fsms[line] = ProtocolFSM(self.moesi_table, prev)
        else:
            fsm.state = prev
        nxt = fsm.fire(event, self, line, ctx)
        if nxt is MoesiState.I:
            del self._fsms[line]
        return nxt

    # -- core-facing interface -------------------------------------------------

    def access(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        """Submit a memory op from core ``slot`` (0 or 1); serialized with
        incoming probe traffic on the shared L2 controller."""
        if slot not in (0, 1):
            raise CorePairError(f"bad core slot {slot}")
        kind = request.kind
        self.stats.inc(_OPS_KEY.get(kind) or f"ops.{kind}")
        start = max(self.now, self._next_free)
        self._next_free = start + self._service_ticks
        self.sim.events.schedule(start, self._execute_queued, 0, (slot, request, callback))

    # -- execution ---------------------------------------------------------------

    def _execute_queued(self, queued: tuple) -> None:
        """Event-queue shim: unpack a queued ``(slot, request, callback)``."""
        self._execute(*queued)

    def _execute(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        pending = self._vic_pending.get(line)
        if pending is not None:
            pending.waiters.append((slot, request, callback))
            return
        handler = {
            "load": self._do_load,
            "store": self._do_store,
            "atomic": self._do_atomic,
            "ifetch": self._do_ifetch,
        }.get(request.kind)
        if handler is None:
            raise CorePairError(f"unknown request kind {request.kind!r}")
        handler(slot, request, callback)

    def _hit_latency(self, slot: int, line: int, icache: bool = False) -> float:
        """L1 latency on an L1 hit, else L1+L2 (and fill the L1)."""
        l1 = self.l1i if icache else self.l1d[slot]
        if l1.lookup(line) is not None:
            self.stats.inc("l1i_hits" if icache else "l1d_hits")
            return self.l1_latency
        l1.install(line, state=True)
        self.stats.inc("l2_hits")
        return self.l1_latency + self.l2_latency

    def _do_load(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.readable:
            self._miss(slot, request, callback, want="r")
            return
        latency = self._hit_latency(slot, line)

        def finish() -> None:
            again = self.l2.lookup(line)
            if again is None or not again.state.readable:
                self._execute(slot, request, callback)  # lost to a probe; retry
                return
            callback(again.data.word(word_index(request.addr)))

        self.schedule(latency, finish)

    def _do_store(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.writable:
            self._miss(slot, request, callback, want="w")
            return
        latency = self._hit_latency(slot, line)

        def finish() -> None:
            again = self.l2.lookup(line)
            if again is None or not again.state.writable:
                self._execute(slot, request, callback)
                return
            again.data = again.data.with_word(word_index(request.addr), request.value)
            if again.state is not MoesiState.M:
                self._fire(line, EV_STORE, again.state, again)  # silent E->M
            callback(None)

        self.schedule(latency, finish)

    def _act_store(self, cached) -> MoesiState:
        cached.state = MoesiState.M
        cached.dirty = True
        return MoesiState.M

    def _do_atomic(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.writable:
            self._miss(slot, request, callback, want="w")
            return
        latency = self._hit_latency(slot, line)

        def finish() -> None:
            again = self.l2.lookup(line)
            if again is None or not again.state.writable:
                self._execute(slot, request, callback)
                return
            new_data, old = apply_atomic(
                again.data, word_index(request.addr),
                request.atomic_op, request.operand, request.compare,
            )
            again.data = new_data
            if again.state is not MoesiState.M:
                self._fire(line, EV_STORE, again.state, again)  # silent E->M
            callback(old)

        self.schedule(latency, finish)

    def _do_ifetch(self, slot: int, request: CpuRequest, callback: Callable) -> None:
        line = line_addr(request.addr)
        cached = self.l2.lookup(line)
        if cached is None or not cached.state.readable:
            self._miss(slot, request, callback, want="i")
            return
        latency = self._hit_latency(slot, line, icache=True)
        self.schedule(latency, lambda: callback(None))

    # -- misses ----------------------------------------------------------------------

    def _miss(self, slot: int, request: CpuRequest, callback: Callable, want: str) -> None:
        line = line_addr(request.addr)
        mshr = self._mshrs.get(line)
        if mshr is not None:
            mshr.waiters.append((slot, request, callback))
            self.stats.inc("mshr_merges")
            return
        mshr = _Mshr(kind=want)
        mshr.waiters.append((slot, request, callback))
        self._mshrs[line] = mshr
        self.stats.inc("misses")
        self.stats.inc(f"misses.{want}")
        self.network.send(
            Message.request(
                _MISS_REQUEST[want], self.name, self.dir_map.bank_of(line), line,
                RequesterKind.CPU_L2,
            )
        )

    # -- network messages ---------------------------------------------------------------

    def handle_message(self, msg: Message) -> None:
        if msg.mtype is MsgType.DATA_RESP:
            self._on_data_resp(msg)
        elif msg.mtype is MsgType.PROBE:
            self._on_probe(msg)
        elif msg.mtype is MsgType.WB_ACK:
            self._on_wb_ack(msg)
        else:
            raise CorePairError(f"{self.name} received unexpected {msg!r}")

    def _on_data_resp(self, msg: Message) -> None:
        line = msg.addr
        mshr = self._mshrs.pop(line, None)
        if mshr is None:
            raise CorePairError(f"{self.name}: response without MSHR: {msg!r}")
        data = msg.data
        existing = self.l2.lookup(line)
        if existing is not None and existing.state.readable:
            # Upgrade (S/O -> M): our own copy is the current one — an O
            # copy is dirty w.r.t. the memory data the response may carry,
            # and no third cache can hold anything newer while we are a
            # holder.  Response data (if any) must not clobber it.
            data = existing.data
        if data is None:
            raise CorePairError(
                f"{self.name}: data-less response but no local copy: {msg!r}"
            )
        if msg.word_updates:
            # word-granular dirty data forwarded by probed VI caches
            for index, value in msg.word_updates.items():
                data = data.with_word(index, value)
        if msg.state is None or msg.state is MoesiState.I:
            raise CorePairError(f"{self.name}: bad granted state in {msg!r}")
        prev = MoesiState.I if existing is None else existing.state
        self._fire(line, EV_FILL, prev, (line, msg.state, data))
        self.network.send(Message.unblock(self.name, msg.src, line, msg.tid))
        for slot, request, callback in mshr.waiters:
            self._execute(slot, request, callback)

    def _act_fill(self, ctx: tuple) -> MoesiState:
        line, state, data = ctx
        self._install_line(line, state, data)
        return state

    def _install_line(self, line: int, state: MoesiState, data: LineData) -> None:
        if self.l2.lookup(line, touch=False) is None:
            victim = self.l2.choose_victim(
                line, cost_of=lambda cl: 1 if cl.addr in self._mshrs else 0
            )
            if victim.valid:
                if victim.addr in self._mshrs:
                    raise CorePairError(
                        f"{self.name}: L2 set exhausted by outstanding misses"
                    )
                snapshot = self.l2.invalidate(victim.addr)
                self._fire(snapshot.addr, EV_EVICT, snapshot.state, snapshot)
        self.l2.install(line, state=state, data=data, dirty=state.is_dirty)

    def _act_evict(self, snapshot) -> str:
        self._send_victim(snapshot)
        return VIC_PENDING

    def _send_victim(self, snapshot) -> None:
        dirty = snapshot.state in (MoesiState.M, MoesiState.O)
        self.stats.inc("victims.dirty" if dirty else "victims.clean")
        self._vic_pending[snapshot.addr] = _PendingVictim(snapshot.data, dirty)
        self._drop_l1_copies(snapshot.addr)
        mtype = MsgType.VIC_DIRTY if dirty else MsgType.VIC_CLEAN
        self.network.send(
            Message.request(
                mtype, self.name, self.dir_map.bank_of(snapshot.addr), snapshot.addr,
                RequesterKind.CPU_L2, data=snapshot.data,
            )
        )

    def _on_wb_ack(self, msg: Message) -> None:
        pending = self._vic_pending.get(msg.addr)
        if pending is None:
            raise CorePairError(f"{self.name}: WB ack without pending victim: {msg!r}")
        self._fire(msg.addr, EV_WB_ACK, VIC_PENDING, (msg.addr, pending))

    def _act_wb_ack(self, ctx: tuple) -> MoesiState:
        addr, pending = ctx
        del self._vic_pending[addr]
        for slot, request, callback in pending.waiters:
            self._execute(slot, request, callback)
        return MoesiState.I

    # -- probes ------------------------------------------------------------------------------

    def _on_probe(self, msg: Message) -> None:
        self.stats.inc("probes_received")
        event = _PROBE_EVENT.get(msg.probe_type)
        if event is None:
            raise CorePairError(f"bad probe {msg!r}")
        line = msg.addr
        pending = self._vic_pending.get(line)
        if pending is not None:
            self._fire(line, event, VIC_PENDING, (msg, pending))
            return
        cached = self.l2.lookup(line, touch=False)
        prev = MoesiState.I if cached is None else cached.state
        self._fire(line, event, prev, (msg, cached))

    def _act_probe_vic(self, ctx: tuple) -> str:
        # Vic in flight: forward the data so the directory never depends
        # on the (soon stale-dropped) victim message, and flag its origin
        # so system-level writes know to drop the superseded victim.
        msg, pending = ctx
        self._ack(msg, data=pending.data if pending.dirty else None,
                  dirty=pending.dirty, had_copy=True, from_victim=True)
        return VIC_PENDING

    def _act_probe_miss(self, ctx: tuple) -> MoesiState:
        self._ack(ctx[0], had_copy=False)
        return MoesiState.I

    def _act_down_dirty(self, ctx: tuple) -> MoesiState:
        msg, cached = ctx
        cached.state = MoesiState.O
        self._ack(msg, data=cached.data, dirty=True, had_copy=True)
        return MoesiState.O

    def _act_down_e(self, ctx: tuple) -> MoesiState:
        msg, cached = ctx
        cached.state = MoesiState.S
        self._ack(msg, had_copy=True)
        return MoesiState.S

    def _act_down_s(self, ctx: tuple) -> MoesiState:
        self._ack(ctx[0], had_copy=True)
        return MoesiState.S

    def _act_inv(self, ctx: tuple) -> MoesiState:
        msg, cached = ctx
        dirty = cached.state in (MoesiState.M, MoesiState.O)
        data = cached.data if dirty else None
        self.l2.invalidate(msg.addr)
        self._drop_l1_copies(msg.addr)
        self.stats.inc("probe_invalidations")
        self._ack(msg, data=data, dirty=dirty, had_copy=True)
        return MoesiState.I

    def _ack(self, probe: Message, data: LineData | None = None,
             dirty: bool = False, had_copy: bool = False,
             from_victim: bool = False) -> None:
        self.network.send(
            Message.probe_ack(
                self.name, probe.src, probe.addr, probe.tid,
                data=data, dirty=dirty, had_copy=had_copy,
                from_victim=from_victim,
            )
        )

    def _drop_l1_copies(self, line: int) -> None:
        for l1 in (*self.l1d, self.l1i):
            l1.invalidate(line)

    # -- introspection ------------------------------------------------------------------------

    def peek_state(self, line: int) -> MoesiState:
        cached = self.l2.lookup(line, touch=False)
        return MoesiState.I if cached is None else cached.state

    def peek_word(self, addr: int) -> int | None:
        cached = self.l2.lookup(line_addr(addr), touch=False)
        if cached is None or cached.data is None:
            return None
        return cached.data.word(word_index(addr))

    def pending_work(self) -> str | None:
        if self._mshrs:
            addr, mshr = next(iter(self._mshrs.items()))
            return f"{len(self._mshrs)} MSHRs (e.g. {addr:#x} want={mshr.kind})"
        if self._vic_pending:
            return f"{len(self._vic_pending)} pending victims"
        return None


#: shared by every CorePair (the table is immutable once built; built here
#: because the rows bind the action methods above)
_COREPAIR_TABLE = build_corepair_table()
