"""Generator-driven CPU core.

A core executes one program (a generator of :mod:`repro.workloads.trace`
ops) in order, blocking on each memory operation — a deliberately simple
in-order model whose runtime directly exposes memory-system latency, which
is the quantity the paper's optimizations target.  Instruction fetch is
modelled implicitly: every ``ifetch_interval`` ops the core fetches from a
ring of code addresses through the shared L1I (generating the RdBlkS
traffic the paper attributes to I-cache misses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator

from repro.cpu.corepair import CorePair, CpuRequest
from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.event_queue import SimulationError
from repro.workloads import trace as ops

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class CpuCore(Component):
    """One X86-core stand-in: in-order, one outstanding memory op."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        corepair: CorePair,
        slot: int,
        gpu: object | None = None,
        code_addrs: tuple[int, ...] = (),
        ifetch_interval: int = 0,
    ) -> None:
        super().__init__(sim, name, clock)
        self.corepair = corepair
        self.slot = slot
        self.gpu = gpu
        self.code_addrs = code_addrs
        self.ifetch_interval = ifetch_interval
        self._ifetch_counter = 0
        self._code_cursor = 0
        self._program: Generator | None = None
        self.done = True
        self.finished_at: int | None = None

    # -- program control ------------------------------------------------------

    def run_program(self, program: Generator) -> None:
        """Start executing ``program`` at the current simulation time."""
        if not self.done:
            raise SimulationError(f"{self.name} is already running a program")
        self._program = program
        self.done = False
        self.finished_at = None
        self.schedule(0, lambda: self._advance(None))

    def _advance(self, result: object) -> None:
        assert self._program is not None
        try:
            op = self._program.send(result)
        except StopIteration:
            self.done = True
            self.finished_at = self.now
            self._program = None
            return
        self.stats.inc("ops")
        self._maybe_ifetch(lambda: self._dispatch(op))

    def _maybe_ifetch(self, then: Callable[[], None]) -> None:
        if not self.code_addrs or self.ifetch_interval <= 0:
            then()
            return
        self._ifetch_counter += 1
        if self._ifetch_counter < self.ifetch_interval:
            then()
            return
        self._ifetch_counter = 0
        addr = self.code_addrs[self._code_cursor % len(self.code_addrs)]
        self._code_cursor += 1
        self.stats.inc("ifetches")
        self.corepair.access(
            self.slot, CpuRequest("ifetch", addr), lambda _r: then()
        )

    # -- op dispatch ---------------------------------------------------------------

    def _dispatch(self, op: object) -> None:
        if isinstance(op, ops.Think):
            self.schedule(op.cycles, lambda: self._advance(None))
        elif isinstance(op, ops.Load):
            self.stats.inc("loads")
            self.corepair.access(self.slot, CpuRequest("load", op.addr), self._advance)
        elif isinstance(op, ops.Store):
            self.stats.inc("stores")
            self.corepair.access(
                self.slot, CpuRequest("store", op.addr, value=op.value), self._advance
            )
        elif isinstance(op, ops.AtomicRMW):
            self.stats.inc("atomics")
            self.corepair.access(
                self.slot,
                CpuRequest(
                    "atomic", op.addr, atomic_op=op.op,
                    operand=op.operand, compare=op.compare,
                ),
                self._advance,
            )
        elif isinstance(op, ops.SpinUntil):
            self.stats.inc("spins")
            self._spin(op)
        elif isinstance(op, ops.Barrier):
            op.barrier.arrive(lambda: self.schedule(0, lambda: self._advance(None)))
        elif isinstance(op, ops.LaunchKernel):
            self._launch_kernel(op)
        elif isinstance(op, ops.WaitKernel):
            self._wait_kernel(op)
        else:
            raise SimulationError(f"{self.name}: CPU cannot execute {op!r}")

    def _spin(self, op: ops.SpinUntil) -> None:
        def check(value: int) -> None:
            if op.predicate(value):
                self._advance(value)
            else:
                self.stats.inc("spin_retries")
                self.schedule(op.backoff_cycles, retry)

        def retry() -> None:
            self.corepair.access(self.slot, CpuRequest("load", op.addr), check)

        retry()

    def _launch_kernel(self, op: ops.LaunchKernel) -> None:
        if self.gpu is None:
            raise SimulationError(f"{self.name}: no GPU attached for {op!r}")
        self.stats.inc("kernel_launches")
        handle = self.gpu.launch(op.kernel)
        self.schedule(self.gpu.launch_overhead_cycles, lambda: self._advance(handle))

    def _wait_kernel(self, op: ops.WaitKernel) -> None:
        if self.gpu is None:
            raise SimulationError(f"{self.name}: no GPU attached for {op!r}")

        def resume() -> None:
            self.schedule(0, lambda: self._advance(None))

        self.gpu.when_done(op.handle, resume)

    # -- bookkeeping -----------------------------------------------------------------

    def pending_work(self) -> str | None:
        if not self.done:
            return "program not finished"
        return None
