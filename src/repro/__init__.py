"""repro — a reproduction of "Enhanced System-Level Coherence for
Heterogeneous Unified Memory Architectures" (IISWC 2024).

A pure-Python, event-driven simulator of an AMD-APU-style heterogeneous
memory system: CPU CorePairs with a MOESI L2, a VIPER-style GPU cache
hierarchy, a DMA engine, and — the paper's subject — the system-level
directory backed by the shared LLC, in every variant the paper evaluates
(stateless baseline, the §III optimizations, and the §IV precise
owner/sharer-tracking directory).

Quickstart::

    from repro import SystemConfig, build_system, get_workload
    from repro.coherence.policies import PRESETS

    system = build_system(SystemConfig.small(policy=PRESETS["sharers"]))
    result = system.run_workload(get_workload("tq"))
    print(result.cycles, result.dir_probes, result.mem_accesses)
"""

from repro.coherence.policies import (
    PRESETS,
    DirectoryKind,
    DirectoryPolicy,
)
from repro.system.apu import ApuSystem, SimulationResult
from repro.system.builder import build_system
from repro.system.config import CacheGeometry, SystemConfig
from repro.workloads.base import KernelSpec, Workload, WorkloadBuild, WorkloadContext
from repro.workloads.registry import available_workloads, get_workload

__version__ = "1.0.0"

__all__ = [
    "ApuSystem",
    "CacheGeometry",
    "DirectoryKind",
    "DirectoryPolicy",
    "KernelSpec",
    "PRESETS",
    "SimulationResult",
    "SystemConfig",
    "Workload",
    "WorkloadBuild",
    "WorkloadContext",
    "available_workloads",
    "build_system",
    "get_workload",
    "__version__",
]
