"""Deadlock/starvation watchdog for flow-controlled simulations.

Bounded queues invert the fabric's control flow: a message may sit with *no
scheduled event* while it waits for a credit or a gated grant engine, so a
wedged protocol no longer shows up as a runaway event count — it shows up
as silence.  The :class:`Watchdog` converts that silence into a loud,
annotated failure:

- **Deadlock** — the event queue drains while some component still reports
  ``pending_work()``.  In a discrete-event simulation this is exactly the
  "no event fires for a window" condition: any pending event *will* fire
  when time jumps to it, so work stranded behind a full port can only
  manifest as an empty queue.
- **Starvation** — a probe (:meth:`add_probe`) reports the same port
  blocked with an unchanged since-stamp for :attr:`STARVATION_WINDOWS`
  consecutive windows: the port has waited multiple full windows for a
  credit without a single grant reaching it, while the rest of the system
  kept executing events (livelock).

The watchdog schedules **no events of its own**.  :meth:`Simulator.run
<repro.sim.event_queue.Simulator.run>` drives it: when armed, the run is
sliced into ``window_cycles``-sized chunks and :meth:`check` fires between
slices, so an armed watchdog leaves event order, event counts, and the
final tick bit-identical to an unwatched run — golden stats do not move
when the watchdog is switched on.

A trip raises :class:`WatchdogError` (a :class:`DeadlockError` subclass,
so existing handlers classify it the same way) whose message carries the
offending ports, every registered dump hook (the network's blocked-port
wait-for graph, the memory controller's bank queues), and — when a
:class:`~repro.sim.tracing.ProtocolTrace` is attached — the tail of the
protocol trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.sim.clock import ClockDomain
from repro.sim.component import Component
from repro.sim.event_queue import DeadlockError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class WatchdogError(DeadlockError):
    """Raised when the watchdog detects a deadlock or a starved port."""


class Watchdog(Component):
    """Periodic liveness checker (see module docstring)."""

    #: a port blocked with an unchanged since-stamp across this many
    #: consecutive windows counts as starved
    STARVATION_WINDOWS = 2

    #: protocol-trace events included in a trip report
    TRACE_TAIL = 20

    def __init__(
        self,
        sim: "Simulator",
        clock: ClockDomain,
        window_cycles: float,
        name: str = "watchdog",
    ) -> None:
        if window_cycles <= 0:
            raise ValueError(
                f"watchdog window must be > 0 cycles, got {window_cycles}"
            )
        super().__init__(sim, name, clock)
        self.window_cycles = window_cycles
        self.window_ticks = max(1, clock.cycles_to_ticks(window_cycles))
        #: ``probe() -> {port: blocked_since_tick}`` starvation probes
        self._probes: list[tuple[str, Callable[[], dict[str, int]]]] = []
        #: ``dump() -> str`` state dumps included in trip reports
        self._dumps: list[tuple[str, Callable[[], str]]] = []
        self._trace = None
        #: ``port key -> (since_tick, consecutive_windows)`` from the
        #: previous check
        self._blocked: dict[str, tuple[int, int]] = {}
        sim.install_watchdog(self)

    # -- wiring ------------------------------------------------------------

    def add_probe(self, name: str,
                  probe: Callable[[], dict[str, int]]) -> "Watchdog":
        """Register a starvation probe returning blocked-since stamps."""
        self._probes.append((name, probe))
        return self

    def add_dump(self, name: str, dump: Callable[[], str]) -> "Watchdog":
        """Register a state dump included in every trip report."""
        self._dumps.append((name, dump))
        return self

    def attach_trace(self, trace) -> "Watchdog":
        """Include the tail of ``trace`` (a ProtocolTrace) in trip reports."""
        self._trace = trace
        return self

    # -- checks (driven by Simulator.run between window slices) ------------

    def check(self) -> None:
        """One liveness check: raise on a port starved across windows."""
        self.stats.inc("checks")
        if not self._probes:
            return
        current: dict[str, int] = {}
        for probe_name, probe in self._probes:
            for port, since in probe().items():
                current[f"{probe_name}.{port}"] = since
        previous = self._blocked
        blocked: dict[str, tuple[int, int]] = {}
        starved: list[str] = []
        for key, since in current.items():
            prev = previous.get(key)
            windows = prev[1] + 1 if prev is not None and prev[0] == since else 0
            blocked[key] = (since, windows)
            if windows >= self.STARVATION_WINDOWS:
                starved.append(
                    f"{key} blocked since tick {since} "
                    f"({windows} full windows without a grant)"
                )
        self._blocked = blocked
        if starved:
            self._trip("starved ports", starved)

    def deadlock(self, pending: list[str]) -> None:
        """Trip on queue-drained-with-pending-work (called by the run loop)."""
        self._trip("event queue drained with pending work", pending)

    def _trip(self, reason: str, details: list[str]) -> None:
        self.stats.inc("trips")
        raise WatchdogError(self.report(reason, details))

    @property
    def trips(self) -> int:
        return int(self.stats["trips"])

    def report(self, reason: str, details: list[str]) -> str:
        """Render the full trip report: reason, details, every dump hook,
        and the protocol-trace tail."""
        lines = [
            f"watchdog: {reason} at tick {self.now} "
            f"(window = {self.window_cycles:g} {self.clock.name} cycles)"
        ]
        lines.extend(f"  {item}" for item in details)
        for name, dump in self._dumps:
            text = dump()
            if text:
                lines.append(f"-- {name} --")
                lines.append(text)
        if self._trace is not None and len(self._trace):
            lines.append(f"-- protocol trace tail ({self.TRACE_TAIL}) --")
            lines.append(self._trace.dump(limit=self.TRACE_TAIL))
        return "\n".join(lines)
