"""Clock domains.

The simulated APU runs its CPU cluster, GPU cluster, and uncore (directory,
LLC, memory controller) on different clocks (Table III of the paper: 3.5 GHz
CPU, 1.1 GHz GPU).  A :class:`ClockDomain` converts a component-local cycle
count into global ticks (picoseconds).
"""

from __future__ import annotations


class ClockDomain:
    """A named clock with a frequency, converting cycles to ticks.

    Ticks are picoseconds, so a 3.5 GHz clock has a period of 286 ticks
    (rounded).  Rounding to integer ticks keeps the event queue exact and
    deterministic; the sub-picosecond error is irrelevant at the fidelity
    level of this model.
    """

    #: cap on the fractional-cycle memo table (guards pathological callers
    #: that convert unbounded distinct float values).
    _MEMO_LIMIT = 4096

    def __init__(self, name: str, freq_hz: float) -> None:
        if freq_hz <= 0:
            raise ValueError(f"clock frequency must be positive, got {freq_hz}")
        self.name = name
        self.freq_hz = freq_hz
        self.period_ticks = max(1, round(1e12 / freq_hz))
        self._tick_memo: dict[float, int] = {}

    def cycles_to_ticks(self, cycles: float) -> int:
        """Convert a (possibly fractional) cycle count to whole ticks.

        Integer cycle counts — the overwhelmingly common case on the hot
        path — take an exact multiply with no float round-trip.  Fractional
        counts are memoized: simulations convert the same handful of
        configured latencies millions of times, and ``round()`` plus the
        float multiply dominated the old profile.  Both paths return
        bit-identical results to ``max(0, round(cycles * period_ticks))``.
        """
        if type(cycles) is int:
            # exact: int * int cannot round, and round(n) == n
            return cycles * self.period_ticks if cycles > 0 else 0
        memo = self._tick_memo
        ticks = memo.get(cycles)
        if ticks is None:
            ticks = round(cycles * self.period_ticks)
            if ticks < 0:
                ticks = 0
            if len(memo) < self._MEMO_LIMIT:
                memo[cycles] = ticks
        return ticks

    def ticks_to_cycles(self, ticks: int) -> float:
        return ticks / self.period_ticks

    def __repr__(self) -> str:
        ghz = self.freq_hz / 1e9
        return f"ClockDomain({self.name!r}, {ghz:.3g} GHz, period={self.period_ticks} ticks)"
