"""Tick-based event queue and top-level simulator object.

Global simulated time is measured in integer *ticks* (picoseconds by
convention).  Components never touch ticks directly; they schedule through
their :class:`~repro.sim.clock.ClockDomain`, which converts local cycles to
ticks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable

_heappush = heapq.heappush
_heappop = heapq.heappop


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while components report pending work."""


#: Sentinel marking an event scheduled without an argument (``callback()``
#: form).  Distinct from ``None`` so callers can legitimately pass ``None``
#: as an event argument.
_NO_ARG = object()


class EventQueue:
    """A priority queue of ``(time, priority, sequence, callback, arg)`` events.

    ``priority`` breaks ties between events scheduled for the same tick
    (lower runs first); ``sequence`` preserves FIFO order among equals so the
    simulation is fully deterministic.

    Events come in two shapes: ``callback()`` (the classic closure form) and
    ``callback(arg)`` when an ``arg`` is supplied to :meth:`schedule` /
    :meth:`schedule_after`.  The second form lets hot paths schedule a
    preallocated bound method plus its payload instead of allocating a fresh
    closure per event — the dominant per-message cost in the old kernel.

    *Schedule exploration* (:meth:`set_tie_break`): tests can replace the
    FIFO tie-break among same-``(time, priority)`` events with a seeded
    random permutation, exploring alternative *legal* event orders the
    default schedule never samples.  Every explored schedule is still fully
    deterministic for a given seed.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, Callable, object]] = []
        self._seq = 0
        self.now = 0
        self.executed_events = 0
        #: optional RNG permuting same-(time, priority) ordering (see
        #: :meth:`set_tie_break`); None = deterministic FIFO.
        self._tie_break = None

    def __len__(self) -> int:
        return len(self._heap)

    def set_tie_break(self, rng) -> None:
        """Permute the ordering of same-``(time, priority)`` events.

        ``rng`` is a seeded :class:`random.Random` (or None to restore FIFO
        order).  Each newly scheduled event's sequence number gains a random
        high-order key, so events that tie on time and priority run in a
        seeded-random (but reproducible) order instead of FIFO.  Low-order
        bits keep the raw sequence, so keys stay unique and the heap never
        falls through to comparing callbacks.

        This is the litmus suite's schedule-exploration hook; production
        runs never call it and pay only a None-check per scheduled event.
        """
        self._tie_break = rng

    def schedule(
        self,
        when: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Schedule ``callback`` (or ``callback(arg)``) at absolute tick ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: when={when} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if self._tie_break is not None:
            seq |= self._tie_break.getrandbits(32) << 32
        _heappush(self._heap, (when, priority, seq, callback, arg))

    def schedule_after(
        self,
        delay: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        Open-coded (rather than delegating to :meth:`schedule`) because this
        is the kernel's most common scheduling entry point — one call frame
        per event matters at millions of events per second.
        """
        now = self.now
        when = now + delay
        if when < now:
            raise SimulationError(
                f"cannot schedule event in the past: when={when} < now={now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if self._tie_break is not None:
            seq |= self._tie_break.getrandbits(32) << 32
        _heappush(self._heap, (when, priority, seq, callback, arg))

    def pop_and_run(self) -> None:
        """Advance time to the next event and run it."""
        when, _priority, _seq, callback, arg = heapq.heappop(self._heap)
        self.now = when
        self.executed_events += 1
        if arg is _NO_ARG:
            callback()
        else:
            callback(arg)

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` ticks, or ``max_events``.

        This is the kernel's inner loop: heap access, ``heappop``, and the
        no-arg sentinel are bound to locals and the until/max_events guards
        are merged, so the per-event overhead is one pop, two attribute
        stores (``now`` / ``executed_events``), and the callback itself.
        """
        heap = self._heap
        pop = heapq.heappop
        no_arg = _NO_ARG
        # -1 == unlimited: ``executed`` (counting up from 0) never hits it.
        limit = -1 if max_events is None else max_events
        executed = 0
        # ``executed_events`` is written back once on exit (callbacks never
        # read it mid-run; ``now`` is the kernel's public clock and *is*
        # updated per event).  The try/finally keeps the count exact even
        # when a callback raises.
        try:
            if until is None:
                while heap:
                    if executed == limit:
                        return
                    when, _priority, _seq, callback, arg = pop(heap)
                    self.now = when
                    executed += 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
            else:
                while heap:
                    if heap[0][0] > until:
                        self.now = until
                        return
                    if executed == limit:
                        return
                    when, _priority, _seq, callback, arg = pop(heap)
                    self.now = when
                    executed += 1
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
        finally:
            self.executed_events += executed

    def next_time(self) -> int | None:
        """Tick of the earliest pending event (None when the queue is empty)."""
        return self._heap[0][0] if self._heap else None


class Simulator:
    """Top-level container: event queue, component registry, and run control.

    ``Simulator`` also provides the *quiesce* check used for deadlock
    detection: any registered component may implement ``pending_work()``
    returning a truthy description of outstanding work; if the event queue
    drains while some component still has pending work, the run raises
    :class:`DeadlockError` naming the offenders.
    """

    #: Default hard cap on executed events, as a runaway-protocol backstop.
    DEFAULT_MAX_EVENTS = 500_000_000

    def __init__(self) -> None:
        self.events = EventQueue()
        self.components: list[Any] = []
        self._finalizers: list[Callable[[], None]] = []

    @property
    def now(self) -> int:
        return self.events.now

    def register(self, component: Any) -> None:
        self.components.append(component)

    def add_finalizer(self, callback: Callable[[], None]) -> None:
        """Register a callback to run once the simulation fully drains."""
        self._finalizers.append(callback)

    def pending_work(self) -> list[str]:
        """Describe outstanding work across all components (empty = quiesced)."""
        pending: list[str] = []
        for component in self.components:
            probe = getattr(component, "pending_work", None)
            if probe is None:
                continue
            description = probe()
            if description:
                pending.append(f"{component.name}: {description}")
        return pending

    def run(self, max_events: int | None = None) -> int:
        """Run to completion; returns the final tick.

        Raises :class:`DeadlockError` if the queue drains with work pending.
        """
        limit = self.DEFAULT_MAX_EVENTS if max_events is None else max_events
        self.events.run(max_events=limit)
        if len(self.events) > 0:
            raise SimulationError(
                f"simulation exceeded max_events={limit} (possible livelock)"
            )
        pending = self.pending_work()
        if pending:
            raise DeadlockError(
                "event queue drained with pending work:\n  " + "\n  ".join(pending)
            )
        for callback in self._finalizers:
            callback()
        return self.events.now

    def run_for(self, ticks: int, max_events: int | None = None) -> int:
        """Run at most ``ticks`` ticks from now; returns the final tick.

        Enforces the same ``DEFAULT_MAX_EVENTS`` livelock backstop as
        :meth:`run`: if the event budget is exhausted while events remain
        inside the time window, the run raises instead of spinning forever.
        """
        limit = self.DEFAULT_MAX_EVENTS if max_events is None else max_events
        target = self.events.now + ticks
        self.events.run(until=target, max_events=limit)
        next_time = self.events.next_time()
        if next_time is not None and next_time <= target:
            raise SimulationError(
                f"simulation exceeded max_events={limit} (possible livelock)"
            )
        return self.events.now


def drain(simulator: Simulator, sources: Iterable[Any]) -> int:
    """Convenience: run ``simulator`` to completion and assert sources finished."""
    end = simulator.run()
    for source in sources:
        done = getattr(source, "done", None)
        if done is not None and not done:
            raise DeadlockError(f"source {source!r} did not finish")
    return end
