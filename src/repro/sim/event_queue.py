"""Tick-based event queue and top-level simulator object.

Global simulated time is measured in integer *ticks* (picoseconds by
convention).  Components never touch ticks directly; they schedule through
their :class:`~repro.sim.clock.ClockDomain`, which converts local cycles to
ticks.

Two queue implementations live here:

- :class:`EventQueue` — the production kernel: a calendar-style *bucket
  queue* keyed on absolute integer ticks.  Same-tick events (the common
  case: route tables and clock periods quantize delays onto a small set of
  tick offsets, so protocol bursts cluster) share one bucket appended to in
  O(1); a min-heap orders only the *distinct* occupied ticks, and events
  beyond a far horizon park in an overflow heap so timers never widen the
  working set.  Event ordering is bit-identical to a single heap ordered by
  ``(time, priority, seq)``.
- :class:`HeapEventQueue` — the classic binary-heap kernel, kept as the
  reference implementation: the litmus differential suite replays canonical
  schedules on both queues and asserts identical traces, so any ordering
  bug in the calendar queue is caught against this oracle.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import Any, Callable, Iterable

_heappush = heapq.heappush
_heappop = heapq.heappop
_heapify = heapq.heapify


class SimulationError(RuntimeError):
    """Raised for fatal conditions inside the simulation kernel."""


class DeadlockError(SimulationError):
    """Raised when the event queue drains while components report pending work."""


#: Sentinel marking an event scheduled without an argument (``callback()``
#: form).  Distinct from ``None`` so callers can legitimately pass ``None``
#: as an event argument.
_NO_ARG = object()


class EventQueue:
    """A calendar/bucket priority queue of ``(time, priority, seq)`` events.

    ``priority`` breaks ties between events scheduled for the same tick
    (lower runs first); ``sequence`` preserves FIFO order among equals so the
    simulation is fully deterministic.

    Structure (see module docstring): ``_buckets`` maps an absolute tick to
    the list of events due then, stored as ``(-priority, -seq, callback,
    arg)`` so the list can be kept ascending and drained with O(1) pops off
    the *end* in ``(priority, seq)`` order.  ``_times`` is a min-heap over
    the distinct occupied ticks only — with several events per tick the heap
    shrinks by the clustering factor, and the per-event cost of the common
    path is one dict probe plus one list append.  Events further than
    ``FAR_HORIZON`` ticks out go to the ``_far`` overflow heap and migrate
    into buckets lazily when the near queue catches up.  Drained bucket
    lists are recycled through a small free list, so steady-state operation
    allocates no per-event bookkeeping beyond the event tuple itself.

    Events come in two shapes: ``callback()`` (the classic closure form) and
    ``callback(arg)`` when an ``arg`` is supplied to :meth:`schedule` /
    :meth:`schedule_after`.  The second form lets hot paths schedule a
    preallocated bound method plus its payload instead of allocating a fresh
    closure per event — the dominant per-message cost in the old kernel.

    *Schedule exploration* (:meth:`set_tie_break`): tests can replace the
    FIFO tie-break among same-``(time, priority)`` events with a seeded
    random permutation, exploring alternative *legal* event orders the
    default schedule never samples.  Every explored schedule is still fully
    deterministic for a given seed.

    *Cancellation* (:meth:`schedule_cancellable` / :meth:`cancel`): the
    queue supports stale-event handling through pooled ``[callback, arg,
    alive, generation]`` records.  A cancelled event stays in its bucket as
    a stub but fires into nothing, its record returning to the free list;
    generation counters make handles to recycled records inert, and
    :meth:`reset` scrubs callback/arg references out of every pending and
    pooled record so no workload object can leak across queue reuse.
    """

    #: events scheduled further out than this park in the overflow heap.
    #: 2^22 ticks ~= 4.2 us of simulated time: far beyond any route or DRAM
    #: latency, so only long workload timers ever overflow.
    FAR_HORIZON = 1 << 22

    #: cap on recycled bucket lists / cancellable records kept around.
    _POOL_LIMIT = 64

    def __init__(self) -> None:
        #: absolute tick -> ascending list of (-priority, -seq, callback, arg)
        self._buckets: dict[int, list] = {}
        #: min-heap over the distinct ticks present in ``_buckets``
        self._times: list[int] = []
        #: overflow heap of (when, priority, seq, callback, arg) tuples
        self._far: list[tuple] = []
        #: bucket currently being drained by :meth:`run` (None otherwise)
        self._active: list | None = None
        #: recycled (empty) bucket lists
        self._bucket_pool: list[list] = []
        #: recycled cancellable-event records (slots scrubbed to None)
        self._cancel_pool: list[list] = []
        self._seq = 0
        self.now = 0
        self.executed_events = 0
        self.cancelled_events = 0
        #: optional RNG permuting same-(time, priority) ordering (see
        #: :meth:`set_tie_break`); None = deterministic FIFO.
        self._tie_break = None
        #: the cancellable-event trampoline, bound ONCE: attribute access on
        #: a method creates a fresh bound-method object every time, so both
        #: scheduling and the identity scan in :meth:`reset` must share this
        #: single binding (and it saves an allocation per cancellable event).
        self._trampoline = self._fire_cancellable

    def __len__(self) -> int:
        return sum(map(len, self._buckets.values())) + len(self._far)

    def set_tie_break(self, rng) -> None:
        """Permute the ordering of same-``(time, priority)`` events.

        ``rng`` is a seeded :class:`random.Random` (or None to restore FIFO
        order).  Each newly scheduled event's sequence number gains a random
        high-order key, so events that tie on time and priority run in a
        seeded-random (but reproducible) order instead of FIFO.  Low-order
        bits keep the raw sequence, so keys stay unique and ordering never
        falls through to comparing callbacks.

        This is the litmus suite's schedule-exploration hook; production
        runs never call it and pay only a None-check per scheduled event.
        """
        self._tie_break = rng

    def schedule(
        self,
        when: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Schedule ``callback`` (or ``callback(arg)``) at absolute tick ``when``."""
        now = self.now
        if when < now:
            raise SimulationError(
                f"cannot schedule event in the past: when={when} < now={now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if self._tie_break is not None:
            seq |= self._tie_break.getrandbits(32) << 32
        if when == now:
            active = self._active
            if active is not None:
                # joining the bucket currently being drained: insert in
                # (priority, seq) position so it interleaves exactly as the
                # reference heap would order it.
                insort(active, (-priority, -seq, callback, arg))
                return
        elif when - now > self.FAR_HORIZON:
            _heappush(self._far, (when, priority, seq, callback, arg))
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            pool = self._bucket_pool
            if pool:
                bucket = pool.pop()
                bucket.append((-priority, -seq, callback, arg))
            else:
                bucket = [(-priority, -seq, callback, arg)]
            self._buckets[when] = bucket
            _heappush(self._times, when)
        else:
            bucket.append((-priority, -seq, callback, arg))

    def schedule_after(
        self,
        delay: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Schedule ``callback`` to run ``delay`` ticks from now.

        Open-coded (rather than delegating to :meth:`schedule`) because this
        is the kernel's most common scheduling entry point — one call frame
        per event matters at millions of events per second.
        """
        now = self.now
        when = now + delay
        if when < now:
            raise SimulationError(
                f"cannot schedule event in the past: when={when} < now={now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if self._tie_break is not None:
            seq |= self._tie_break.getrandbits(32) << 32
        if when == now:
            active = self._active
            if active is not None:
                insort(active, (-priority, -seq, callback, arg))
                return
        elif delay > self.FAR_HORIZON:
            _heappush(self._far, (when, priority, seq, callback, arg))
            return
        bucket = self._buckets.get(when)
        if bucket is None:
            pool = self._bucket_pool
            if pool:
                bucket = pool.pop()
                bucket.append((-priority, -seq, callback, arg))
            else:
                bucket = [(-priority, -seq, callback, arg)]
            self._buckets[when] = bucket
            _heappush(self._times, when)
        else:
            bucket.append((-priority, -seq, callback, arg))

    # -- cancellation ------------------------------------------------------

    def schedule_cancellable(
        self,
        when: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> tuple:
        """Like :meth:`schedule`, returning a handle for :meth:`cancel`.

        The ``(callback, arg)`` pair lives in a pooled record; cancelling
        marks the record stale (the queue slot fires into nothing and is
        *not* counted in ``executed_events``) and drops both references
        immediately, so cancelled closures cannot linger until their tick.
        """
        pool = self._cancel_pool
        if pool:
            record = pool.pop()
            generation = record[3] + 1
            record[0] = callback
            record[1] = arg
            record[2] = True
            record[3] = generation
        else:
            generation = 0
            record = [callback, arg, True, 0]
        self.schedule(when, self._trampoline, priority, record)
        return (record, generation)

    def cancel(self, handle: tuple) -> bool:
        """Cancel a pending cancellable event; returns True if it was live.

        Safe against stale handles: once the event has fired (or the queue
        was :meth:`reset`), the record's generation has moved on and the
        handle is inert — a recycled record can never be cancelled through
        an old handle.
        """
        record, generation = handle
        if record[3] == generation and record[2]:
            record[2] = False
            record[0] = None
            record[1] = None
            self.cancelled_events += 1
            return True
        return False

    def _fire_cancellable(self, record: list) -> None:
        """Queue-slot trampoline for cancellable events (see above)."""
        callback = record[0]
        arg = record[1]
        alive = record[2]
        record[0] = None
        record[1] = None
        record[2] = False
        if len(self._cancel_pool) < self._POOL_LIMIT:
            self._cancel_pool.append(record)
        if alive:
            if arg is _NO_ARG:
                callback()
            else:
                callback(arg)
        else:
            # stale slot: uncount it — cancelled events never "executed"
            self.executed_events -= 1

    def reset(self) -> None:
        """Discard all pending events and restore a fresh-queue state.

        Pending *cancellable* records are scrubbed (callback/arg dropped,
        generation bumped) and returned to the free list, so neither the
        pool nor any outstanding handle can leak workload objects across a
        reset — the pool-reuse leak guard in the test suite pins this.
        Recycled bucket lists are kept; the tie-break RNG is kept (it is a
        caller-owned knob, cleared with ``set_tie_break(None)``).
        """
        trampoline = self._trampoline
        pool = self._cancel_pool
        for bucket in self._buckets.values():
            for item in bucket:
                if item[2] is trampoline:
                    self._scrub_record(item[3], pool)
        for item in self._far:
            if item[3] is trampoline:
                self._scrub_record(item[4], pool)
        self._buckets.clear()
        self._times.clear()
        self._far.clear()
        self._active = None
        self._seq = 0
        self.now = 0
        self.executed_events = 0
        self.cancelled_events = 0

    @staticmethod
    def _scrub_record(record: list, pool: list) -> None:
        record[0] = None
        record[1] = None
        record[2] = False
        record[3] += 1  # invalidate outstanding handles
        if len(pool) < EventQueue._POOL_LIMIT:
            pool.append(record)

    # -- execution ---------------------------------------------------------

    def pop_and_run(self) -> None:
        """Advance time to the next event and run it."""
        if not self._times and not self._far:
            raise IndexError("pop from an empty event queue")
        self.run(max_events=1)

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` ticks, or ``max_events``.

        This is the kernel's inner loop.  Per event the common path is one
        list pop off the active bucket and the callback itself; per distinct
        tick it adds one heap pop, one dict delete, and (for multi-event
        buckets) one C-level sort.  The try/finally keeps ``executed_events``
        exact and re-registers a partially drained bucket when a callback
        raises or ``max_events`` stops the loop mid-bucket.
        """
        times = self._times
        buckets = self._buckets
        far = self._far
        bucket_pool = self._bucket_pool
        pool_limit = self._POOL_LIMIT
        pop = _heappop
        no_arg = _NO_ARG
        # -1 == unlimited: ``executed`` (counting up from 0) never hits it.
        limit = -1 if max_events is None else max_events
        executed = 0
        try:
            while True:
                if far and (not times or far[0][0] <= times[0]):
                    # migrate due far-future events into near buckets
                    threshold = times[0] if times else far[0][0]
                    while far and far[0][0] <= threshold:
                        when, priority, seq, callback, arg = pop(far)
                        bucket = buckets.get(when)
                        if bucket is None:
                            buckets[when] = [(-priority, -seq, callback, arg)]
                            _heappush(times, when)
                        else:
                            bucket.append((-priority, -seq, callback, arg))
                    continue
                if not times:
                    return
                when = times[0]
                if until is not None and when > until:
                    self.now = until
                    return
                if executed == limit:
                    return
                pop(times)
                bucket = buckets[when]
                self.now = when
                if len(bucket) > 1:
                    bucket.sort()
                self._active = bucket
                while bucket:
                    if executed == limit:
                        return  # the finally clause re-registers the bucket
                    item = bucket.pop()
                    executed += 1
                    callback = item[2]
                    arg = item[3]
                    if arg is no_arg:
                        callback()
                    else:
                        callback(arg)
                del buckets[when]
                self._active = None
                if len(bucket_pool) < pool_limit:
                    bucket_pool.append(bucket)
        finally:
            self.executed_events += executed
            active = self._active
            if active is not None:
                self._active = None
                if active:
                    # partially drained (limit hit or callback raised):
                    # its tick goes back on the heap, the bucket is still
                    # registered in ``_buckets`` and still sorted.
                    _heappush(times, self.now)
                else:
                    del buckets[self.now]

    def next_time(self) -> int | None:
        """Tick of the earliest pending event (None when the queue is empty)."""
        nearest = self._times[0] if self._times else None
        if self._far:
            far_time = self._far[0][0]
            if nearest is None or far_time < nearest:
                return far_time
        return nearest


class HeapEventQueue:
    """The classic binary-heap event queue, kept as a reference oracle.

    Semantically identical to :class:`EventQueue` (minus cancellation): a
    single heap of ``(time, priority, sequence, callback, arg)`` tuples.
    The litmus differential suite runs canonical schedules on both
    implementations and asserts bit-identical traces; keep this class's
    ordering semantics frozen.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, Callable, object]] = []
        self._seq = 0
        self.now = 0
        self.executed_events = 0
        self._tie_break = None

    def __len__(self) -> int:
        return len(self._heap)

    def set_tie_break(self, rng) -> None:
        """Same contract as :meth:`EventQueue.set_tie_break`."""
        self._tie_break = rng

    def schedule(
        self,
        when: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Schedule ``callback`` (or ``callback(arg)``) at absolute tick ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: when={when} < now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        if self._tie_break is not None:
            seq |= self._tie_break.getrandbits(32) << 32
        _heappush(self._heap, (when, priority, seq, callback, arg))

    def schedule_after(
        self,
        delay: int,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Schedule ``callback`` to run ``delay`` ticks from now."""
        self.schedule(self.now + delay, callback, priority, arg)

    def pop_and_run(self) -> None:
        """Advance time to the next event and run it."""
        when, _priority, _seq, callback, arg = _heappop(self._heap)
        self.now = when
        self.executed_events += 1
        if arg is _NO_ARG:
            callback()
        else:
            callback(arg)

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run events until the queue drains, ``until`` ticks, or ``max_events``."""
        heap = self._heap
        pop = _heappop
        no_arg = _NO_ARG
        limit = -1 if max_events is None else max_events
        executed = 0
        try:
            while heap:
                if until is not None and heap[0][0] > until:
                    self.now = until
                    return
                if executed == limit:
                    return
                when, _priority, _seq, callback, arg = pop(heap)
                self.now = when
                executed += 1
                if arg is no_arg:
                    callback()
                else:
                    callback(arg)
        finally:
            self.executed_events += executed

    def next_time(self) -> int | None:
        """Tick of the earliest pending event (None when the queue is empty)."""
        return self._heap[0][0] if self._heap else None


class Simulator:
    """Top-level container: event queue, component registry, and run control.

    ``Simulator`` also provides the *quiesce* check used for deadlock
    detection: any registered component may implement ``pending_work()``
    returning a truthy description of outstanding work; if the event queue
    drains while some component still has pending work, the run raises
    :class:`DeadlockError` naming the offenders.

    ``queue_class`` selects the event-queue implementation (the calendar
    :class:`EventQueue` by default); the litmus differential suite swaps in
    :class:`HeapEventQueue` to cross-check schedules.
    """

    #: Default hard cap on executed events, as a runaway-protocol backstop.
    DEFAULT_MAX_EVENTS = 500_000_000

    #: event-queue implementation used when none is passed in
    queue_class: Callable[[], Any] = EventQueue

    def __init__(self, queue: Any = None) -> None:
        self.events = queue if queue is not None else self.queue_class()
        self.components: list[Any] = []
        self._finalizers: list[Callable[[], None]] = []
        #: armed liveness checker (see :mod:`repro.sim.watchdog`), if any
        self.watchdog: Any = None

    def install_watchdog(self, watchdog: Any) -> None:
        """Attach a liveness watchdog; its report enriches DeadlockErrors."""
        self.watchdog = watchdog

    @property
    def now(self) -> int:
        return self.events.now

    def register(self, component: Any) -> None:
        self.components.append(component)

    def add_finalizer(self, callback: Callable[[], None]) -> None:
        """Register a callback to run once the simulation fully drains."""
        self._finalizers.append(callback)

    def pending_work(self) -> list[str]:
        """Describe outstanding work across all components (empty = quiesced)."""
        pending: list[str] = []
        for component in self.components:
            probe = getattr(component, "pending_work", None)
            if probe is None:
                continue
            description = probe()
            if description:
                pending.append(f"{component.name}: {description}")
        return pending

    def run(self, max_events: int | None = None) -> int:
        """Run to completion; returns the final tick.

        Raises :class:`DeadlockError` if the queue drains with work pending.
        """
        limit = self.DEFAULT_MAX_EVENTS if max_events is None else max_events
        if self.watchdog is None:
            self.events.run(max_events=limit)
        else:
            self._run_watched(limit)
        if len(self.events) > 0:
            raise SimulationError(
                f"simulation exceeded max_events={limit} (possible livelock)"
            )
        pending = self.pending_work()
        if pending:
            if self.watchdog is not None:
                self.watchdog.deadlock(pending)  # raises WatchdogError
            raise DeadlockError(
                "event queue drained with pending work:\n  " + "\n  ".join(pending)
            )
        for callback in self._finalizers:
            callback()
        return self.events.now

    def _run_watched(self, limit: int) -> None:
        """Run to completion in watchdog-window slices.

        The watchdog schedules no events; instead the run pauses every
        ``window_ticks`` for a liveness check.  Event order, event counts,
        and the final tick are bit-identical to an unwatched run — the
        only difference is where the inner loop briefly returns.
        """
        events = self.events
        watchdog = self.watchdog
        window = watchdog.window_ticks
        start = events.executed_events
        while True:
            remaining = limit - (events.executed_events - start)
            if remaining <= 0:
                return  # the caller raises the max_events backstop
            events.run(until=events.now + window, max_events=remaining)
            if events.next_time() is None:
                return
            watchdog.check()  # raises WatchdogError on a starved port

    def run_for(self, ticks: int, max_events: int | None = None) -> int:
        """Run at most ``ticks`` ticks from now; returns the final tick.

        Enforces the same ``DEFAULT_MAX_EVENTS`` livelock backstop as
        :meth:`run`: if the event budget is exhausted while events remain
        inside the time window, the run raises instead of spinning forever.
        """
        limit = self.DEFAULT_MAX_EVENTS if max_events is None else max_events
        target = self.events.now + ticks
        self.events.run(until=target, max_events=limit)
        next_time = self.events.next_time()
        if next_time is not None and next_time <= target:
            raise SimulationError(
                f"simulation exceeded max_events={limit} (possible livelock)"
            )
        return self.events.now


def drain(simulator: Simulator, sources: Iterable[Any]) -> int:
    """Convenience: run ``simulator`` to completion and assert sources finished."""
    end = simulator.run()
    for source in sources:
        done = getattr(source, "done", None)
        if done is not None and not done:
            raise DeadlockError(f"source {source!r} did not finish")
    return end
