"""On-chip message fabric.

The fabric is a star: every coherence controller registers an endpoint with a
*kind* (``"l2"``, ``"tcc"``, ``"dir"``, ``"dma"``, ...), and messages between
endpoints incur a one-way latency taken from a ``(src_kind, dst_kind)`` table
(falling back to a default).  The fabric counts every message by category and
by route — those counters are the "network traffic" data behind Figures 5
and 7 of the paper.

Messages are duck-typed: the fabric requires ``src``, ``dst``, ``category``
and ``size_bytes`` attributes and otherwise passes them through untouched.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.clock import ClockDomain
from repro.sim.component import Component, Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class Network(Component):
    """Star-topology interconnect with per-route latency and traffic stats."""

    def __init__(
        self,
        sim: "Simulator",
        clock: ClockDomain,
        default_latency_cycles: float = 10.0,
        name: str = "network",
    ) -> None:
        super().__init__(sim, name, clock)
        self.default_latency_cycles = default_latency_cycles
        self._endpoints: dict[str, Controller] = {}
        self._kinds: dict[str, str] = {}
        self._latency_table: dict[tuple[str, str], float] = {}

    # -- wiring -----------------------------------------------------------

    def attach(self, endpoint: Controller, kind: str) -> None:
        """Register ``endpoint`` (a Controller) under its ``name``."""
        if endpoint.name in self._endpoints:
            raise SimulationError(f"duplicate network endpoint {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        self._kinds[endpoint.name] = kind

    def set_latency(self, src_kind: str, dst_kind: str, cycles: float) -> None:
        """Set the one-way latency between two endpoint kinds (both directions)."""
        self._latency_table[(src_kind, dst_kind)] = cycles
        self._latency_table[(dst_kind, src_kind)] = cycles

    def endpoints_of_kind(self, kind: str) -> list[str]:
        return [name for name, k in self._kinds.items() if k == kind]

    def kind_of(self, name: str) -> str:
        return self._kinds[name]

    # -- transport --------------------------------------------------------

    def latency_cycles(self, src: str, dst: str) -> float:
        key = (self._kinds.get(src, "?"), self._kinds.get(dst, "?"))
        return self._latency_table.get(key, self.default_latency_cycles)

    def send(self, msg: Any) -> None:
        """Deliver ``msg`` from ``msg.src`` to ``msg.dst`` after the route latency."""
        dst = self._endpoints.get(msg.dst)
        if dst is None:
            raise SimulationError(f"unknown network endpoint {msg.dst!r} for {msg!r}")
        if msg.src not in self._endpoints:
            raise SimulationError(f"unknown network source {msg.src!r} for {msg!r}")
        self._account(msg)
        delay = self.clock.cycles_to_ticks(self.latency_cycles(msg.src, msg.dst))
        self.sim.events.schedule_after(delay, lambda: dst.deliver(msg))

    def _account(self, msg: Any) -> None:
        self.stats.inc("messages")
        self.stats.inc(f"messages.{msg.category}")
        self.stats.inc("bytes", msg.size_bytes)
        route = f"{self._kinds[msg.src]}->{self._kinds[msg.dst]}"
        self.stats.child("routes").inc(route)
