"""On-chip message fabric.

The fabric is a star: every coherence controller registers an endpoint with a
*kind* (``"l2"``, ``"tcc"``, ``"dir"``, ``"dma"``, ...), and messages between
endpoints incur a one-way latency taken from a ``(src_kind, dst_kind)`` table
(falling back to a default).  The fabric counts every message by category and
by route — those counters are the "network traffic" data behind Figures 5
and 7 of the paper.

Messages are duck-typed: the fabric requires ``src``, ``dst``, ``category``
and ``size_bytes`` attributes and otherwise passes them through untouched.

Hot path: :meth:`Network.send` runs once per protocol message, so the route
latency (integer ticks) and the destination's bound ``deliver`` method are
precomputed per ``(src, dst)`` endpoint pair the first time the pair is used
(and invalidated on :meth:`attach` / :meth:`set_latency`).  Delivery is
scheduled as ``(deliver, msg)`` through the event queue's arg-passing form —
no per-message closure, no float math, no repeated latency lookup.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.clock import ClockDomain
from repro.sim.component import Component, Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator

#: shared cache of ``category -> "messages.<category>"`` counter names, so
#: the per-message accounting never builds an f-string.
_CATEGORY_KEYS: dict[str, str] = {}


class _Route:
    """Precomputed per-``(src, dst)`` transport state (see module docstring)."""

    __slots__ = ("delay_ticks", "deliver", "route_key")

    def __init__(self, delay_ticks: int, deliver: Any, route_key: str) -> None:
        self.delay_ticks = delay_ticks
        self.deliver = deliver
        self.route_key = route_key


class Network(Component):
    """Star-topology interconnect with per-route latency and traffic stats."""

    def __init__(
        self,
        sim: "Simulator",
        clock: ClockDomain,
        default_latency_cycles: float = 10.0,
        name: str = "network",
    ) -> None:
        super().__init__(sim, name, clock)
        self.default_latency_cycles = default_latency_cycles
        self._endpoints: dict[str, Controller] = {}
        self._kinds: dict[str, str] = {}
        self._latency_table: dict[tuple[str, str], float] = {}
        #: lazily built ``(src_name, dst_name) -> _Route`` transport cache.
        self._routes: dict[tuple[str, str], _Route] = {}
        #: the fabric's own counters / routes-child counters, bound once.
        self._counters = self.stats._counters
        self._route_counters: dict[str, int | float] | None = None

    # -- wiring -----------------------------------------------------------

    def attach(self, endpoint: Controller, kind: str) -> None:
        """Register ``endpoint`` (a Controller) under its ``name``."""
        if endpoint.name in self._endpoints:
            raise SimulationError(f"duplicate network endpoint {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        self._kinds[endpoint.name] = kind
        self._routes.clear()

    def set_latency(self, src_kind: str, dst_kind: str, cycles: float) -> None:
        """Set the one-way latency between two endpoint kinds (both directions)."""
        self._latency_table[(src_kind, dst_kind)] = cycles
        self._latency_table[(dst_kind, src_kind)] = cycles
        self._routes.clear()

    def endpoints_of_kind(self, kind: str) -> list[str]:
        return [name for name, k in self._kinds.items() if k == kind]

    def kind_of(self, name: str) -> str:
        return self._kinds[name]

    def kinds(self) -> list[str]:
        """Every endpoint kind currently attached, sorted."""
        return sorted(set(self._kinds.values()))

    def jitter_latencies(self, rng, max_extra_cycles: int = 3) -> None:
        """Schedule exploration: perturb every kind-pair latency.

        Adds a seeded-random 0..``max_extra_cycles`` to each directed
        ``(src_kind, dst_kind)`` latency (directions drawn independently, so
        request and response paths can skew against each other).  Call after
        all endpoints are attached; routes are invalidated like
        :meth:`set_latency`.  The litmus schedule-exploration driver uses
        this to reorder in-flight protocol messages across runs without ever
        creating an illegal schedule — latency is still deterministic per
        route within one run.
        """
        for src in self.kinds():
            for dst in self.kinds():
                base = self._latency_table.get(
                    (src, dst), self.default_latency_cycles
                )
                self._latency_table[(src, dst)] = base + rng.randrange(
                    max_extra_cycles + 1
                )
        self._routes.clear()

    # -- transport --------------------------------------------------------

    def latency_cycles(self, src: str, dst: str) -> float:
        key = (self._kinds.get(src, "?"), self._kinds.get(dst, "?"))
        return self._latency_table.get(key, self.default_latency_cycles)

    def _build_route(self, src: str, dst: str) -> _Route:
        """Resolve and cache the transport state for one endpoint pair."""
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            raise SimulationError(f"unknown network endpoint {dst!r}")
        if src not in self._endpoints:
            raise SimulationError(f"unknown network source {src!r}")
        delay = self.clock.cycles_to_ticks(self.latency_cycles(src, dst))
        route = _Route(delay, endpoint.deliver, f"{self._kinds[src]}->{self._kinds[dst]}")
        self._routes[(src, dst)] = route
        return route

    def send(self, msg: Any) -> None:
        """Deliver ``msg`` from ``msg.src`` to ``msg.dst`` after the route latency."""
        src = msg.src
        dst = msg.dst
        route = self._routes.get((src, dst))
        if route is None:
            try:
                route = self._build_route(src, dst)
            except SimulationError as exc:
                raise SimulationError(f"{exc} for {msg!r}") from None
        counters = self._counters
        category = msg.category
        key = _CATEGORY_KEYS.get(category)
        if key is None:
            key = _CATEGORY_KEYS.setdefault(category, f"messages.{category}")
        # counters stay lazily created (first increment) so as_dict() output
        # is identical to the pre-optimization fabric.
        if "messages" in counters:
            counters["messages"] += 1
        else:
            self.stats.inc("messages")
        if key in counters:
            counters[key] += 1
        else:
            self.stats.inc(key)
        if "bytes" in counters:
            counters["bytes"] += msg.size_bytes
        else:
            self.stats.inc("bytes", msg.size_bytes)
        route_counters = self._route_counters
        if route_counters is None:
            route_counters = self._route_counters = self.stats.child("routes")._counters
        route_key = route.route_key
        if route_key in route_counters:
            route_counters[route_key] += 1
        else:
            self.stats.child("routes").inc(route_key)
        events = self.sim.events
        events.schedule(events.now + route.delay_ticks, route.deliver, 0, msg)

    def _account(self, msg: Any) -> None:
        """Count one message without sending it (kept for tests/tools)."""
        self.stats.inc("messages")
        self.stats.inc(f"messages.{msg.category}")
        self.stats.inc("bytes", msg.size_bytes)
        route = f"{self._kinds[msg.src]}->{self._kinds[msg.dst]}"
        self.stats.child("routes").inc(route)
