"""On-chip message fabric.

The fabric is a star: every coherence controller registers an endpoint with a
*kind* (``"l2"``, ``"tcc"``, ``"dir"``, ``"dma"``, ...), and messages between
endpoints incur a one-way latency taken from a ``(src_kind, dst_kind)`` table
(falling back to a default).  The fabric counts every message by category and
by route — those counters are the "network traffic" data behind Figures 5
and 7 of the paper.

Messages are duck-typed: the fabric requires ``src``, ``dst``, ``category``
and ``size_bytes`` attributes and otherwise passes them through untouched.

Hot path: :meth:`Network.send` runs once per protocol message, so the route
latency (integer ticks) and the destination's bound ``deliver`` method are
precomputed per ``(src, dst)`` endpoint pair the first time the pair is used
(and invalidated on :meth:`attach` / :meth:`set_latency`).  Delivery is
scheduled as ``(deliver, msg)`` through the event queue's arg-passing form —
no per-message closure, no float math, no repeated latency lookup.

Contention model (``link_bytes_per_cycle > 0``): each endpoint owns a
finite-bandwidth *output port* — a message occupies its sender's port for
``ceil(size_bytes / link_bytes_per_cycle)`` cycles before it starts its
latency flight, so bursts queue up behind each other (FIFO per port) instead
of overlapping for free.  Shared destinations (the directory banks by
default) additionally arbitrate their *input port* with a weighted
round-robin :class:`~repro.sim.arbiter.WrrArbiter` over CPU/GPU/DMA traffic
classes, classified by the sending endpoint's kind.  With the default
``link_bytes_per_cycle = 0`` the fabric is pure latency and every contended
structure is dormant — that configuration is bit-identical to the committed
golden stats.

Flow control (``input_queue_depth > 0`` on top of the contention model):
every arbitrated input port becomes a *bounded* queue of
``input_queue_depth`` entries, tracked by a credit counter.  A sender's
output port turns into an event-driven FIFO whose head message must obtain
a credit from its destination's input port before it may start
serializing; with no credit available the output port parks on the
destination's waiter list and everything queued behind the head stalls
with it — head-of-line blocking is exactly what carries back-pressure
transitively to the component behind the sender.  A credit is consumed
when serialization starts (the message is "in the destination's queue"
from that point: in flight plus arbitrating) and released when the input
port *grants* the message; a freed credit is handed directly to the
longest-parked waiter rather than returned to the pool, so a same-tick
``send()`` can never steal it and starve a blocked port.  Input-port grant
engines can also be *gated* by kind (:meth:`Network.set_kind_gate`) —
the memory controller uses this to push its own bounded-queue overflow
back into the fabric.  With ``input_queue_depth = 0`` the contended path
above runs unchanged (unbounded queues, send-time scheduling).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any

from repro.sim.arbiter import WrrArbiter, class_of_kind
from repro.sim.clock import ClockDomain
from repro.sim.component import Component, Controller
from repro.sim.event_queue import SimulationError

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator

#: shared cache of ``category -> "messages.<category>"`` counter names, so
#: the per-message accounting never builds an f-string.
_CATEGORY_KEYS: dict[str, str] = {}

#: endpoint kinds whose input port is WRR-arbitrated under contention.
#: The directory is the system's fought-over shared port (every request,
#: victim, ack and unblock lands there); point-to-point responses back to
#: private caches stay FIFO.
DEFAULT_ARBITRATED_KINDS = ("dir",)


class _Route:
    """Precomputed per-``(src, dst)`` transport state (see module docstring)."""

    __slots__ = ("delay_ticks", "deliver", "route_key", "in_port", "arb_class")

    def __init__(
        self,
        delay_ticks: int,
        deliver: Any,
        route_key: str,
        in_port: "_InPort | None" = None,
        arb_class: str = "other",
    ) -> None:
        self.delay_ticks = delay_ticks
        self.deliver = deliver
        self.route_key = route_key
        #: WRR-arbitrated destination input port (None = direct delivery)
        self.in_port = in_port
        #: sender's traffic class at that port (from the sender's kind)
        self.arb_class = arb_class


class _InPort:
    """A shared endpoint's WRR-arbitrated, finite-bandwidth input port.

    Stat-counter keys (``<name>.grants.<class>``, ``<name>.wait_ticks``,
    ``<name>.max_depth``, ``<name>.occupancy_ticks``) are precomputed once
    per port/class instead of being f-string-built per granted message.

    Under flow control the port additionally owns the credit counter
    (``credits``/``capacity``) and the FIFO of output ports parked waiting
    for a credit (``waiters``); ``gated`` freezes the grant engine while a
    downstream resource (the bounded memory controller) is saturated.
    """

    __slots__ = ("name", "arb", "deliver", "max_depth",
                 "wait_key", "depth_key", "occ_key",
                 "grant_keys", "class_wait_keys",
                 "depth", "last_change",
                 "capacity", "credits", "waiters", "gated")

    def __init__(self, name: str, arb: WrrArbiter, deliver: Any,
                 capacity: int = 0) -> None:
        self.name = name
        self.arb = arb
        self.deliver = deliver
        self.max_depth = 0
        self.wait_key = name + ".wait_ticks"
        self.depth_key = name + ".max_depth"
        self.occ_key = name + ".occupancy_ticks"
        #: traffic class -> "<port>.grants.<class>" (lazily extended)
        self.grant_keys: dict[str, str] = {}
        #: traffic class -> "<port>.wait_ticks.<class>" (lazily extended)
        self.class_wait_keys: dict[str, str] = {}
        #: current queue depth + last tick it changed (occupancy integral)
        self.depth = 0
        self.last_change = 0
        #: bounded-queue capacity (0 = unbounded) and remaining credits
        self.capacity = capacity
        self.credits = capacity
        #: output ports parked waiting for a credit, oldest first
        self.waiters: deque = deque()
        #: True while the grant engine is frozen by back-pressure
        self.gated = False


class _OutPort:
    """A sender's finite-bandwidth output port.

    Without flow control only ``free`` (the next tick the link is idle) is
    used — send-time arithmetic, no events.  Under flow control the port
    runs event-driven: ``queue`` holds ``(route, msg, enqueued_at)``
    waiting to serialize, ``busy`` marks an in-progress serialization, and
    ``blocked`` marks the port parked on a full input port's waiter list.
    """

    __slots__ = ("name", "free", "queue", "busy", "blocked", "blocked_since",
                 "busy_key", "wait_key", "queued_key",
                 "blocks_key", "blocked_key")

    def __init__(self, name: str) -> None:
        self.name = name
        self.free = 0
        self.queue: deque = deque()
        self.busy = False
        self.blocked = False
        self.blocked_since = 0
        self.busy_key = name + ".busy_ticks"
        self.wait_key = name + ".wait_ticks"
        self.queued_key = name + ".queued_msgs"
        self.blocks_key = name + ".credit_blocks"
        self.blocked_key = name + ".credit_blocked_ticks"


class Network(Component):
    """Star-topology interconnect with per-route latency and traffic stats."""

    def __init__(
        self,
        sim: "Simulator",
        clock: ClockDomain,
        default_latency_cycles: float = 10.0,
        name: str = "network",
        link_bytes_per_cycle: int = 0,
        arb_weights: dict[str, int] | None = None,
        arbitrated_kinds: tuple[str, ...] = DEFAULT_ARBITRATED_KINDS,
        input_queue_depth: int = 0,
    ) -> None:
        super().__init__(sim, name, clock)
        self.default_latency_cycles = default_latency_cycles
        self._endpoints: dict[str, Controller] = {}
        self._kinds: dict[str, str] = {}
        self._latency_table: dict[tuple[str, str], float] = {}
        #: schedule-exploration overlay: per-(src_kind, dst_kind) extra
        #: cycles, kept separate from the base table so repeated jitter
        #: calls re-derive from the same base instead of compounding.
        self._jitter: dict[tuple[str, str], int] = {}
        #: lazily built ``(src_name, dst_name) -> _Route`` transport cache.
        self._routes: dict[tuple[str, str], _Route] = {}
        #: the fabric's own counters / routes-child counters, bound once.
        self._counters = self.stats._counters
        self._route_counters: dict[str, int | float] | None = None
        # -- contention model (dormant while link_bytes_per_cycle == 0) ----
        self.arbitrated_kinds = tuple(arbitrated_kinds)
        self.arb_weights = dict(arb_weights) if arb_weights else {}
        self.link_bytes_per_cycle = 0
        self._ser_memo: dict[int, int] = {}
        #: per-sender output ports (free tick + precomputed stat keys)
        self._out_ports: dict[str, _OutPort] = {}
        #: per-shared-destination WRR input ports, keyed by endpoint name
        self._in_ports: dict[str, _InPort] = {}
        self._port_stats = None
        self._arb_stats = None
        #: free lists for the contended path's per-hop queue records
        #: ([port, arb_class, msg] flight records and [enqueued_at, msg] /
        #: [port, msg] arbitration entries) — reused instead of allocated
        #: per message hop.
        self._hop_pool: list[list] = []
        self._entry_pool: list[list] = []
        self._grant_pool: list[list] = []
        # -- flow control (dormant while input_queue_depth == 0) -----------
        self.input_queue_depth = 0
        #: endpoint kinds whose input grant engines are currently gated
        self._gated_kinds: set[str] = set()
        #: free list for the bounded path's [out, route, msg] flight records
        self._flight_pool: list[list] = []
        if link_bytes_per_cycle:
            self.set_link_bandwidth(link_bytes_per_cycle)
        if input_queue_depth:
            self.set_flow_control(input_queue_depth)

    # -- wiring -----------------------------------------------------------

    def attach(self, endpoint: Controller, kind: str) -> None:
        """Register ``endpoint`` (a Controller) under its ``name``."""
        if endpoint.name in self._endpoints:
            raise SimulationError(f"duplicate network endpoint {endpoint.name!r}")
        self._endpoints[endpoint.name] = endpoint
        self._kinds[endpoint.name] = kind
        self._routes.clear()

    def set_latency(self, src_kind: str, dst_kind: str, cycles: float) -> None:
        """Set the one-way latency between two endpoint kinds (both directions)."""
        self._latency_table[(src_kind, dst_kind)] = cycles
        self._latency_table[(dst_kind, src_kind)] = cycles
        self._routes.clear()

    def set_link_bandwidth(self, bytes_per_cycle: int) -> None:
        """Enable (or, with 0, disable) the finite-bandwidth link model.

        Must be called before traffic flows (ports and arbiters are created
        empty); the litmus :class:`~repro.verify.litmus.schedule.Schedule`
        uses this to explore contended interleavings on a freshly built
        system.
        """
        if bytes_per_cycle < 0:
            raise SimulationError(
                f"link bandwidth must be >= 0 bytes/cycle, got {bytes_per_cycle}"
            )
        self.link_bytes_per_cycle = bytes_per_cycle
        self._ser_memo = {}
        self._routes.clear()

    def set_flow_control(self, input_queue_depth: int) -> None:
        """Enable (or, with 0, disable) bounded input queues with
        credit-based back-pressure (see module docstring).

        Only meaningful together with the finite-bandwidth link model;
        like :meth:`set_link_bandwidth` it must be called before traffic
        flows (credits are initialized full, queues empty) — the litmus
        :class:`~repro.verify.litmus.schedule.Schedule` calls it on a
        freshly built system.
        """
        if input_queue_depth < 0:
            raise SimulationError(
                f"input queue depth must be >= 0, got {input_queue_depth}"
            )
        self.input_queue_depth = input_queue_depth
        for port in self._in_ports.values():
            port.capacity = input_queue_depth
            port.credits = input_queue_depth

    def set_kind_gate(self, kind: str, gated: bool) -> None:
        """Gate (or release) the grant engine of every arbitrated input
        port of ``kind``.

        While gated the ports keep accepting arrivals but grant nothing,
        so their queues fill and (under flow control) their credits run
        out — which stalls senders through the normal credit path.  The
        bounded memory controller uses this to propagate its own overflow
        back-pressure to the directory's input.  Releasing the gate
        schedules a same-tick grant resume for every port with queued
        work.
        """
        if gated:
            self._gated_kinds.add(kind)
        else:
            self._gated_kinds.discard(kind)
        events = self.sim.events
        for name, port in self._in_ports.items():
            if self._kinds.get(name) != kind:
                continue
            port.gated = gated
            if not gated and not port.arb.busy and port.arb.pending():
                # claim the engine before the resume event fires so an
                # arrival in between cannot start a second grant engine
                port.arb.busy = True
                events.schedule(events.now, self._arb_grant, 0, port)

    def endpoints_of_kind(self, kind: str) -> list[str]:
        return [name for name, k in self._kinds.items() if k == kind]

    def kind_of(self, name: str) -> str:
        return self._kinds[name]

    def kinds(self) -> list[str]:
        """Every endpoint kind currently attached, sorted."""
        return sorted(set(self._kinds.values()))

    def jitter_latencies(self, rng, max_extra_cycles: int = 3) -> None:
        """Schedule exploration: perturb every kind-pair latency.

        Adds a seeded-random 0..``max_extra_cycles`` to each directed
        ``(src_kind, dst_kind)`` latency (directions drawn independently, so
        request and response paths can skew against each other).  Call after
        all endpoints are attached; routes are invalidated like
        :meth:`set_latency`.  The litmus schedule-exploration driver uses
        this to reorder in-flight protocol messages across runs without ever
        creating an illegal schedule — latency is still deterministic per
        route within one run.

        The perturbation lives in a separate overlay on top of the base
        latency table, so repeated calls re-derive from the same base (two
        calls with the same seed give the same latencies) and the base table
        itself is never densified — ``default_latency_cycles`` and later
        :meth:`set_latency` calls keep their normal meaning.
        """
        jitter: dict[tuple[str, str], int] = {}
        for src in self.kinds():
            for dst in self.kinds():
                jitter[(src, dst)] = rng.randrange(max_extra_cycles + 1)
        self._jitter = jitter
        self._routes.clear()

    # -- transport --------------------------------------------------------

    def latency_cycles(self, src: str, dst: str) -> float:
        """One-way latency between two *attached* endpoints (in cycles).

        Unknown endpoint names raise :class:`SimulationError`, exactly like
        :meth:`send` — a silent default here would mask wiring mistakes.
        """
        src_kind = self._kinds.get(src)
        if src_kind is None:
            raise SimulationError(f"unknown network source {src!r}")
        dst_kind = self._kinds.get(dst)
        if dst_kind is None:
            raise SimulationError(f"unknown network endpoint {dst!r}")
        key = (src_kind, dst_kind)
        base = self._latency_table.get(key, self.default_latency_cycles)
        extra = self._jitter.get(key)
        return base if extra is None else base + extra

    def _ser_ticks(self, size_bytes: int) -> int:
        """Link-serialization delay for one message, in integer ticks."""
        ticks = self._ser_memo.get(size_bytes)
        if ticks is None:
            bpc = self.link_bytes_per_cycle
            cycles = -(-size_bytes // bpc)  # ceil; 0-byte messages are free
            ticks = self.clock.cycles_to_ticks(cycles)
            self._ser_memo[size_bytes] = ticks
        return ticks

    def _build_route(self, src: str, dst: str) -> _Route:
        """Resolve and cache the transport state for one endpoint pair."""
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            raise SimulationError(f"unknown network endpoint {dst!r}")
        if src not in self._endpoints:
            raise SimulationError(f"unknown network source {src!r}")
        delay = self.clock.cycles_to_ticks(self.latency_cycles(src, dst))
        src_kind = self._kinds[src]
        dst_kind = self._kinds[dst]
        in_port = None
        if self.link_bytes_per_cycle and dst_kind in self.arbitrated_kinds:
            in_port = self._in_ports.get(dst)
            if in_port is None:
                in_port = _InPort(
                    dst, WrrArbiter(dst, dict(self.arb_weights)),
                    endpoint.deliver, capacity=self.input_queue_depth,
                )
                in_port.gated = dst_kind in self._gated_kinds
                self._in_ports[dst] = in_port
        route = _Route(
            delay, endpoint.deliver, f"{src_kind}->{dst_kind}",
            in_port=in_port, arb_class=class_of_kind(src_kind),
        )
        self._routes[(src, dst)] = route
        return route

    def _count_message(self, category: str, size_bytes: int, route_key: str) -> None:
        """The one accounting path for fabric traffic (send and _account).

        Counters stay lazily created (first increment) so ``as_dict()``
        output is identical to the pre-optimization fabric.
        """
        counters = self._counters
        key = _CATEGORY_KEYS.get(category)
        if key is None:
            key = _CATEGORY_KEYS.setdefault(category, f"messages.{category}")
        if "messages" in counters:
            counters["messages"] += 1
        else:
            self.stats.inc("messages")
        if key in counters:
            counters[key] += 1
        else:
            self.stats.inc(key)
        if "bytes" in counters:
            counters["bytes"] += size_bytes
        else:
            self.stats.inc("bytes", size_bytes)
        route_counters = self._route_counters
        if route_counters is None:
            route_counters = self._route_counters = self.stats.child("routes")._counters
        if route_key in route_counters:
            route_counters[route_key] += 1
        else:
            self.stats.child("routes").inc(route_key)

    def send(self, msg: Any) -> None:
        """Deliver ``msg`` from ``msg.src`` to ``msg.dst`` after the route latency."""
        src = msg.src
        dst = msg.dst
        route = self._routes.get((src, dst))
        if route is None:
            try:
                route = self._build_route(src, dst)
            except SimulationError as exc:
                raise SimulationError(f"{exc} for {msg!r}") from None
        self._count_message(msg.category, msg.size_bytes, route.route_key)
        events = self.sim.events
        if not self.link_bytes_per_cycle:
            events.schedule(events.now + route.delay_ticks, route.deliver, 0, msg)
            return
        if self.input_queue_depth:
            self._send_bounded(msg, route)
            return
        self._send_contended(msg, route)

    def _account(self, msg: Any) -> None:
        """Count one message without sending it (kept for tests/tools).

        Shares :meth:`_count_message` with :meth:`send` so the two can never
        drift, and rejects unattached endpoints with the same
        :class:`SimulationError` that :meth:`send` raises.
        """
        src_kind = self._kinds.get(msg.src)
        if src_kind is None:
            raise SimulationError(f"unknown network source {msg.src!r} for {msg!r}")
        dst_kind = self._kinds.get(msg.dst)
        if dst_kind is None:
            raise SimulationError(f"unknown network endpoint {msg.dst!r} for {msg!r}")
        self._count_message(msg.category, msg.size_bytes, f"{src_kind}->{dst_kind}")

    # -- contended transport ----------------------------------------------

    def _send_contended(self, msg: Any, route: _Route) -> None:
        """Finite-bandwidth path: serialize on the sender's output port,
        fly the route latency, then either deliver or join the destination's
        WRR input arbitration.

        Port stats use the precomputed :class:`_OutPort` keys and the bound
        counter dict directly (same lazily-created counters as before), and
        the in-flight ``[port, arb_class, msg]`` record comes from a free
        list — the contended fabric allocates no per-hop bookkeeping in
        steady state.
        """
        events = self.sim.events
        now = events.now
        ser = self._ser_ticks(msg.size_bytes)
        port_out = self._out_ports.get(msg.src)
        if port_out is None:
            port_out = self._out_ports[msg.src] = _OutPort(msg.src)
        free = port_out.free
        start = now if free <= now else free
        port_out.free = start + ser
        stats = self._port_stats
        if stats is None:
            stats = self._port_stats = self.stats.child("ports")
        counters = stats._counters
        key = port_out.busy_key
        if key in counters:
            counters[key] += ser
        else:
            stats.inc(key, ser)
        wait = start - now
        if wait:
            key = port_out.wait_key
            if key in counters:
                counters[key] += wait
            else:
                stats.inc(key, wait)
            key = port_out.queued_key
            if key in counters:
                counters[key] += 1
            else:
                stats.inc(key)
        arrival = start + ser + route.delay_ticks
        port = route.in_port
        if port is None:
            events.schedule(arrival, route.deliver, 0, msg)
        else:
            pool = self._hop_pool
            if pool:
                hop = pool.pop()
                hop[0] = port
                hop[1] = route.arb_class
                hop[2] = msg
            else:
                hop = [port, route.arb_class, msg]
            events.schedule(arrival, self._arb_arrive, 0, hop)

    # -- flow-controlled transport ----------------------------------------

    def _send_bounded(self, msg: Any, route: _Route) -> None:
        """Flow-controlled path: queue on the sender's event-driven output
        port and start it if idle (see module docstring for the credit
        protocol)."""
        out = self._out_ports.get(msg.src)
        if out is None:
            out = self._out_ports[msg.src] = _OutPort(msg.src)
        out.queue.append((route, msg, self.sim.events.now))
        if not out.busy and not out.blocked:
            self._out_pump(out)

    def _out_pump(self, out: _OutPort) -> None:
        """Try to start the head of an idle output port's queue.

        Only ever called with ``busy == blocked == False``; either starts
        serialization (consuming a credit if the destination is bounded)
        or parks the port on the destination's waiter list.
        """
        queue = out.queue
        if not queue:
            return
        route, msg, enqueued_at = queue[0]
        port = route.in_port
        if port is not None and port.capacity:
            if port.credits == 0:
                # destination input queue full: park; the queue behind the
                # head stalls with it (transitive back-pressure)
                out.blocked = True
                out.blocked_since = self.sim.events.now
                port.waiters.append(out)
                stats = self._port_stats
                if stats is None:
                    stats = self._port_stats = self.stats.child("ports")
                counters = stats._counters
                key = out.blocks_key
                if key in counters:
                    counters[key] += 1
                else:
                    stats.inc(key)
                return
            port.credits -= 1
        queue.popleft()
        self._out_start(out, route, msg, enqueued_at)

    def _out_start(self, out: _OutPort, route: _Route, msg: Any,
                   enqueued_at: int) -> None:
        """Begin serializing one message (its credit is already paid)."""
        events = self.sim.events
        now = events.now
        ser = self._ser_ticks(msg.size_bytes)
        out.busy = True
        stats = self._port_stats
        if stats is None:
            stats = self._port_stats = self.stats.child("ports")
        counters = stats._counters
        key = out.busy_key
        if key in counters:
            counters[key] += ser
        else:
            stats.inc(key, ser)
        wait = now - enqueued_at
        if wait:
            key = out.wait_key
            if key in counters:
                counters[key] += wait
            else:
                stats.inc(key, wait)
            key = out.queued_key
            if key in counters:
                counters[key] += 1
            else:
                stats.inc(key)
        pool = self._flight_pool
        if pool:
            flight = pool.pop()
            flight[0] = out
            flight[1] = route
            flight[2] = msg
        else:
            flight = [out, route, msg]
        events.schedule(now + ser, self._out_done, 0, flight)

    def _out_done(self, flight: list) -> None:
        """Serialization finished: launch the latency flight and pump the
        next queued message."""
        out = flight[0]
        route = flight[1]
        msg = flight[2]
        flight[0] = flight[1] = flight[2] = None
        self._flight_pool.append(flight)
        out.busy = False
        events = self.sim.events
        arrival = events.now + route.delay_ticks
        port = route.in_port
        if port is None:
            events.schedule(arrival, route.deliver, 0, msg)
        else:
            pool = self._hop_pool
            if pool:
                hop = pool.pop()
                hop[0] = port
                hop[1] = route.arb_class
                hop[2] = msg
            else:
                hop = [port, route.arb_class, msg]
            events.schedule(arrival, self._arb_arrive, 0, hop)
        self._out_pump(out)

    def _out_unblock(self, wake: list) -> None:
        """A parked output port received a hand-off credit: start its head
        message.  The head cannot have changed while parked (nothing pops
        a blocked port's queue), so the credit pays for exactly the
        message that was refused."""
        port = wake[0]
        out = wake[1]
        wake[0] = wake[1] = None
        self._grant_pool.append(wake)
        if not out.blocked or not out.queue:
            port.credits += 1  # defensive: waiter vanished, return credit
            return
        stats = self._port_stats
        counters = stats._counters
        blocked = self.sim.events.now - out.blocked_since
        if blocked:
            key = out.blocked_key
            if key in counters:
                counters[key] += blocked
            else:
                stats.inc(key, blocked)
        out.blocked = False
        route, msg, enqueued_at = out.queue.popleft()
        self._out_start(out, route, msg, enqueued_at)

    def _arb_arrive(self, hop: list) -> None:
        """A message reaches a shared port: enqueue in its class, and start
        the grant engine if the port is idle."""
        port = hop[0]
        arb_class = hop[1]
        msg = hop[2]
        hop[0] = hop[2] = None
        self._hop_pool.append(hop)
        arb = port.arb
        now = self.sim.events.now
        pool = self._entry_pool
        if pool:
            entry = pool.pop()
            entry[0] = now
            entry[1] = msg
        else:
            entry = [now, msg]
        arb.enqueue(arb_class, entry)
        stats = self._arb_stats
        if stats is None:
            stats = self._arb_stats = self.stats.child("arb")
        # occupancy integral: depth * time since the depth last changed
        dt = now - port.last_change
        if dt:
            if port.depth:
                counters = stats._counters
                key = port.occ_key
                if key in counters:
                    counters[key] += port.depth * dt
                else:
                    stats.inc(key, port.depth * dt)
            port.last_change = now
        port.depth += 1
        depth = arb.pending()
        if depth > port.max_depth:
            port.max_depth = depth
            stats.set(port.depth_key, depth)
        if not arb.busy:
            self._arb_grant(port)

    def _arb_grant(self, port: _InPort) -> None:
        """Grant the next message in WRR order and occupy the input port
        for its serialization time."""
        arb = port.arb
        if port.gated:
            # back-pressure gate: stop granting; set_kind_gate(False)
            # schedules the resume
            arb.busy = False
            return
        picked = arb.pick()
        if picked is None:
            arb.busy = False
            return
        arb.busy = True
        arb_class, entry = picked
        enqueued_at = entry[0]
        msg = entry[1]
        entry[1] = None
        self._entry_pool.append(entry)
        events = self.sim.events
        now = events.now
        stats = self._arb_stats
        if stats is None:
            stats = self._arb_stats = self.stats.child("arb")
        counters = stats._counters
        # occupancy integral + depth bookkeeping (mirrors _arb_arrive)
        dt = now - port.last_change
        if dt:
            if port.depth:
                key = port.occ_key
                if key in counters:
                    counters[key] += port.depth * dt
                else:
                    stats.inc(key, port.depth * dt)
            port.last_change = now
        port.depth -= 1
        key = port.grant_keys.get(arb_class)
        if key is None:
            key = port.grant_keys.setdefault(
                arb_class, f"{port.name}.grants.{arb_class}"
            )
        if key in counters:
            counters[key] += 1
        else:
            stats.inc(key)
        wait = now - enqueued_at
        if wait:
            key = port.wait_key
            if key in counters:
                counters[key] += wait
            else:
                stats.inc(key, wait)
            key = port.class_wait_keys.get(arb_class)
            if key is None:
                key = port.class_wait_keys.setdefault(
                    arb_class, f"{port.name}.wait_ticks.{arb_class}"
                )
            if key in counters:
                counters[key] += wait
            else:
                stats.inc(key, wait)
        if port.capacity:
            # the grant frees one input-queue slot: hand the credit to the
            # longest-parked sender (as an event, so the grant engine never
            # re-enters sender code), or return it to the pool
            waiters = port.waiters
            if waiters:
                pool = self._grant_pool
                if pool:
                    wake = pool.pop()
                    wake[0] = port
                    wake[1] = waiters.popleft()
                else:
                    wake = [port, waiters.popleft()]
                events.schedule(now, self._out_unblock, 0, wake)
            else:
                port.credits += 1
        pool = self._grant_pool
        if pool:
            grant = pool.pop()
            grant[0] = port
            grant[1] = msg
        else:
            grant = [port, msg]
        events.schedule(now + self._ser_ticks(msg.size_bytes),
                        self._arb_complete, 0, grant)

    def _arb_complete(self, grant: list) -> None:
        """The granted message has fully crossed the input port: deliver it
        and grant the next one."""
        port = grant[0]
        msg = grant[1]
        grant[0] = grant[1] = None
        self._grant_pool.append(grant)
        port.deliver(msg)
        self._arb_grant(port)

    # -- liveness introspection -------------------------------------------

    def pending_work(self) -> str | None:
        """Messages stranded behind back-pressure (the simulator's quiesce
        check: a drained event queue with a blocked or gated port is a
        deadlock, not a finished run)."""
        if not self.link_bytes_per_cycle:
            return None
        stuck = []
        for name, out in self._out_ports.items():
            if out.blocked:
                stuck.append(f"{name} credit-blocked ({len(out.queue)} queued)")
        for name, port in self._in_ports.items():
            pending = port.arb.pending()
            if port.gated and (pending or port.waiters):
                stuck.append(f"{name} gated ({pending} queued)")
            elif pending and not port.arb.busy:
                # should be unreachable: the grant engine restarts on every
                # arrival — report it rather than silently finishing
                stuck.append(f"{name} idle with {pending} queued")
        if stuck:
            return "; ".join(stuck)
        return None

    def blocked_snapshot(self) -> dict[str, int]:
        """``output port name -> blocked-since tick`` for every
        credit-blocked port (the watchdog's starvation probe: a port whose
        stamp never changes across windows is starved, not just busy)."""
        return {
            name: out.blocked_since
            for name, out in self._out_ports.items()
            if out.blocked
        }

    def describe_ports(self) -> str:
        """Multi-line wait-for dump of the flow-controlled fabric: every
        non-idle output port with its head destination, and every input
        port with credits, queue depth, and parked waiters.  This is the
        blocked-port wait-for graph the watchdog prints on a trip."""
        lines = []
        for name in sorted(self._out_ports):
            out = self._out_ports[name]
            if not out.queue and not out.busy and not out.blocked:
                continue
            if out.blocked:
                state = f"BLOCKED since tick {out.blocked_since}"
            elif out.busy:
                state = "serializing"
            else:
                state = "idle"
            head = out.queue[0][1] if out.queue else None
            dst = getattr(head, "dst", "-") if head is not None else "-"
            lines.append(
                f"out {name}: {state}, {len(out.queue)} queued, head -> {dst}"
            )
        for name in sorted(self._in_ports):
            port = self._in_ports[name]
            pending = port.arb.pending()
            if not pending and not port.waiters and not port.gated:
                continue
            waiting = ", ".join(w.name for w in port.waiters) or "-"
            gate = ", GATED" if port.gated else ""
            credits = (
                f"{port.credits}/{port.capacity}" if port.capacity else "inf"
            )
            lines.append(
                f"in {name}: credits {credits}, {pending} queued, "
                f"waiters [{waiting}]{gate}"
            )
        return "\n".join(lines)
