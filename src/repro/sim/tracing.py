"""Protocol tracing — the gem5 ``--debug-flags=ProtocolTrace`` analogue.

Attach a :class:`ProtocolTrace` to a system (or a single directory) and
every directory-level protocol event — request accepted, probes sent,
response, transaction complete — lands in a bounded ring buffer that can be
filtered by address and rendered as aligned text.  The hooks are free when
no trace is attached (a ``None`` check per event).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:
    from repro.coherence.directory import DirectoryController


@dataclass(frozen=True)
class TraceEvent:
    time: int
    source: str
    event: str
    addr: int
    detail: str

    def __str__(self) -> str:
        return f"{self.time:>12} {self.source:<6} {self.event:<10} {self.addr:#08x} {self.detail}"


class ProtocolTrace:
    """Bounded ring buffer of directory protocol events."""

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    # -- attachment ------------------------------------------------------------

    def attach(self, *directories: "DirectoryController") -> "ProtocolTrace":
        for directory in directories:
            directory.trace = self
        return self

    def attach_system(self, system) -> "ProtocolTrace":
        return self.attach(*system.directories)

    # -- recording ---------------------------------------------------------------

    def record(self, time: int, source: str, event: str, addr: int, detail: str = "") -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time, source, event, addr, detail))

    # -- querying -----------------------------------------------------------------

    def events(
        self, addr: int | None = None, event: str | None = None
    ) -> list[TraceEvent]:
        selected: Iterable[TraceEvent] = self._events
        if addr is not None:
            selected = (e for e in selected if e.addr == addr)
        if event is not None:
            selected = (e for e in selected if e.event == event)
        return list(selected)

    def __len__(self) -> int:
        return len(self._events)

    def dump(self, addr: int | None = None, limit: int | None = None) -> str:
        """Render (optionally address-filtered) events as text."""
        rows = self.events(addr=addr)
        if limit is not None:
            rows = rows[-limit:]
        header = f"{'time':>12} {'dir':<6} {'event':<10} {'addr':<10} detail"
        body = "\n".join(str(event) for event in rows)
        suffix = f"\n({self.dropped} earlier events dropped)" if self.dropped else ""
        return f"{header}\n{body}{suffix}" if body else f"{header}\n(empty){suffix}"

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
