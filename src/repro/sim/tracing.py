"""Protocol tracing — the gem5 ``--debug-flags=ProtocolTrace`` analogue.

:class:`ProtocolTrace` is a
:class:`~repro.coherence.engine.TransitionHook`: attach it to a system (or
individual controllers) and every *protocol transition* — each
``(state, event, next_state)`` step a declared
:class:`~repro.coherence.engine.TransitionTable` takes — lands in a bounded
ring buffer that can be filtered by address/event and rendered as aligned
text.  Because the records come from the engine's single dispatch point,
the trace vocabulary is exactly the tables' (Fig. 2 / Table I states and
events), not ad-hoc strings, and covers all controller classes: the
directories (Figure-2 transaction + Table I entry transitions), the
CorePair MOESI L2s, and the TCC VI caches.  The (passive) LLC slices are
covered by lightweight access records through :meth:`attach_llc`.

The hooks are free when no trace is attached: controllers dispatch hooks
off an empty tuple, and the LLC off a ``None`` check per access.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.coherence.engine import TransitionHook, state_label


@dataclass(frozen=True)
class TraceEvent:
    time: int
    source: str
    event: str
    addr: int
    detail: str

    def __str__(self) -> str:
        return f"{self.time:>12} {self.source:<6} {self.event:<10} {self.addr:#08x} {self.detail}"


class ProtocolTrace(TransitionHook):
    """Bounded ring buffer of protocol transitions."""

    __slots__ = ("capacity", "_events", "dropped")

    def __init__(self, capacity: int = 10_000) -> None:
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.dropped = 0

    # -- attachment ------------------------------------------------------------

    def attach(self, *controllers) -> "ProtocolTrace":
        """Observe every protocol transition of the given controllers."""
        for controller in controllers:
            controller.add_fsm_hook(self)
        return self

    def attach_llc(self, llc, sim, name: str) -> "ProtocolTrace":
        """Record the (passive, table-less) LLC slice's accesses too."""
        llc.attach_trace(self, sim, name)
        return self

    def attach_system(self, system) -> "ProtocolTrace":
        """Attach to every protocol controller in the system: directories,
        CorePair L2s, TCC banks, and the LLC slices."""
        self.attach(*system.directories, *system.corepairs, *system.tccs)
        for index, llc in enumerate(system.llcs):
            self.attach_llc(llc, system.sim, f"llc{index}")
        return self

    # -- recording ---------------------------------------------------------------

    def on_transition(self, controller, addr, state, event, next_state,
                      table=None) -> None:
        self.record(
            controller.now, controller.name, event, addr,
            f"{state_label(state)} -> {state_label(next_state)}",
        )

    def record(self, time: int, source: str, event: str, addr: int, detail: str = "") -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(TraceEvent(time, source, event, addr, detail))

    # -- querying -----------------------------------------------------------------

    def events(
        self, addr: int | None = None, event: str | None = None
    ) -> list[TraceEvent]:
        selected: Iterable[TraceEvent] = self._events
        if addr is not None:
            selected = (e for e in selected if e.addr == addr)
        if event is not None:
            selected = (e for e in selected if e.event == event)
        return list(selected)

    def __len__(self) -> int:
        return len(self._events)

    def dump(self, addr: int | None = None, limit: int | None = None) -> str:
        """Render (optionally address-filtered) events as text."""
        rows = self.events(addr=addr)
        if limit is not None:
            rows = rows[-limit:]
        header = f"{'time':>12} {'src':<6} {'event':<10} {'addr':<10} detail"
        body = "\n".join(str(event) for event in rows)
        suffix = f"\n({self.dropped} earlier events dropped)" if self.dropped else ""
        return f"{header}\n{body}{suffix}" if body else f"{header}\n(empty){suffix}"

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0
