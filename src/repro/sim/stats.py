"""Hierarchical statistics.

Every component owns a :class:`StatGroup`.  Groups hold integer counters
(created lazily on first increment), scalar values, and child groups, and can
be rendered as a flat ``name.counter = value`` listing — close in spirit to
gem5's ``stats.txt``.
"""

from __future__ import annotations

from typing import Iterator


class StatGroup:
    """A named bag of counters and child groups."""

    __slots__ = ("name", "_counters", "_children")

    def __init__(self, name: str) -> None:
        self.name = name
        self._counters: dict[str, int | float] = {}
        self._children: dict[str, "StatGroup"] = {}

    # -- counters ---------------------------------------------------------

    def inc(self, counter: str, amount: int | float = 1) -> None:
        """Increment ``counter`` by ``amount`` (creating it at zero).

        The existing-counter path is the kernel's hottest stats operation,
        so the child-group collision check runs only at counter creation —
        once a name is in ``_counters`` it cannot also be a child (both
        creation paths validate), making the recheck redundant.
        """
        counters = self._counters
        if counter in counters:
            counters[counter] += amount
        else:
            self._reserve_counter(counter)
            counters[counter] = amount

    def set(self, counter: str, value: int | float) -> None:
        if counter not in self._counters:
            self._reserve_counter(counter)
        self._counters[counter] = value

    def _reserve_counter(self, counter: str) -> None:
        if counter in self._children:
            raise ValueError(
                f"stat name collision in group {self.name!r}: {counter!r} is "
                "already a child group; the dotted keys would collide in "
                "walk()/as_dict()"
            )

    def get(self, counter: str, default: int | float = 0) -> int | float:
        return self._counters.get(counter, default)

    def __getitem__(self, counter: str) -> int | float:
        return self._counters.get(counter, 0)

    def counters(self) -> dict[str, int | float]:
        """A copy of this group's own counters (children excluded)."""
        return dict(self._counters)

    # -- hierarchy --------------------------------------------------------

    def child(self, name: str) -> "StatGroup":
        """Get or create a child group."""
        group = self._children.get(name)
        if group is None:
            if name in self._counters:
                raise ValueError(
                    f"stat name collision in group {self.name!r}: {name!r} is "
                    "already a counter; the dotted keys would collide in "
                    "walk()/as_dict()"
                )
            group = StatGroup(name)
            self._children[name] = group
        return group

    def children(self) -> dict[str, "StatGroup"]:
        return dict(self._children)

    # -- aggregation ------------------------------------------------------

    def total(self, counter: str) -> int | float:
        """Sum of ``counter`` over this group and all descendants."""
        value = self._counters.get(counter, 0)
        for childgroup in self._children.values():
            value += childgroup.total(counter)
        return value

    def walk(self, prefix: str = "") -> Iterator[tuple[str, int | float]]:
        """Yield ``(dotted_name, value)`` for every counter in the subtree."""
        base = f"{prefix}{self.name}"
        for counter, value in sorted(self._counters.items()):
            yield f"{base}.{counter}", value
        for child_name in sorted(self._children):
            yield from self._children[child_name].walk(prefix=f"{base}.")

    def as_dict(self) -> dict[str, int | float]:
        return dict(self.walk())

    def dump(self) -> str:
        """Render the subtree as aligned ``name = value`` lines."""
        rows = list(self.walk())
        if not rows:
            return f"{self.name}: (no stats)"
        width = max(len(name) for name, _value in rows)
        lines = [f"{name:<{width}} = {value}" for name, value in rows]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"StatGroup({self.name!r}, counters={len(self._counters)}, "
            f"children={len(self._children)})"
        )
