"""Clocked components and serializing message controllers."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.sim.clock import ClockDomain
from repro.sim.event_queue import _NO_ARG
from repro.sim.stats import StatGroup

if TYPE_CHECKING:
    from repro.sim.event_queue import Simulator


class Component:
    """Base class for everything that lives on the simulated die.

    A component has a name, a clock domain, a stat group, and helpers to
    schedule callbacks a number of *local cycles* in the future.
    """

    def __init__(self, sim: "Simulator", name: str, clock: ClockDomain) -> None:
        self.sim = sim
        #: the simulator's event queue, bound once (it is never replaced)
        #: so hot paths skip the ``sim.events`` attribute chain.
        self.events = sim.events
        self.name = name
        self.clock = clock
        self.stats = StatGroup(name)
        sim.register(self)

    @property
    def now(self) -> int:
        return self.events.now

    def schedule(
        self,
        delay_cycles: float,
        callback: Callable,
        priority: int = 0,
        arg: object = _NO_ARG,
    ) -> None:
        """Run ``callback`` (or ``callback(arg)``) after ``delay_cycles`` of
        this component's clock."""
        events = self.events
        events.schedule(
            events.now + self.clock.cycles_to_ticks(delay_cycles),
            callback, priority, arg,
        )

    def pending_work(self) -> str | None:
        """Describe outstanding work for deadlock detection (None = quiesced)."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class Controller(Component):
    """A component that receives messages from the network, serialized.

    Incoming messages occupy the controller for ``service_cycles`` each and
    are handled FIFO.  This is the occupancy model that makes probe broadcasts
    *cost* something at the receiving L2s/TCC — a first-order effect behind
    the paper's probe-elision speedups.
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        clock: ClockDomain,
        service_cycles: float = 1.0,
    ) -> None:
        super().__init__(sim, name, clock)
        self.service_cycles = service_cycles
        #: occupancy per message in ticks; ``service_cycles`` is fixed at
        #: construction everywhere in the tree, so the clock conversion is
        #: done once here instead of per delivered message.
        self._service_ticks = clock.cycles_to_ticks(service_cycles)
        self._next_free = 0
        #: transition observers (repro.coherence.engine.TransitionHook);
        #: a tuple so the per-fire "any hooks?" check is a cheap truth test.
        self.fsm_hooks: tuple = ()

    def add_fsm_hook(self, hook) -> None:
        """Attach a TransitionHook to this controller's protocol FSM fires."""
        self.fsm_hooks = self.fsm_hooks + (hook,)

    def deliver(self, msg: Any) -> None:
        """Accept a message from the network; called at arrival time.

        Runs once per received message, so the occupancy update uses the
        memoized tick conversion and ``handle_message`` is scheduled with
        the event queue's ``(callback, arg)`` form instead of a closure.
        """
        events = self.events
        now = events.now
        counters = self.stats._counters
        start = self._next_free
        if start < now:
            start = now
        else:
            busy = start - now
            if busy:
                if "queue_wait_ticks" in counters:
                    counters["queue_wait_ticks"] += busy
                else:
                    self.stats.inc("queue_wait_ticks", busy)
        self._next_free = start + self._service_ticks
        if "messages_received" in counters:
            counters["messages_received"] += 1
        else:
            self.stats.inc("messages_received")
        events.schedule(start, self.handle_message, 0, msg)

    def handle_message(self, msg: Any) -> None:
        raise NotImplementedError(f"{type(self).__name__} must implement handle_message")
