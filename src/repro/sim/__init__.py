"""Discrete-event simulation kernel.

The kernel is deliberately small: a tick-based event queue
(:mod:`repro.sim.event_queue`), clock domains that convert component-local
cycles to global ticks (:mod:`repro.sim.clock`), clocked components and
serializing message controllers (:mod:`repro.sim.component`), a star-topology
message fabric with latency and traffic accounting (:mod:`repro.sim.network`),
and a hierarchical statistics registry (:mod:`repro.sim.stats`).

Nothing in this package knows about coherence; protocol vocabulary lives in
:mod:`repro.protocol` and above.
"""

from repro.sim.clock import ClockDomain
from repro.sim.component import Component, Controller
from repro.sim.event_queue import EventQueue, Simulator
from repro.sim.network import Network
from repro.sim.stats import StatGroup

__all__ = [
    "ClockDomain",
    "Component",
    "Controller",
    "EventQueue",
    "Network",
    "Simulator",
    "StatGroup",
]
