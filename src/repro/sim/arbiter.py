"""Weighted-round-robin arbitration over traffic classes.

Shared ports in a heterogeneous fabric (the directory's input port, each
memory bank, the LLC behind the directory) are fought over by traffic with
very different service expectations: latency-sensitive CPU requests,
bandwidth-hungry GPU write-through streams, and bulk DMA transfers.  A
:class:`WrrArbiter` holds one FIFO queue per *class* and grants in weighted
round-robin order: the grant pointer cycles over the classes, and each class
may win up to ``weight`` consecutive grants before the pointer moves on.
Empty classes are skipped without consuming credit, so WRR degenerates to
plain round-robin under symmetric load and to FIFO when only one class is
active — which is what keeps the zero-contention configuration bit-identical
(the arbiter is simply never instantiated there).

The arbiter is a pure data structure: it owns no clock and schedules no
events.  Timing lives in its users (:class:`repro.sim.network.Network` input
ports, :class:`repro.mem.main_memory.MainMemory` banks), which call
:meth:`enqueue` on arrival and :meth:`pick` whenever the port frees up.
Determinism: for a fixed arrival order the grant order is a pure function of
the weights — there is no randomness anywhere.

:class:`FrFcfsQueue` is the same kind of pure pick-order structure for a
DRAM bank under the *first-ready, first-come-first-served* discipline:
the oldest access to the currently open row is granted ahead of older
row-missing accesses, bounded by a row-streak cap so a conflicting access
can be delayed only a fixed number of grants (starvation freedom).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Iterable

#: network endpoint kind -> arbitration traffic class
CLASS_OF_KIND = {
    "l2": "cpu",
    "core": "cpu",
    "dir": "cpu",      # directory-originated traffic (probes, acks) rides
                       # the CPU class: it is latency-critical
    "tcc": "gpu",
    "gpu": "gpu",
    "sqc": "gpu",
    "dma": "dma",
}

#: fallback class for endpoint kinds with no mapping
DEFAULT_CLASS = "other"


def class_of_kind(kind: str) -> str:
    """Map a network endpoint kind to its arbitration traffic class."""
    return CLASS_OF_KIND.get(kind, DEFAULT_CLASS)


class WrrArbiter:
    """Weighted round-robin over named classes, FIFO within each class.

    ``weights`` maps class name -> grant weight (>= 1).  Classes not listed
    are created on first :meth:`enqueue` with weight 1, so callers never
    have to pre-declare every class they might see.
    """

    __slots__ = ("name", "_weights", "_queues", "_order", "_index", "_credit",
                 "busy", "grants", "enqueued")

    def __init__(self, name: str, weights: dict[str, int] | None = None) -> None:
        self.name = name
        self._weights: dict[str, int] = {}
        self._queues: dict[str, deque] = {}
        self._order: list[str] = []
        for cls, weight in (weights or {}).items():
            self._add_class(cls, weight)
        #: pointer into ``_order`` and remaining credit of the current class
        self._index = 0
        self._credit = self._weights[self._order[0]] if self._order else 0
        #: port-occupancy flag maintained by the timing layer around us
        self.busy = False
        #: total grants / enqueues (cheap occupancy telemetry)
        self.grants = 0
        self.enqueued = 0

    def _add_class(self, cls: str, weight: int) -> None:
        if weight < 1:
            raise ValueError(f"WRR weight for class {cls!r} must be >= 1, got {weight}")
        if cls in self._weights:
            raise ValueError(f"duplicate WRR class {cls!r}")
        self._weights[cls] = weight
        self._queues[cls] = deque()
        self._order.append(cls)

    # -- queue side --------------------------------------------------------

    def enqueue(self, cls: str, item: Any) -> None:
        """Append ``item`` to ``cls``'s FIFO (class auto-created, weight 1)."""
        queue = self._queues.get(cls)
        if queue is None:
            self._add_class(cls, 1)
            queue = self._queues[cls]
            if len(self._order) == 1:
                self._credit = self._weights[cls]
        queue.append(item)
        self.enqueued += 1

    def pending(self) -> int:
        """Total items waiting across every class."""
        return sum(len(q) for q in self._queues.values())

    def pending_in(self, cls: str) -> int:
        queue = self._queues.get(cls)
        return len(queue) if queue is not None else 0

    def __len__(self) -> int:
        return self.pending()

    def classes(self) -> Iterable[str]:
        return tuple(self._order)

    def weight_of(self, cls: str) -> int:
        return self._weights[cls]

    # -- grant side --------------------------------------------------------

    def pick(self) -> tuple[str, Any] | None:
        """Grant the next item in WRR order (None when everything is empty).

        The current class keeps the grant while it has both queued items and
        remaining credit; otherwise the pointer advances (recharging credit)
        and empty classes are skipped without spending theirs.
        """
        order = self._order
        if not order:
            return None
        queues = self._queues
        weights = self._weights
        index = self._index
        credit = self._credit
        for _scan in range(len(order) + 1):
            cls = order[index]
            queue = queues[cls]
            if queue and credit > 0:
                self._index = index
                self._credit = credit - 1
                self.grants += 1
                return cls, queue.popleft()
            # out of credit or nothing queued: move on, recharge next class
            index = (index + 1) % len(order)
            credit = weights[order[index]]
        self._index = index
        self._credit = credit
        return None

    def __repr__(self) -> str:
        depths = {cls: len(q) for cls, q in self._queues.items() if q}
        return f"WrrArbiter({self.name!r}, weights={self._weights}, queued={depths})"


class FrFcfsQueue:
    """First-ready FCFS pick order for one DRAM bank.

    A single FIFO of pending accesses; :meth:`pick` grants the *oldest
    row-hit* (an access whose row matches the bank's open row) while the
    bank's current row streak is below ``row_streak_cap``, and the plain
    oldest access otherwise.  The caller reports each serviced access's
    row outcome through :meth:`note_row`, which is what advances / resets
    the streak — once the cap is reached the queue degenerates to FCFS
    until a row miss is actually serviced, so no access can be bypassed
    more than ``row_streak_cap`` times.

    Like :class:`WrrArbiter` this owns no clock and schedules nothing; the
    bank's open-row state stays with the memory controller and is passed
    into :meth:`pick` along with a ``row_of`` accessor.
    """

    __slots__ = ("name", "row_streak_cap", "_queue", "row_streak", "promotions")

    def __init__(self, name: str, row_streak_cap: int = 4) -> None:
        if row_streak_cap < 1:
            raise ValueError(
                f"FR-FCFS row streak cap must be >= 1, got {row_streak_cap}"
            )
        self.name = name
        self.row_streak_cap = row_streak_cap
        self._queue: deque = deque()
        #: consecutive row-hit services (maintained via :meth:`note_row`)
        self.row_streak = 0
        #: row-hits granted ahead of an older row-missing access
        self.promotions = 0

    def enqueue(self, item: Any) -> None:
        self._queue.append(item)

    def pending(self) -> int:
        return len(self._queue)

    def __len__(self) -> int:
        return len(self._queue)

    def pick(self, open_row: int | None, row_of: Callable[[Any], int]):
        """Grant the next access (None when empty); see class docstring."""
        queue = self._queue
        if not queue:
            return None
        if open_row is not None and self.row_streak < self.row_streak_cap:
            for index, item in enumerate(queue):
                if row_of(item) == open_row:
                    if index:
                        del queue[index]
                        self.promotions += 1
                        return item
                    return queue.popleft()
        return queue.popleft()

    def note_row(self, hit: bool) -> None:
        """Record the row outcome of the access just serviced."""
        self.row_streak = self.row_streak + 1 if hit else 0

    def __repr__(self) -> str:
        return (
            f"FrFcfsQueue({self.name!r}, queued={len(self._queue)}, "
            f"streak={self.row_streak}/{self.row_streak_cap})"
        )
