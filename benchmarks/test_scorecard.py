"""The reproduction scorecard: every headline claim, checked in one place."""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.validate import build_scorecard, scorecard_text


def test_scorecard(matrix, results_dir):
    claims = build_scorecard(matrix)
    text = scorecard_text(claims)
    save_and_print(results_dir, "scorecard", text)
    failures = [claim for claim in claims if not claim.holds]
    assert not failures, [f"{c.source}: {c.statement}" for c in failures]
