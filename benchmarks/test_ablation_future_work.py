"""§VII future-work ablations, implemented as extensions.

1. **State-aware directory replacement**: victimize unmodified entries
   with the fewest sharers before modified/many-sharer entries (vs plain
   Tree-PLRU).  Exercised under a deliberately tiny directory so entry
   evictions and their back-invalidations actually happen.
2. **Limited-pointer sharer lists**: sweep the pointer count and measure
   the probe traffic between owner-only broadcast and full-map multicast.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.report import format_table
from repro.coherence.policies import PRESETS

TINY_DIR = dict(dir_entries=64, dir_assoc=4)


def test_state_aware_directory_replacement(matrix, results_dir):
    rows = []
    for benchmark in ("tq", "cedd", "sc"):
        plru = matrix.run_policy_object(
            benchmark,
            PRESETS["sharers"].named(**TINY_DIR),
            tag="tinydir-plru",
        )
        aware = matrix.run_policy_object(
            benchmark,
            PRESETS["sharers"].named(**TINY_DIR, state_aware_dir_replacement=True),
            tag="tinydir-aware",
        )
        rows.append(
            [
                benchmark,
                f"{plru.cycles:.0f}",
                f"{aware.cycles:.0f}",
                f"{aware.speedup_over(plru):+.2f}",
                int(plru.stats.get("dir.dir_evictions", 0)),
                int(aware.stats.get("dir.dir_evictions", 0)),
                plru.dir_probes,
                aware.dir_probes,
            ]
        )
        assert plru.ok and aware.ok
    text = format_table(
        ["benchmark", "cycles (PLRU)", "cycles (state-aware)", "delta %",
         "evictions (PLRU)", "evictions (aware)", "probes (PLRU)", "probes (aware)"],
        rows,
        title="§VII: state-aware directory replacement under a 64-entry directory",
    )
    save_and_print(results_dir, "ablation_dir_replacement", text)


def test_limited_pointer_sweep(matrix, results_dir):
    """Sweep the sharer-pointer budget on a wide-sharing microbenchmark:
    fewer pointers overflow to broadcast, costing probes (footnote b)."""
    from repro.workloads.micro import ReadersWriterSweep

    workload = ReadersWriterSweep(lines=8, rounds=6)
    rows = []
    series = {}
    for pointers in (1, 2, 4, None):
        tag = f"ptr-{pointers}"
        policy = PRESETS["sharers"].named(sharer_pointer_limit=pointers)
        result = matrix.run_policy_object(workload, policy, tag=tag)
        assert result.ok
        label = "full-map" if pointers is None else f"{pointers} ptr"
        series[label] = result
        rows.append([label, f"{result.cycles:.0f}", result.dir_probes])
    owner_result = matrix.run_policy_object(
        workload, PRESETS["owner"], tag="ptr-owner-broadcast"
    )
    rows.append(["owner (broadcast)", f"{owner_result.cycles:.0f}", owner_result.dir_probes])
    text = format_table(
        ["sharer list", "cycles", "probes"],
        rows,
        title="§IV-B: limited-pointer directory sweep (readers/writer microbenchmark)",
    )
    save_and_print(results_dir, "ablation_limited_pointer", text)
    # more pointers can only reduce (or keep) probe traffic, and full-map
    # multicast beats owner-mode broadcast on wide sharing
    assert series["full-map"].dir_probes <= series["1 ptr"].dir_probes
    assert series["full-map"].dir_probes <= owner_result.dir_probes


def test_bench_tiny_directory(matrix, benchmark):
    """Wall-clock benchmark: heavy directory-eviction pressure."""
    policy = PRESETS["sharers"].named(dir_entries=32, dir_assoc=2)
    result = benchmark.pedantic(
        lambda: matrix.run_policy_object("sc", policy, tag="micro-dir"),
        rounds=1, iterations=1,
    )
    assert result.ok
