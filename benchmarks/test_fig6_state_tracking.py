"""Figure 6 — % saved simulated cycles with the precise directory.

Paper: owner tracking and owner+sharer tracking over five collaborative
benchmarks, average 14.4 % — from avoiding unnecessary probes and eliding
LLC/memory reads when the owner (or the requester itself) holds the data.
"""

from __future__ import annotations

from conftest import save_and_print, save_json

from repro.analysis.experiments import FIGURE6_BENCHMARKS, run_figure6
from repro.analysis.report import bar_chart


def test_figure6_regeneration(matrix, results_dir):
    figure = run_figure6(matrix)
    chart = bar_chart(
        figure.benchmarks, figure.series["sharers"],
        title="Figure 6 (sharers bar): % saved cycles over baseline", unit="%",
    )
    save_json(results_dir, "figure6", figure)
    save_and_print(results_dir, "figure6", figure.to_text() + "\n\n" + chart)

    assert figure.benchmarks == FIGURE6_BENCHMARKS
    # headline: substantial average speedup from state tracking
    assert figure.average("owner") > 5.0
    assert figure.average("sharers") > 5.0
    # the heavy task-parallel collaborators benefit most
    by_name = dict(zip(figure.benchmarks, figure.series["sharers"]))
    assert by_name["tq"] > 10.0
    assert by_name["sc"] > 10.0
    assert by_name["cedd"] > 5.0
    # sharer tracking never substantially hurts relative to owner tracking
    for owner_v, sharer_v in zip(figure.series["owner"], figure.series["sharers"]):
        assert sharer_v >= owner_v - 5.0


def test_bench_sharers_tq(matrix, benchmark):
    """Wall-clock benchmark: the flagship workload on the precise directory."""
    result = benchmark.pedantic(
        lambda: matrix.run("tq", "sharers"), rounds=1, iterations=1
    )
    assert result.ok
