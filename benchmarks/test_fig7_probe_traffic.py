"""Figure 7 — % reduction in probes sent from the directory.

Paper: a marked reduction in probes with state tracking (80.3 % average
over the five benchmarks); in 4 of the 5, sharer tracking contributes
little beyond owner tracking.
"""

from __future__ import annotations

from conftest import save_and_print, save_json

from repro.analysis.experiments import run_figure7
from repro.analysis.report import bar_chart


def test_figure7_regeneration(matrix, results_dir):
    figure = run_figure7(matrix)
    chart = bar_chart(
        figure.benchmarks, figure.series["sharers"],
        title="Figure 7: % fewer probes (sharer tracking)", unit="%",
    )
    save_json(results_dir, "figure7", figure)
    save_and_print(results_dir, "figure7", figure.to_text() + "\n\n" + chart)

    # headline: a marked reduction in probe traffic on every benchmark
    assert figure.average("sharers") > 50.0
    assert figure.average("owner") > 50.0
    for benchmark, value in zip(figure.benchmarks, figure.series["sharers"]):
        assert value > 30.0, (benchmark, value)
    # paper: sharer tracking adds little over owner tracking in most cases
    deltas = [
        s - o for o, s in zip(figure.series["owner"], figure.series["sharers"])
    ]
    assert sum(1 for d in deltas if abs(d) < 10.0) >= 3


def test_bench_probe_accounting(matrix, benchmark):
    """Wall-clock benchmark: probe-heavy baseline run (cedd)."""
    result = benchmark.pedantic(
        lambda: matrix.run("cedd", "baseline"), rounds=1, iterations=1
    )
    assert result.dir_probes > 0
