"""CorePair-count scaling of the probe-elision benefit.

§IV-A of the paper: serving S-state reads from the LLC without probing
"can be beneficial when there are many CorePairs configured in the system
since the wait times on returning probes and network traffic would increase
substantially."  This ablation scales the CorePair count and measures how
the precise directory's advantage over the broadcast baseline grows.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.report import format_table
from repro.coherence.policies import PRESETS
from repro.system.builder import build_system
from repro.system.config import SystemConfig
from repro.workloads.registry import get_workload


def run(policy_name: str, corepairs: int):
    config = SystemConfig.benchmark(
        policy=PRESETS[policy_name], num_corepairs=corepairs
    )
    system = build_system(config)
    result = system.run_workload(get_workload("cedd"))
    assert result.ok, result.check_errors[:3]
    return result


def test_corepair_scaling(results_dir):
    rows = []
    speedups = {}
    probe_ratios = {}
    for corepairs in (2, 4, 8):
        baseline = run("baseline", corepairs)
        precise = run("sharers", corepairs)
        speedup = precise.speedup_over(baseline)
        ratio = baseline.dir_probes / max(1, precise.dir_probes)
        speedups[corepairs] = speedup
        probe_ratios[corepairs] = ratio
        rows.append([
            corepairs,
            f"{baseline.cycles:.0f}",
            f"{precise.cycles:.0f}",
            f"{speedup:+.2f}",
            baseline.dir_probes,
            precise.dir_probes,
            f"{ratio:.1f}x",
        ])
    text = format_table(
        ["CorePairs", "baseline cy", "precise cy", "speedup %",
         "baseline probes", "precise probes", "probe ratio"],
        rows,
        title="probe-elision benefit vs CorePair count (cedd)",
    )
    save_and_print(results_dir, "ablation_corepair_scaling", text)

    # the broadcast baseline's probe count grows with the CorePair count...
    assert probe_ratios[8] > probe_ratios[2]
    # ...and the precise directory's advantage never shrinks below a
    # meaningful margin at any scale
    assert all(s > 3.0 for s in speedups.values()), speedups
