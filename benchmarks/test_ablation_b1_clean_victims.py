"""§III-B1 ablation — clean victims not cached in the LLC.

Paper: "we found inconsistent improvement and degradation across different
benchmarks" — the optimization helps when clean victims have no reuse
(streaming/read-once) and hurts when another agent re-reads the cleanly
victimized line from the LLC.  This ablation regenerates that comparison.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.report import format_table
from repro.workloads.registry import available_workloads


def test_b1_clean_victim_ablation(matrix, results_dir):
    rows = []
    deltas = []
    for benchmark in available_workloads():
        with_llc = matrix.run(benchmark, "noWBcleanVic")
        without_llc = matrix.run(benchmark, "noCleanVicToLLC")
        delta = without_llc.speedup_over(with_llc)
        deltas.append(delta)
        rows.append(
            [
                benchmark,
                f"{with_llc.cycles:.0f}",
                f"{without_llc.cycles:.0f}",
                f"{delta:+.2f}",
                with_llc.llc_hits,
                without_llc.llc_hits,
            ]
        )
    text = format_table(
        ["benchmark", "cycles (cached)", "cycles (dropped)", "delta %",
         "LLC hits (cached)", "LLC hits (dropped)"],
        rows,
        title="§III-B1: dropping clean victims from the LLC",
    )
    save_and_print(results_dir, "ablation_b1_clean_victims", text)

    # Paper-aligned expectation: the effect is *inconsistent* across the
    # suite — near-zero for most benchmarks, and clearly detrimental where
    # cleanly victimized lines are re-read (the paper's "may be detrimental
    # to performance" case; trns reproduces it).
    assert all(-50.0 < d < 15.0 for d in deltas), deltas
    near_zero = sum(1 for d in deltas if abs(d) < 2.0)
    assert near_zero >= len(deltas) // 2, deltas
    assert min(deltas) < -1.0  # the detrimental case exists
    # dropping clean victims can never increase LLC read hits
    for row in rows:
        assert row[5] <= row[4], row


def test_bench_b1_hsto(matrix, benchmark):
    """Wall-clock benchmark: the clean-victim-heavy benchmark under B1."""
    result = benchmark.pedantic(
        lambda: matrix.run("hsto", "noCleanVicToLLC"), rounds=1, iterations=1
    )
    assert result.ok
