"""Figure 5 — directory<->memory reads+writes per LLC/victim policy.

Paper: an average 50.38 % reduction in memory accesses from obviating the
memory write on every LLC write (the write-back LLC), with the last bar
showing TCC write-throughs routed into the LLC (useL3OnWT).
"""

from __future__ import annotations

from conftest import save_and_print, save_json

from repro.analysis.experiments import figure5_reduction, run_figure5
from repro.analysis.report import bar_chart


def test_figure5_regeneration(matrix, results_dir):
    figure = run_figure5(matrix)
    reduction = figure5_reduction(figure)
    text = figure.to_text() + (
        f"\naverage reduction (llcWB+useL3OnWT vs baseline): {reduction:.1f}%"
        f"  [paper: 50.4%]"
    )
    chart = bar_chart(
        figure.benchmarks,
        [
            100.0 * (b - o) / b if b else 0.0
            for b, o in zip(figure.series["baseline"], figure.series["llcWB+useL3OnWT"])
        ],
        title="Figure 5: % fewer memory accesses (llcWB+useL3OnWT)", unit="%",
    )
    save_json(results_dir, "figure5", figure)
    save_and_print(results_dir, "figure5", text + "\n\n" + chart)

    for index, benchmark in enumerate(figure.benchmarks):
        base = figure.series["baseline"][index]
        no_clean = figure.series["noWBcleanVic"][index]
        llc_wb = figure.series["llcWB"][index]
        full = figure.series["llcWB+useL3OnWT"][index]
        # each step must not increase memory traffic
        assert no_clean <= base, benchmark
        assert llc_wb <= no_clean, benchmark
        assert full <= llc_wb * 1.02, benchmark  # tiny tolerance (LLC evictions)
    # headline: the full write-back configuration roughly halves traffic
    assert figure5_reduction(figure) > 25.0


def test_bench_llcwb_sc(matrix, benchmark):
    """Wall-clock benchmark: stream compaction under the write-back LLC."""
    result = benchmark.pedantic(
        lambda: matrix.run("sc", "llcWB+useL3OnWT"), rounds=1, iterations=1
    )
    assert result.mem_accesses > 0
