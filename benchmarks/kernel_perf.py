"""Simulation-kernel microbenchmarks (the perf-trajectory suite).

Timed benchmarks plus a machine-speed calibration score:

- ``event_queue`` — raw :class:`~repro.sim.event_queue.EventQueue`
  throughput: self-rescheduling callbacks through the inner ``run()`` loop.
- ``event_queue_calendar`` — the workload shape the calendar queue is built
  for: many lanes colliding on the same quantized ticks (deep same-tick
  buckets) plus standing far-future timers exercising the overflow heap.
- ``alloc_pooling`` — steady-state banked-memory churn through the pooled
  access/commit records and bound stat counters (the allocation-audit
  test pins that this path allocates ~nothing per access).
- ``network`` — two controllers ping-ponging messages across the star
  fabric, exercising ``Network.send``, route accounting, and delivery.
- ``network_contended`` — the same ping-pong on a finite-bandwidth fabric
  (8 bytes/cycle, WRR arbitration at the directory port), exercising the
  output-port serialization and input-arbitration paths.
- ``figure_slice`` — one real figure-pipeline cell (cedd on the baseline
  policy) timed end-to-end, events/sec taken from the event queue itself.
- ``calibration`` — a fixed pure-Python integer loop, used to normalize
  events/sec across machines of different speeds (the CI perf gate
  compares *calibrated* ratios, not absolute numbers).

``run_suite`` returns a JSON-serializable report; ``main`` writes it to
``BENCH_kernel.json`` (or ``--output``).  The committed ``BENCH_kernel.json``
at the repo root is the perf-trajectory baseline that CI gates against.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.coherence.policies import PRESETS  # noqa: E402
from repro.mem.main_memory import MainMemory  # noqa: E402
from repro.sim.clock import ClockDomain  # noqa: E402
from repro.sim.component import Controller  # noqa: E402
from repro.sim.event_queue import EventQueue, Simulator  # noqa: E402
from repro.sim.network import Network  # noqa: E402
from repro.system.builder import build_system  # noqa: E402
from repro.system.config import SystemConfig  # noqa: E402
from repro.workloads.registry import get_workload  # noqa: E402

#: bump when a benchmark's definition changes (invalidates old baselines).
#: v2: network_contended added; Network.send gained the shared accounting
#: helper, re-seeding every baseline.
#: v3: calendar event queue became the production kernel;
#: event_queue_calendar (clustered ticks + far-future timers) and
#: alloc_pooling (pooled banked-memory churn) added.
SUITE_VERSION = 3


# -- calibration -----------------------------------------------------------


def calibration_score(loops: int = 2_000_000) -> float:
    """Machine-speed proxy: fixed integer-arithmetic loop, ops/sec."""
    start = time.perf_counter()
    acc = 0
    for i in range(loops):
        acc += i & 0xFFFF
    elapsed = time.perf_counter() - start
    assert acc >= 0
    return loops / elapsed


# -- raw event-queue throughput -------------------------------------------


def bench_event_queue(num_events: int = 200_000) -> dict:
    """Self-rescheduling callbacks through ``EventQueue.run``."""
    queue = EventQueue()
    remaining = [num_events]

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            queue.schedule_after(7, tick)

    # A modest standing population keeps the heap realistically deep.
    for lane in range(64):
        queue.schedule(lane + 1, tick)
    start = time.perf_counter()
    queue.run()
    elapsed = time.perf_counter() - start
    executed = queue.executed_events
    return {
        "events": executed,
        "seconds": elapsed,
        "events_per_sec": executed / elapsed,
    }


def bench_event_queue_calendar(num_events: int = 200_000) -> dict:
    """Clustered same-tick scheduling plus standing far-future timers.

    Route tables and clock periods quantize real-system delays onto a small
    set of tick offsets, so protocol bursts pile many events onto the same
    tick.  Here 64 lanes all reschedule with the same delay, keeping every
    bucket 64 deep (one dict probe + list append per event), while 8 timers
    parked beyond ``FAR_HORIZON`` keep the overflow heap exercised.
    """
    queue = EventQueue()
    remaining = [num_events]
    far_delay = EventQueue.FAR_HORIZON + 1

    def tick() -> None:
        remaining[0] -= 1
        if remaining[0] > 0:
            queue.schedule_after(8, tick)

    def far_timer() -> None:
        if remaining[0] > 0:
            queue.schedule_after(far_delay, far_timer)

    for _ in range(64):
        queue.schedule(8, tick)
    for _ in range(8):
        queue.schedule_after(far_delay, far_timer)
    start = time.perf_counter()
    queue.run()
    elapsed = time.perf_counter() - start
    executed = queue.executed_events
    return {
        "events": executed,
        "seconds": elapsed,
        "events_per_sec": executed / elapsed,
    }


# -- pooled banked-memory churn ---------------------------------------------


def bench_alloc_pooling(num_accesses: int = 60_000) -> dict:
    """Steady-state banked-memory read/write churn through the free lists.

    Four independent streams (two traffic classes across four banks) chase
    their own reads and writes back-to-back, so every access reuses a pooled
    ``_Access`` record, a pooled commit record, and bound stat counters.
    """
    sim = Simulator()
    clock = ClockDomain("bench", 1e9)
    memory = MainMemory(
        sim, clock, latency_cycles=20.0, gap_cycles=2.0,
        num_banks=4, row_bytes=256,
        arb_weights={"cpu": 4, "gpu": 2},
    )
    memory.set_classifier(lambda name: "cpu" if name.startswith("c") else "gpu")
    remaining = [num_accesses]

    def make_stream(source: str, base: int):
        addr = [base]

        def next_access(_data=None) -> None:
            if remaining[0] <= 0:
                return
            remaining[0] -= 1
            addr[0] = base + (addr[0] + 64) % 8192
            if remaining[0] % 3:
                memory.read(addr[0], next_access, source=source)
            else:
                memory.write(addr[0], None, source=source)
                memory.read(addr[0], next_access, source=source)

        return next_access

    streams = [make_stream(src, base) for src, base in
               [("c0", 0), ("c1", 1 << 20), ("g0", 2 << 20), ("g1", 3 << 20)]]
    start = time.perf_counter()
    for stream in streams:
        stream()
    sim.events.run()
    elapsed = time.perf_counter() - start
    events = sim.events.executed_events
    return {
        "accesses": num_accesses - remaining[0],
        "events": events,
        "seconds": elapsed,
        "events_per_sec": events / elapsed,
    }


# -- network send/deliver path --------------------------------------------


class _PingPong(Controller):
    """Echoes every message back to its source until the budget runs out."""

    def __init__(self, sim, name, clock, network):
        super().__init__(sim, name, clock, service_cycles=1.0)
        self.network = network
        self.budget = 0

    def handle_message(self, msg) -> None:
        if self.budget <= 0:
            return
        self.budget -= 1
        msg.src, msg.dst = msg.dst, msg.src
        self.network.send(msg)


class _BenchMsg:
    """Minimal duck-typed fabric message (src/dst/category/size_bytes)."""

    __slots__ = ("src", "dst", "category", "size_bytes")

    def __init__(self, src: str, dst: str) -> None:
        self.src = src
        self.dst = dst
        self.category = "request"
        self.size_bytes = 8


def _run_ping_pong(num_messages: int, link_bytes_per_cycle: int = 0) -> dict:
    sim = Simulator()
    clock = ClockDomain("bench", 1e9)
    network = Network(
        sim, clock, default_latency_cycles=10.0,
        link_bytes_per_cycle=link_bytes_per_cycle,
        arb_weights={"cpu": 4, "gpu": 2, "dma": 1},
    )
    a = _PingPong(sim, "a", clock, network)
    b = _PingPong(sim, "b", clock, network)
    network.attach(a, "l2")
    network.attach(b, "dir")
    network.set_latency("l2", "dir", 6.0)
    a.budget = num_messages // 2
    b.budget = num_messages - num_messages // 2
    start = time.perf_counter()
    network.send(_BenchMsg("a", "b"))
    sim.events.run()
    elapsed = time.perf_counter() - start
    sent = int(network.stats["messages"])
    return {
        "messages": sent,
        "events": sim.events.executed_events,
        "seconds": elapsed,
        "messages_per_sec": sent / elapsed,
        "events_per_sec": sim.events.executed_events / elapsed,
    }


def bench_network(num_messages: int = 100_000) -> dict:
    """Ping-pong messages across the fabric between two controllers."""
    return _run_ping_pong(num_messages)


def bench_network_contended(num_messages: int = 100_000) -> dict:
    """The same ping-pong on a finite-bandwidth, WRR-arbitrated fabric.

    Every message crosses the sender's serializing output port and the
    directory-side message additionally crosses the WRR input port — the
    hot path of the contention model."""
    return _run_ping_pong(num_messages, link_bytes_per_cycle=8)


# -- a real figure-pipeline slice -----------------------------------------


def bench_figure_slice(workload: str = "cedd", policy: str = "baseline",
                       scale: float = 1.0) -> dict:
    """One evaluation-matrix cell, timed end-to-end (build excluded)."""
    system = build_system(SystemConfig.benchmark(policy=PRESETS[policy]))
    wl = get_workload(workload)
    start = time.perf_counter()
    result = system.run_workload(wl, seed=0, scale=scale)
    elapsed = time.perf_counter() - start
    events = system.sim.events.executed_events
    return {
        "workload": workload,
        "policy": policy,
        "scale": scale,
        "ok": result.ok,
        "simulated_ticks": result.ticks,
        "events": events,
        "seconds": elapsed,
        "events_per_sec": events / elapsed,
        "network_messages": result.network_messages,
    }


# -- suite ------------------------------------------------------------------


def run_suite(quick: bool = False, repeats: int = 3) -> dict:
    """Run every benchmark ``repeats`` times and keep the best run.

    Best-of-N damps scheduler noise; ``quick`` shrinks the workloads for
    smoke runs (CI, pytest) without changing what is exercised.
    """
    eq_n = 40_000 if quick else 200_000
    net_n = 20_000 if quick else 100_000
    mem_n = 12_000 if quick else 60_000
    # the slice runs full-scale even in quick mode: events/sec at 0.25
    # scale sits systematically ~30% below full scale (fixed warmup
    # amortized over fewer events), which made the quick-mode CI gate
    # borderline against the committed full-mode baseline.
    slice_scale = 1.0

    def best(fn, *args, key: str):
        runs = [fn(*args) for _ in range(repeats)]
        return max(runs, key=lambda r: r[key])

    report = {
        "suite_version": SUITE_VERSION,
        "quick": quick,
        "repeats": repeats,
        "python": sys.version.split()[0],
        "calibration_ops_per_sec": calibration_score(),
        "benchmarks": {
            "event_queue": best(bench_event_queue, eq_n, key="events_per_sec"),
            "event_queue_calendar": best(
                bench_event_queue_calendar, eq_n, key="events_per_sec",
            ),
            "alloc_pooling": best(
                bench_alloc_pooling, mem_n, key="events_per_sec",
            ),
            "network": best(bench_network, net_n, key="messages_per_sec"),
            "network_contended": best(
                bench_network_contended, net_n, key="messages_per_sec",
            ),
            "figure_slice": best(
                bench_figure_slice, "cedd", "baseline", slice_scale,
                key="events_per_sec",
            ),
        },
    }
    cal = report["calibration_ops_per_sec"]
    for name, bench in report["benchmarks"].items():
        bench["calibrated_score"] = bench["events_per_sec"] / cal
    return report


def gate(fresh: dict, baseline: dict, tolerance: float = 0.30) -> list[str]:
    """Compare a fresh report against the committed baseline.

    Returns a list of human-readable failures (empty = pass).  Scores are
    calibration-normalized so a slower CI machine does not trip the gate;
    a benchmark fails when its calibrated events/sec drops more than
    ``tolerance`` below the baseline's.
    """
    failures: list[str] = []
    if baseline.get("suite_version") != fresh.get("suite_version"):
        return [
            "suite_version mismatch "
            f"(baseline {baseline.get('suite_version')} vs "
            f"fresh {fresh.get('suite_version')}); re-seed BENCH_kernel.json"
        ]
    for name, base in baseline["benchmarks"].items():
        now = fresh["benchmarks"].get(name)
        if now is None:
            failures.append(f"{name}: missing from fresh report")
            continue
        floor = base["calibrated_score"] * (1.0 - tolerance)
        if now["calibrated_score"] < floor:
            failures.append(
                f"{name}: calibrated score {now['calibrated_score']:.4f} "
                f"< floor {floor:.4f} "
                f"(baseline {base['calibrated_score']:.4f}, "
                f"tolerance {tolerance:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_kernel.json"),
                        help="where to write the report")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (CI smoke)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--gate", metavar="BASELINE_JSON", default=None,
                        help="compare against a committed baseline report "
                             "and exit non-zero on >30%% regression")
    parser.add_argument("--tolerance", type=float, default=0.30)
    args = parser.parse_args(argv)

    report = run_suite(quick=args.quick, repeats=args.repeats)
    pathlib.Path(args.output).write_text(json.dumps(report, indent=1) + "\n")
    for name, bench in report["benchmarks"].items():
        print(f"{name:<14} {bench['events_per_sec']:>12,.0f} events/s "
              f"(calibrated {bench['calibrated_score']:.4f})")
    print(f"report written to {args.output}")

    if args.gate:
        baseline = json.loads(pathlib.Path(args.gate).read_text())
        failures = gate(report, baseline, tolerance=args.tolerance)
        if failures:
            print("\nPERF GATE FAILED:")
            for failure in failures:
                print(f"  - {failure}")
            return 1
        print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
