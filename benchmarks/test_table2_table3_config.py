"""Tables II and III — the evaluated configuration, regenerated.

These are configuration tables rather than measurements; the benchmark
component times full-system construction at the paper's geometry.
"""

from __future__ import annotations

from conftest import save_and_print

from repro import SystemConfig, build_system
from repro.analysis.experiments import table2_text, table3_text


def test_table2_cache_configuration(results_dir):
    text = table2_text()
    save_and_print(results_dir, "table2", text)
    # Table II headline values
    assert "16 MB" in text      # LLC
    assert "2 MB" in text       # L2
    assert "64 KB" in text      # L1D
    assert "256 KB" in text     # TCC
    assert "262144 entries" in text  # 256 KB of 1 B directory entries


def test_table3_system_configuration(results_dir):
    text = table3_text()
    save_and_print(results_dir, "table3", text)
    assert "4 / 8" in text      # 4 CorePairs / 8 CPUs
    assert "3.5 GHz" in text
    assert "1.1 GHz" in text


def test_full_system_construction_benchmark(benchmark):
    """Time building the full Table II/III system."""
    system = benchmark(lambda: build_system(SystemConfig.ryzen_2200g()))
    assert len(system.cores) == 8
    assert len(system.cus) == 8
