"""Kernel microbenchmark suite (perf trajectory).

Times the simulation kernel four ways — raw event-queue dispatch, the
fabric message path (flat and contended), and one real figure-pipeline
cell — and emits
``BENCH_kernel.json`` at the repo root (override with ``$REPRO_BENCH_OUT``).
The committed ``BENCH_kernel.json`` is the perf-trajectory baseline; the CI
perf-smoke job re-runs this suite and fails on a >30% calibrated
events/sec regression (see ``benchmarks/kernel_perf.py --gate``).

Quick mode (``REPRO_BENCH_QUICK=1``, used by CI) shrinks the workloads but
exercises the same code paths.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

from kernel_perf import REPO_ROOT, gate, run_suite  # noqa: E402

_QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))


@pytest.fixture(scope="module")
def report() -> dict:
    result = run_suite(quick=_QUICK, repeats=2 if _QUICK else 3)
    out = pathlib.Path(os.environ.get("REPRO_BENCH_OUT",
                                      REPO_ROOT / "BENCH_kernel.json"))
    out.write_text(json.dumps(result, indent=1) + "\n")
    print(f"\nkernel perf report written to {out}")
    for name, bench in result["benchmarks"].items():
        print(f"  {name:<14} {bench['events_per_sec']:>12,.0f} events/s "
              f"(calibrated {bench['calibrated_score']:.4f})")
    return result


def test_event_queue_throughput_is_sane(report):
    bench = report["benchmarks"]["event_queue"]
    assert bench["events"] > 0
    # even a slow CI box dispatches well over 100k closure events/sec
    assert bench["events_per_sec"] > 100_000


def test_network_path_throughput_is_sane(report):
    bench = report["benchmarks"]["network"]
    assert bench["messages"] > 0
    assert bench["messages_per_sec"] > 10_000
    # every message costs exactly two events: delivery + serialized handling
    assert bench["events"] == pytest.approx(2 * bench["messages"], rel=0.01)


def test_contended_network_path_throughput_is_sane(report):
    bench = report["benchmarks"]["network_contended"]
    assert bench["messages"] > 0
    assert bench["messages_per_sec"] > 5_000
    # port serialization + WRR arbitration add events per message
    # (arrival, grant-completion, delivery, handling) on the dir-bound leg
    assert bench["events"] > 2 * bench["messages"]


def test_figure_slice_runs_and_reports_events(report):
    bench = report["benchmarks"]["figure_slice"]
    assert bench["ok"], "figure-pipeline cell failed its functional checks"
    assert bench["events"] > 1_000
    assert bench["simulated_ticks"] > 0
    assert bench["network_messages"] > 0


def test_report_is_gateable(report):
    """The emitted report must round-trip through the CI perf gate."""
    assert gate(report, report) == []  # identical report always passes
    slower = json.loads(json.dumps(report))
    for bench in slower["benchmarks"].values():
        bench["calibrated_score"] *= 0.5  # a 2x regression must fail
    assert gate(slower, report) != []
