"""Contention ablation — §III/§IV policy gains on a contended fabric.

The paper's evaluation (and every other figure in this repo) models the
fabric as pure latency and memory as one flat channel.  This ablation
re-runs the policy comparison on ``SystemConfig.contended()`` — finite
link bandwidth with WRR arbitration at the directory plus a banked
open-row memory controller — and asks two questions:

1. Is contention visible at all?  Links and shared ports must report
   real waiting, and runtimes must shift.  Note the shift is *not*
   uniformly a slowdown: the contended preset trades per-access latency
   for bank-level parallelism (four banks admitting in parallel, row hits
   cheaper than the flat channel's fixed latency), so memory-bound
   workloads can finish *earlier* while probe-heavy ones pay for every
   broadcast crossing the arbitrated directory port.
2. Do the §III traffic optimizations and the §IV precise directory still
   help when bursts actually collide?  Probe broadcasts and write-through
   traffic now occupy real link and bank slots, so policies that remove
   messages should keep a meaningful advantage.
"""

from __future__ import annotations

import dataclasses

from conftest import save_and_print

from repro.analysis.report import format_table
from repro.system.config import SystemConfig

#: the heaviest cross-device-coherence benchmarks (see EXPERIMENTS.md)
WORKLOADS = ["cedd", "sc", "tq"]

#: baseline plus one §III optimization and the §IV precise directory
POLICIES = ["baseline", "llcWB", "sharers"]


def _gains(matrix) -> dict[tuple[str, str], float]:
    """speedup %% of each non-baseline policy over baseline, per workload."""
    results = matrix.run_batch(
        [(w, p) for w in WORKLOADS for p in POLICIES]
    )
    return {
        (w, p): results[(w, p)].speedup_over(results[(w, "baseline")])
        for w in WORKLOADS
        for p in POLICIES
        if p != "baseline"
    }


def test_contention_ablation(matrix, results_dir):
    contended_matrix = dataclasses.replace(
        matrix, config_factory=SystemConfig.contended, _cache={}
    )
    flat = matrix.run_batch([(w, p) for w in WORKLOADS for p in POLICIES])
    contended = contended_matrix.run_batch(
        [(w, p) for w in WORKLOADS for p in POLICIES]
    )
    flat_gain = _gains(matrix)
    contended_gain = _gains(contended_matrix)

    rows = []
    for workload in WORKLOADS:
        base_flat = flat[(workload, "baseline")]
        base_cont = contended[(workload, "baseline")]
        slowdown = 100.0 * (base_cont.cycles / base_flat.cycles - 1.0)
        rows.append([
            workload,
            f"{base_flat.cycles:.0f}",
            f"{base_cont.cycles:.0f}",
            f"{slowdown:+.1f}%",
            f"{flat_gain[(workload, 'llcWB')]:+.2f}",
            f"{contended_gain[(workload, 'llcWB')]:+.2f}",
            f"{flat_gain[(workload, 'sharers')]:+.2f}",
            f"{contended_gain[(workload, 'sharers')]:+.2f}",
        ])
    text = format_table(
        ["workload", "flat cy", "contended cy", "slowdown",
         "llcWB % (flat)", "llcWB % (cont)",
         "sharers % (flat)", "sharers % (cont)"],
        rows,
        title="policy gains: zero-contention fabric vs contended fabric",
    )
    save_and_print(results_dir, "ablation_contention", text)

    # 1. the fabric model bites: every contended run reports real waiting
    # at the links/ports/banks, and every runtime moves off the flat number
    for workload in WORKLOADS:
        stats = contended[(workload, "baseline")].stats
        waiting = (
            stats.get("memory.bank_wait_ticks", 0)
            + stats.get("network.arb.dir.wait_ticks", 0)
            + sum(v for k, v in stats.items()
                  if k.startswith("network.ports.") and k.endswith(".wait_ticks"))
        )
        assert waiting > 0, workload
        assert (
            contended[(workload, "baseline")].cycles
            != flat[(workload, "baseline")].cycles
        ), workload
    # probe-heavy cedd pays for broadcasts crossing the arbitrated
    # directory port: it is strictly slower under contention
    assert contended[("cedd", "baseline")].cycles > flat[("cedd", "baseline")].cycles

    # 2. message-removing policies survive contention: the precise
    # directory keeps a clearly positive gain on every workload
    for workload in WORKLOADS:
        assert contended_gain[(workload, "sharers")] > 5.0, (
            workload, contended_gain[(workload, "sharers")]
        )

    # 3. the contended runs actually exercised the contended structures
    sample = contended[(WORKLOADS[0], "baseline")].stats
    assert sample.get("memory.row_hits", 0) + sample.get("memory.row_misses", 0) > 0
    assert any(key.startswith("network.arb.") for key in sample)
