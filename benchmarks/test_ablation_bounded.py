"""Flow-control ablation — bounded queues and back-pressure vs the
unbounded contended fabric.

``SystemConfig.contended()`` makes the fabric *slow* (finite links, WRR
arbitration, banked memory) but every queue is still unbounded: a burst
parks in an infinitely deep input queue and nothing upstream ever feels
it.  ``SystemConfig.bounded()`` layers end-to-end flow control on top —
credit-bounded input ports (``input_queue_depth``), arbitrated TCC
ports, bounded bank queues with an FR-FCFS scheduler, and the
deadlock/starvation watchdog.  This ablation asks:

1. Does back-pressure actually engage on the paper's workloads?  Credit
   stalls (``network.ports.*.credit_blocks``) must appear somewhere in
   the sweep — otherwise the bounded fabric degenerated into the
   contended one.
2. Does every run still complete, with zero watchdog trips?  Flow
   control adds cyclic wait edges (sender waits on credit, credit waits
   on drain); the sweep doubles as a liveness proof on real traffic.
3. Do the §IV precise-directory gains survive?  Removing messages frees
   credits as well as slots, so the sharers policy should keep a
   clearly positive gain.
"""

from __future__ import annotations

import dataclasses

from conftest import save_and_print

from repro.analysis.report import format_table
from repro.system.config import SystemConfig

#: the heaviest cross-device-coherence benchmarks (see EXPERIMENTS.md)
WORKLOADS = ["cedd", "sc", "tq"]

POLICIES = ["baseline", "sharers"]


def _credit_blocks(stats) -> int:
    return sum(
        value for key, value in stats.items()
        if key.startswith("network.ports.") and key.endswith(".credit_blocks")
    )


def test_bounded_ablation(matrix, results_dir):
    contended_matrix = dataclasses.replace(
        matrix, config_factory=SystemConfig.contended, _cache={}
    )
    bounded_matrix = dataclasses.replace(
        matrix, config_factory=SystemConfig.bounded, _cache={}
    )
    cells = [(w, p) for w in WORKLOADS for p in POLICIES]
    contended = contended_matrix.run_batch(cells)
    bounded = bounded_matrix.run_batch(cells)

    rows = []
    for workload in WORKLOADS:
        cont = contended[(workload, "baseline")]
        bnd = bounded[(workload, "baseline")]
        delta = 100.0 * (bnd.cycles / cont.cycles - 1.0)
        gain_cont = contended[(workload, "sharers")].speedup_over(cont)
        gain_bnd = bounded[(workload, "sharers")].speedup_over(bnd)
        rows.append([
            workload,
            f"{cont.cycles:.0f}",
            f"{bnd.cycles:.0f}",
            f"{delta:+.1f}%",
            f"{_credit_blocks(bnd.stats)}",
            f"{bnd.stats.get('memory.queue_overflows', 0):.0f}",
            f"{gain_cont:+.2f}",
            f"{gain_bnd:+.2f}",
        ])
    text = format_table(
        ["workload", "contended cy", "bounded cy", "delta",
         "credit blocks", "mem overflows",
         "sharers % (cont)", "sharers % (bnd)"],
        rows,
        title="flow control: unbounded contended fabric vs bounded fabric",
    )
    save_and_print(results_dir, "ablation_bounded", text)

    # 1. back-pressure engages somewhere in the sweep
    total_blocks = sum(
        _credit_blocks(bounded[(w, p)].stats) for w, p in cells
    )
    assert total_blocks > 0

    # 2. liveness: every bounded run completed with zero watchdog trips
    for cell in cells:
        assert bounded[cell].stats.get("watchdog.trips", 0) == 0, cell

    # 3. the precise directory keeps a clearly positive gain under
    # flow control on every workload
    for workload in WORKLOADS:
        gain = bounded[(workload, "sharers")].speedup_over(
            bounded[(workload, "baseline")]
        )
        assert gain > 5.0, (workload, gain)
