"""Figure 4 — % saved simulated cycles per §III optimization, per benchmark.

Paper: varying small improvements across the 10 CHAI benchmarks, average
1.68 % without precise state tracking; early dirty responses do not produce
significant improvements; data-parallel benchmarks (bs, pad, hsti, hsto,
rscd) show limited improvement.
"""

from __future__ import annotations

from conftest import save_and_print, save_json

from repro.analysis.experiments import run_figure4
from repro.analysis.report import bar_chart
from repro.coherence.policies import PRESETS
from repro.system.builder import build_system
from repro.system.config import SystemConfig
from repro.workloads.registry import get_workload


def test_figure4_regeneration(matrix, results_dir):
    figure = run_figure4(matrix)
    text = figure.to_text()
    chart = bar_chart(
        figure.benchmarks, figure.series["llcWB"],
        title="Figure 4 (llcWB bar): % saved cycles over baseline", unit="%",
    )
    save_json(results_dir, "figure4", figure)
    save_and_print(results_dir, "figure4", text + "\n\n" + chart)

    # Shape assertions (paper-aligned, not absolute):
    for policy in figure.series:
        average = figure.average(policy)
        # small average improvement, no large regression
        assert -2.0 < average < 25.0, (policy, average)
    # early dirty response is not a significant win (paper: "do not
    # produce significant improvements")
    assert abs(figure.average("earlyDirtyResp")) < 5.0
    # no optimization tanks any benchmark
    for policy, values in figure.series.items():
        for benchmark, value in zip(figure.benchmarks, values):
            assert value > -10.0, (policy, benchmark, value)


def test_bench_baseline_tq(benchmark):
    """Wall-clock benchmark: one baseline run of the flagship workload."""

    def run():
        system = build_system(SystemConfig.benchmark(policy=PRESETS["baseline"]))
        return system.run_workload(get_workload("tq"))

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.ok
