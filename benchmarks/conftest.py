"""Shared fixtures for the figure/table regeneration benchmarks.

Runs are cached in a session-scoped :class:`ExperimentMatrix` so overlapping
bars (e.g. the baselines shared by Figures 4-7) execute once.  Every
regenerated figure is printed and also written to ``benchmark_results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.analysis.experiments import ExperimentMatrix

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmark_results"


@pytest.fixture(scope="session")
def matrix() -> ExperimentMatrix:
    return ExperimentMatrix(scale=1.0)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def save_json(results_dir: pathlib.Path, name: str, figure) -> None:
    (results_dir / f"{name}.json").write_text(figure.to_json() + "\n")
