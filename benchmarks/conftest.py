"""Shared fixtures for the figure/table regeneration benchmarks.

Runs resolve through the results store (:mod:`repro.store`): a
session-scoped :class:`ExperimentMatrix` fans cold cells out over a
process pool and persists every result in ``.repro_store.sqlite`` at the
repo root, so a warm re-run of ``pytest benchmarks/`` performs zero
simulations.  A legacy ``.repro_cache/`` file tree, if present, is
migrated into the store on first use.

Knobs (also see ``--jobs`` / ``--fresh-cache`` pytest options):

- ``REPRO_JOBS=N`` — worker processes (default: ``os.cpu_count()``).
- ``REPRO_NO_CACHE=1`` — disable the persistent store for this session.
- ``REPRO_STORE_PATH`` — store location (default: ``.repro_store.sqlite``).
- ``REPRO_SERVE=host:port`` — resolve cells via a running ``repro serve``.

Every regenerated figure is printed and also written to
``benchmark_results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.experiments import ExperimentMatrix
from repro.runner import default_progress
from repro.store import ResultStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmark_results"
CACHE_DIR = REPO_ROOT / ".repro_cache"
STORE_PATH = REPO_ROOT / ".repro_store.sqlite"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs", type=int, default=None,
        help="worker processes for simulation cells (default: os.cpu_count())",
    )
    parser.addoption(
        "--fresh-cache", action="store_true",
        help="clear the persistent results store before running",
    )


@pytest.fixture(scope="session")
def matrix(request: pytest.FixtureRequest) -> ExperimentMatrix:
    jobs = request.config.getoption("--jobs")
    if jobs is None and os.environ.get("REPRO_JOBS"):
        jobs = int(os.environ["REPRO_JOBS"])
    path = os.environ.get("REPRO_STORE_PATH") or STORE_PATH
    store = ResultStore(path, enabled=not os.environ.get("REPRO_NO_CACHE"))
    if request.config.getoption("--fresh-cache"):
        store.clear()
    elif store.enabled and CACHE_DIR.exists() and not pathlib.Path(path).exists():
        migrated = store.migrate_cache(CACHE_DIR)
        if migrated:
            print(f"[store] migrated {migrated} legacy cache entr(ies) "
                  f"from {CACHE_DIR}")
    return ExperimentMatrix(
        scale=1.0, jobs=jobs, store=store, progress=default_progress
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def save_json(results_dir: pathlib.Path, name: str, figure) -> None:
    (results_dir / f"{name}.json").write_text(figure.to_json() + "\n")
