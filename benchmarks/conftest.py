"""Shared fixtures for the figure/table regeneration benchmarks.

Runs execute through the parallel runner (:mod:`repro.runner`): a
session-scoped :class:`ExperimentMatrix` fans cells out over a process
pool and persists every result in ``.repro_cache/`` at the repo root, so
a warm re-run of ``pytest benchmarks/`` performs zero simulations.

Knobs (also see ``--jobs`` / ``--fresh-cache`` pytest options):

- ``REPRO_JOBS=N`` — worker processes (default: ``os.cpu_count()``).
- ``REPRO_NO_CACHE=1`` — disable the persistent cache for this session.

Every regenerated figure is printed and also written to
``benchmark_results/``.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.analysis.experiments import ExperimentMatrix
from repro.runner import ResultCache, default_progress

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULTS_DIR = REPO_ROOT / "benchmark_results"
CACHE_DIR = REPO_ROOT / ".repro_cache"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--jobs", type=int, default=None,
        help="worker processes for simulation cells (default: os.cpu_count())",
    )
    parser.addoption(
        "--fresh-cache", action="store_true",
        help="clear the persistent result cache before running",
    )


@pytest.fixture(scope="session")
def matrix(request: pytest.FixtureRequest) -> ExperimentMatrix:
    jobs = request.config.getoption("--jobs")
    if jobs is None and os.environ.get("REPRO_JOBS"):
        jobs = int(os.environ["REPRO_JOBS"])
    cache = ResultCache(CACHE_DIR, enabled=not os.environ.get("REPRO_NO_CACHE"))
    if request.config.getoption("--fresh-cache"):
        cache.clear()
    return ExperimentMatrix(
        scale=1.0, jobs=jobs, cache=cache, progress=default_progress
    )


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_and_print(results_dir: pathlib.Path, name: str, text: str) -> None:
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{text}\n")


def save_json(results_dir: pathlib.Path, name: str, figure) -> None:
    (results_dir / f"{name}.json").write_text(figure.to_json() + "\n")
