"""Extension ablations: energy, directory banking, read-only filtering,
and conservative VicDirty handling.

These regenerate the quantities behind the paper's qualitative claims:
the energy argument of §VI (probe/memory traffic "directly proportional to
energy decrements"), and the three §VII/conclusion future-work ideas we
implement as working features.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.energy import energy_comparison, estimate_energy
from repro.analysis.report import format_table
from repro.coherence.policies import PRESETS


def test_energy_comparison_table(matrix, results_dir):
    """Per-policy energy estimate on the flagship workload."""
    results = {
        name: matrix.run("tq", name)
        for name in ("baseline", "noWBcleanVic", "llcWB+useL3OnWT", "owner", "sharers")
    }
    text = energy_comparison(results)
    save_and_print(results_dir, "ablation_energy", text)
    baseline = estimate_energy(results["baseline"])
    best = estimate_energy(results["sharers"])
    # the paper's energy-efficiency claim, directionally
    assert best.reduction_vs(baseline) > 10.0


def test_directory_banking_sweep(matrix, results_dir):
    """§VII distributed directories: interleaved banks spread occupancy."""
    rows = []
    by_banks = {}
    for banks in (1, 2, 4):
        policy = PRESETS["sharers"].named(dir_banks=banks)
        result = matrix.run_policy_object("hsti", policy, tag=f"banks-{banks}")
        assert result.ok
        by_banks[banks] = result
        rows.append([
            banks,
            f"{result.cycles:.0f}",
            result.dir_probes,
            result.mem_accesses,
            int(result.stats.get("dir.queue_wait_ticks",
                                 result.stats.get("dir0.queue_wait_ticks", 0))),
        ])
    text = format_table(
        ["banks", "cycles", "probes", "mem", "bank0 queue wait (ticks)"],
        rows,
        title="§VII: address-interleaved directory banking (hsti, contended atomics)",
    )
    save_and_print(results_dir, "ablation_banking", text)
    # banking must never break correctness or inflate probes
    assert by_banks[4].dir_probes <= by_banks[1].dir_probes * 1.1
    # contention relief: more banks should not slow the workload down much
    assert by_banks[4].cycles <= by_banks[1].cycles * 1.15


def test_readonly_region_filtering(matrix, results_dir):
    """Conclusion future work: untracked read-only pages avoid directory
    thrash.  Uses the streaming microbenchmark whose read-mostly region is
    known, under a deliberately tiny directory."""
    from repro.workloads.micro import ReadOnlySharedScan

    workload = ReadOnlySharedScan(lines=96)
    tiny = dict(dir_entries=32, dir_assoc=2)
    tracked = matrix.run_policy_object(
        workload, PRESETS["sharers"].named(**tiny), tag="ro-tracked"
    )
    filtered = matrix.run_policy_object(
        workload,
        PRESETS["sharers"].named(**tiny, readonly_regions=(workload.region,)),
        tag="ro-filtered",
    )
    assert tracked.ok and filtered.ok
    rows = [
        ["tracked", f"{tracked.cycles:.0f}", tracked.dir_probes,
         int(tracked.stats.get("dir.dir_evictions", 0))],
        ["read-only filtered", f"{filtered.cycles:.0f}", filtered.dir_probes,
         int(filtered.stats.get("dir.dir_evictions", 0))],
    ]
    text = format_table(
        ["directory", "cycles", "probes", "dir evictions"],
        rows,
        title="conclusion future work: read-only region filtering (32-entry directory)",
    )
    save_and_print(results_dir, "ablation_readonly", text)
    evictions_tracked = int(tracked.stats.get("dir.dir_evictions", 0))
    evictions_filtered = int(filtered.stats.get("dir.dir_evictions", 0))
    assert evictions_filtered < evictions_tracked
    assert filtered.dir_probes <= tracked.dir_probes


def test_vicdirty_sharer_handling(matrix, results_dir):
    """§VII second idea: preserving dirty sharers on owner write-back vs
    the conservative invalidate-and-deallocate variant."""
    from repro.workloads.micro import DirtySharingChain

    workload = DirtySharingChain(lines=8, rounds=4)
    preserve = matrix.run_policy_object(
        workload, PRESETS["sharers"], tag="vicdirty-preserve"
    )
    conservative = matrix.run_policy_object(
        workload,
        PRESETS["sharers"].named(vicdirty_invalidates_sharers=True),
        tag="vicdirty-conservative",
    )
    assert preserve.ok and conservative.ok
    rows = [
        ["preserve sharers (Table I)", f"{preserve.cycles:.0f}", preserve.dir_probes],
        ["invalidate sharers", f"{conservative.cycles:.0f}", conservative.dir_probes],
    ]
    text = format_table(
        ["VicDirty handling", "cycles", "probes"],
        rows,
        title="§VII: dirty-sharer handling on owner write-back",
    )
    save_and_print(results_dir, "ablation_vicdirty", text)
    assert preserve.dir_probes <= conservative.dir_probes
