"""HeteroSync comparison — reproducing the paper's *negative* result.

§V / §VIII: "We also evaluated the benchmarks part of HeteroSync ...
However, the effects of the enhancements are not prominent due to their
limited collaborative properties."  This ablation runs the HeteroSync-like
GPU-synchronization suite under the same policies as Figure 6 and shows
the precise directory's advantage is far smaller than on the CHAI suite —
the quantitative justification for the paper's benchmark selection.
"""

from __future__ import annotations

from conftest import save_and_print

from repro.analysis.report import format_table
from repro.coherence.policies import PRESETS
from repro.workloads.heterosync import HETEROSYNC_WORKLOADS
from repro.workloads.lulesh import LuleshProxy


def run_heterosync(workload, policy_name: str):
    """HeteroSync's faithful setup: WB_L2 scoped synchronization."""
    from repro.system.builder import build_system
    from repro.system.config import SystemConfig

    config = SystemConfig.benchmark(
        policy=PRESETS[policy_name], gpu_tcc_writeback=True
    )
    return build_system(config).run_workload(workload)


def test_heterosync_shows_limited_benefit(matrix, results_dir):
    rows = []
    hs_speedups = []
    for workload in list(HETEROSYNC_WORKLOADS) + [LuleshProxy()]:
        baseline = run_heterosync(workload, "baseline")
        precise = run_heterosync(workload, "sharers")
        assert baseline.ok and precise.ok
        speedup = precise.speedup_over(baseline)
        hs_speedups.append(speedup)
        rows.append([
            workload.name,
            f"{baseline.cycles:.0f}",
            f"{precise.cycles:.0f}",
            f"{speedup:+.2f}",
            baseline.dir_probes,
            precise.dir_probes,
        ])

    # the CHAI collaborative reference points (cached figure-6 runs)
    chai_speedups = []
    for benchmark in ("tq", "sc", "cedd"):
        baseline = matrix.run(benchmark, "baseline")
        precise = matrix.run(benchmark, "sharers")
        chai_speedups.append(precise.speedup_over(baseline))
        rows.append([
            f"{benchmark} (CHAI)",
            f"{baseline.cycles:.0f}",
            f"{precise.cycles:.0f}",
            f"{precise.speedup_over(baseline):+.2f}",
            baseline.dir_probes,
            precise.dir_probes,
        ])

    text = format_table(
        ["benchmark", "baseline cy", "precise cy", "speedup %",
         "baseline probes", "precise probes"],
        rows,
        title="HeteroSync-like suite vs CHAI-like suite under state tracking",
    )
    hs_avg = sum(hs_speedups) / len(hs_speedups)
    chai_avg = sum(chai_speedups) / len(chai_speedups)
    text += (
        f"\naverage speedup: HeteroSync-like {hs_avg:+.1f}%  vs  "
        f"CHAI collaborative {chai_avg:+.1f}%"
        "\n(paper: HeteroSync effects 'not prominent due to their limited "
        "collaborative properties')"
    )
    save_and_print(results_dir, "ablation_heterosync", text)

    # the paper's negative result: far smaller benefit than CHAI
    assert hs_avg < chai_avg / 2
    assert all(s < 25.0 for s in hs_speedups), hs_speedups
