"""Structural tests of every CHAI-like workload build.

These validate the *construction* of each benchmark — program counts adapt
to the machine, kernels are well-formed, address maps don't collide, and
deterministic rebuilds are identical — without running a simulation.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.mem.address import LINE_BYTES, line_addr
from repro.workloads import available_workloads, get_workload
from repro.workloads.base import KernelSpec, WorkloadContext
from repro.workloads import trace as ops

ALL = available_workloads()


def collect_kernels(build) -> list[KernelSpec]:
    """Statically extract kernels by scanning host programs for LaunchKernel.

    We execute the host generators feeding dummy results; memory ops get 0,
    spins get a satisfying value.  This is only safe for *structure*
    inspection, so we bound the number of steps.
    """
    kernels = []
    for factory in build.cpu_programs:
        program = factory()
        result = None
        counters: dict[int, int] = {}  # fake atomic fetch-and-add state
        for _ in range(100_000):
            try:
                op = program.send(result)
            except (StopIteration, AssertionError):
                break
            if isinstance(op, ops.LaunchKernel):
                kernels.append(op.kernel)
                result = _FakeHandle()
            elif isinstance(op, ops.SpinUntil):
                result = _satisfy(op)
                if result is None:
                    break  # cannot satisfy statically; stop scanning
            elif isinstance(op, ops.AtomicRMW):
                # emulate fetch-and-add so claim loops behave realistically
                result = counters.get(op.addr, 0)
                counters[op.addr] = result + max(1, op.operand)
            elif isinstance(op, ops.Load):
                result = 0
            elif isinstance(op, (ops.VLoad,)):
                result = tuple(0 for _ in op.addrs)
            else:
                result = None
    return kernels


def _satisfy(op: ops.SpinUntil) -> int | None:
    for candidate in range(0, 4096):
        if op.predicate(candidate):
            return candidate
    return None


class _FakeHandle:
    def when_done(self, callback):
        callback()


@pytest.fixture(params=[2, 4, 8], ids=lambda n: f"{n}cores")
def context(request):
    return WorkloadContext(num_cpu_cores=request.param, num_cus=4, seed=1)


@pytest.mark.parametrize("name", ALL)
class TestBuildStructure:
    def test_program_count_fits_machine(self, name, context):
        build = get_workload(name).build(context)
        assert 1 <= len(build.cpu_programs) <= context.num_cpu_cores

    def test_initial_memory_is_line_aligned(self, name, context):
        build = get_workload(name).build(context)
        for addr in build.initial_memory:
            assert addr == line_addr(addr)

    def test_has_checks(self, name, context):
        build = get_workload(name).build(context)
        assert build.checks, "every benchmark must verify its output"

    def test_kernels_are_well_formed(self, name, context):
        build = get_workload(name).build(context)
        kernels = collect_kernels(build)
        assert kernels, f"{name}: no kernel launched by any host program"
        for kernel in kernels:
            assert isinstance(kernel, KernelSpec)
            assert kernel.workgroups
            assert all(group for group in kernel.workgroups)
            assert kernel.code_addrs, "SQC ifetch stream requires code lines"

    def test_deterministic_rebuild(self, name, context):
        workload = get_workload(name)
        first = workload.build(context)
        second = workload.build(replace(context))
        assert set(first.initial_memory) == set(second.initial_memory)
        for addr in first.initial_memory:
            assert first.initial_memory[addr] == second.initial_memory[addr]
        assert len(first.cpu_programs) == len(second.cpu_programs)

    def test_seed_changes_data_for_randomized_workloads(self, name, context):
        workload = get_workload(name)
        a = workload.build(context)
        b = workload.build(replace(context, seed=context.seed + 1))
        if name in ("sc", "hsti", "hsto", "rscd", "rsct"):
            assert a.initial_memory != b.initial_memory

    def test_scale_grows_footprint(self, name):
        workload = get_workload(name)
        small = workload.build(WorkloadContext(4, 2, scale=0.25))
        large = workload.build(WorkloadContext(4, 2, scale=1.0))

        def footprint(build):
            lines = set(build.initial_memory)
            for check in build.checks:
                pass  # checks carry addresses implicitly; use memory + programs
            return len(lines)

        # a crude but reliable proxy: larger scale => at least as much
        # seeded memory (workloads without seeded memory are exempt)
        if large.initial_memory:
            assert footprint(large) >= footprint(small)


class TestWorkloadsAdaptToSmallMachines:
    @pytest.mark.parametrize("name", ALL)
    def test_two_core_machine(self, name):
        """Every benchmark must build and run on a 1-CorePair machine."""
        from repro import SystemConfig, build_system
        from repro.coherence.policies import PRESETS

        config = SystemConfig.small(policy=PRESETS["sharers"], num_corepairs=1)
        system = build_system(config)
        result = system.run_workload(get_workload(name), scale=0.25, verify=True)
        assert result.ok, result.check_errors[:3]
