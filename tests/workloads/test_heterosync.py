"""Tests for the HeteroSync-like GPU synchronization suite."""

from __future__ import annotations

import pytest

from repro import SystemConfig, build_system
from repro.coherence.policies import PRESETS
from repro.workloads.heterosync import (
    HETEROSYNC_WORKLOADS,
    GpuLockFreeQueue,
    GpuSpinMutex,
    GpuSyncBarrier,
)


@pytest.mark.parametrize("policy", ["baseline", "sharers"])
@pytest.mark.parametrize(
    "workload", HETEROSYNC_WORKLOADS, ids=lambda w: w.name
)
class TestHeteroSyncVerifies:
    def test_runs_and_verifies(self, workload, policy):
        system = build_system(SystemConfig.small(policy=PRESETS[policy]))
        result = system.run_workload(workload, verify=True)
        assert result.ok, (workload.name, result.check_errors[:3])


class TestSemantics:
    def test_mutex_provides_mutual_exclusion(self):
        """The counter's final value is exact only if no two critical
        sections interleaved (the CS uses a read-then-write, not one
        atomic add, so any overlap would lose increments)."""
        system = build_system(SystemConfig.small())
        workload = GpuSpinMutex(acquisitions_per_wave=10)
        result = system.run_workload(workload, verify=True)
        assert result.ok

    def test_barrier_rounds_complete_in_lockstep(self):
        system = build_system(SystemConfig.small())
        result = system.run_workload(GpuSyncBarrier(rounds=5), verify=True)
        assert result.ok

    def test_queue_conserves_items(self):
        system = build_system(SystemConfig.small())
        result = system.run_workload(GpuLockFreeQueue(items_per_producer=8),
                                     verify=True)
        assert result.ok

    def test_traffic_is_gpu_dominated(self):
        """The paper's observation: HeteroSync barely involves the CPU —
        synchronization runs at device scope inside the TCC."""
        system = build_system(SystemConfig.benchmark(gpu_tcc_writeback=True))
        result = system.run_workload(GpuSpinMutex(), verify=True)
        assert result.ok
        cpu_ops = sum(
            v for k, v in result.stats.items()
            if k.startswith("l2.") and ".ops." in k
        )
        glc_atomics = result.stats.get("tcc0.glc_atomics", 0)
        assert glc_atomics > cpu_ops
        # device-scope sync never reaches the system directory as atomics
        assert result.stats.get("dir.requests.Atomic", 0) == 0

    def test_wb_config_keeps_sync_off_the_directory(self):
        """Under WB_L2 (scoped sync), the spinning stays in the TCC: the
        directory only sees the compulsory fetches and final flush."""
        wt = build_system(SystemConfig.benchmark(gpu_tcc_writeback=False))
        wt_result = wt.run_workload(GpuSpinMutex(), verify=True)
        wb = build_system(SystemConfig.benchmark(gpu_tcc_writeback=True))
        wb_result = wb.run_workload(GpuSpinMutex(), verify=True)
        assert wt_result.ok and wb_result.ok
        wt_wts = wt_result.stats.get("dir.requests.WT", 0)
        wb_wts = wb_result.stats.get("dir.requests.WT", 0)
        assert wb_wts < wt_wts  # write-through spun every atomic out
