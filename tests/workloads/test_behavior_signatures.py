"""Behavioural signatures: each benchmark must exercise the protocol
mechanisms its CHAI original is known for.

These are the tests that keep the workloads honest as *coherence*
benchmarks — if a refactor accidentally removed tq's fine-grained
handoffs or hsti's cross-device atomics, the figures would silently lose
their meaning.  Each test runs the workload once on the baseline system
and asserts the signature counters.
"""

from __future__ import annotations

import pytest

from repro import SystemConfig, build_system, get_workload
from repro.coherence.policies import PRESETS


@pytest.fixture(scope="module")
def runs():
    """One baseline run per workload, shared by all signature tests."""
    cache = {}

    def run(name: str):
        if name not in cache:
            system = build_system(SystemConfig.benchmark(policy=PRESETS["baseline"]))
            result = system.run_workload(get_workload(name), verify=True)
            assert result.ok, (name, result.check_errors[:3])
            cache[name] = (system, result)
        return cache[name]

    return run


def stat(result, suffix: str) -> int:
    return int(sum(v for k, v in result.stats.items() if k.endswith(suffix)))


class TestSignatures:
    def test_bs_is_read_sharing_dominated(self, runs):
        _system, result = runs("bs")
        # no atomics at all; writes are disjoint
        assert stat(result, ".slc_atomics") == 0
        assert stat(result, ".ops.atomic") == 0

    def test_cedd_pipelines_dirty_data_across_devices(self, runs):
        _system, result = runs("cedd")
        # CPU-produced buffers consumed by the GPU: downgrades with dirty
        # forwarding must occur, plus SLC flag atomics
        assert result.stats.get("dir.probes_sent.down", 0) > 0
        assert stat(result, ".slc_atomics") > 0
        # four stages x frames: GPU both loads and stores
        assert stat(result, ".vloads") > 0 and stat(result, ".vstores") > 0

    def test_pad_has_cross_device_flag_chain(self, runs):
        _system, result = runs("pad")
        assert stat(result, ".slc_atomics") > 0      # GPU flag publishes
        assert stat(result, ".spin_retries") > 0     # CPU waits on GPU rows

    def test_sc_contends_on_shared_counters(self, runs):
        _system, result = runs("sc")
        # both CPU atomics and GPU SLC atomics hit the same two counters
        assert stat(result, ".ops.atomic") > 0
        assert stat(result, ".slc_atomics") > 0

    def test_tq_is_fine_grained_task_parallel(self, runs):
        system, result = runs("tq")
        # every task dequeue is a GPU system-scope atomic...
        assert stat(result, ".slc_atomics") >= 96
        # ...and every payload is CPU-written, GPU-read (dirty forwarding)
        assert result.stats.get("dir.probes_sent.down", 0) > 0
        assert system.tcc.stats["misses"] > 0

    def test_hsti_hits_shared_bins_from_both_devices(self, runs):
        _system, result = runs("hsti")
        assert stat(result, ".ops.atomic") > 0       # CPU bin increments
        assert stat(result, ".slc_atomics") > 0      # GPU bin increments

    def test_hsto_reads_whole_input_everywhere(self, runs):
        _system, result = runs("hsto")
        # 8 CPU threads x 384 loads each, plus the GPU's sweep
        assert stat(result, ".ops.load") >= 8 * 384
        assert stat(result, ".vloads") > 0
        # but almost no atomics (disjoint bins)
        assert stat(result, ".ops.atomic") == 0

    def test_trns_migrates_lines_between_devices(self, runs):
        _system, result = runs("trns")
        # in-place cycles: both devices store into the same shared array
        assert stat(result, ".ops.store") > 0
        assert stat(result, ".vstores") + stat(result, ".writes") > 0
        assert stat(result, ".slc_atomics") > 0      # cycle claiming

    def test_rscd_accumulates_consensus_atomically(self, runs):
        _system, result = runs("rscd")
        assert stat(result, ".ops.atomic") > 0
        assert stat(result, ".slc_atomics") > 0

    def test_rsct_hands_models_cpu_to_gpu(self, runs):
        system, result = runs("rsct")
        assert stat(result, ".slc_atomics") > 0      # dequeues + flag spins
        assert system.tcc.stats["misses"] > 0        # GPU streams the points

    def test_eviction_traffic_exists_suite_wide(self, runs):
        """The scaled benchmark config must actually exercise victims
        (the §III-B/C prerequisites) on at least some benchmarks."""
        clean = dirty = 0
        for name in ("cedd", "hsto", "trns", "tq"):
            _system, result = runs(name)
            clean += stat(result, ".victims.clean")
            dirty += stat(result, ".victims.dirty")
        assert clean > 0
        assert dirty > 0
