"""The CHAI-like suite must run to completion AND verify its outputs on a
small system under representative directory policies — this is the
reproduction's equivalent of the benchmarks' output verification."""

from __future__ import annotations

import pytest

from repro import SystemConfig, available_workloads, build_system, get_workload
from repro.coherence.policies import PRESETS

ALL = available_workloads()
#: policies spanning the design space (baseline, best §III combo, precise)
POLICY_SAMPLE = ["baseline", "llcWB+useL3OnWT", "owner", "sharers"]


class TestRegistry:
    def test_paper_suite_is_registered(self):
        assert ALL == [
            "bs", "cedd", "pad", "sc", "tq", "hsti", "hsto", "trns", "rscd", "rsct",
        ]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nope")

    def test_metadata_present(self):
        for name in ALL:
            workload = get_workload(name)
            assert workload.description, name
            assert workload.collaboration, name


@pytest.mark.parametrize("name", ALL)
@pytest.mark.parametrize("policy", POLICY_SAMPLE)
class TestSuiteVerifies:
    def test_runs_and_verifies(self, name, policy):
        system = build_system(SystemConfig.small(policy=PRESETS[policy]))
        result = system.run_workload(get_workload(name), scale=0.25, verify=True)
        assert result.ok, result.check_errors[:5]
        assert result.cycles > 0
        assert result.dir_probes >= 0


@pytest.mark.parametrize("name", ALL)
class TestDeterminism:
    def test_same_seed_same_cycles(self, name):
        runs = []
        for _ in range(2):
            system = build_system(SystemConfig.small())
            result = system.run_workload(get_workload(name), scale=0.25)
            runs.append((result.cycles, result.dir_probes, result.mem_accesses))
        assert runs[0] == runs[1]
