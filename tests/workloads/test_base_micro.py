"""Tests for the workload framework utilities and the microbenchmarks."""

from __future__ import annotations

import pytest

from repro import SystemConfig, build_system
from repro.coherence.policies import PRESETS
from repro.mem.address import LINE_BYTES
from repro.workloads.base import AddressSpace, WorkloadContext, checker
from repro.workloads.chai.common import chunks, partition, token
from repro.workloads.micro import MigratoryCounter, ReadersWriterSweep, StreamingScan


class TestAddressSpace:
    def test_lines_are_disjoint_and_aligned(self):
        space = AddressSpace()
        a = space.lines(2)
        b = space.lines(1)
        assert a % LINE_BYTES == 0
        assert b == a + 2 * LINE_BYTES

    def test_words_one_per_line(self):
        space = AddressSpace()
        words = space.words(3)
        lines = {w // LINE_BYTES for w in words}
        assert len(lines) == 3

    def test_array_is_dense(self):
        space = AddressSpace()
        array = space.array(20)
        assert array[1] - array[0] == 4
        assert len(array) == 20

    def test_line_zero_reserved(self):
        space = AddressSpace()
        assert space.lines(1) >= 16 * LINE_BYTES

    def test_bad_allocation(self):
        with pytest.raises(ValueError):
            AddressSpace().lines(0)


class TestPartitioning:
    def test_partition_covers_range(self):
        spans = partition(10, 3)
        assert spans == [(0, 4), (4, 7), (7, 10)]

    def test_partition_more_parts_than_items(self):
        spans = partition(2, 4)
        assert [hi - lo for lo, hi in spans] == [1, 1, 0, 0]

    def test_chunks(self):
        assert list(chunks(0, 10, 4)) == [(0, 4), (4, 8), (8, 10)]

    def test_tokens_are_distinct(self):
        seen = {token(a, i) for a in range(4) for i in range(100)}
        assert len(seen) == 400


class TestContext:
    def test_scaled(self):
        ctx = WorkloadContext(num_cpu_cores=4, num_cus=2, scale=0.5)
        assert ctx.scaled(100) == 50
        assert ctx.scaled(1, minimum=4) == 4

    def test_rng_deterministic_per_seed(self):
        a = WorkloadContext(4, 2, seed=7).rng().random()
        b = WorkloadContext(4, 2, seed=7).rng().random()
        assert a == b


class TestChecker:
    def test_checker_reports_mismatches(self):
        class FakeSystem:
            def coherent_word(self, addr):
                return 0

        check = checker({0x40: 5}, "demo")
        errors = check(FakeSystem())
        assert len(errors) == 1 and "demo" in errors[0]


@pytest.mark.parametrize("policy", ["baseline", "sharers"])
class TestMicrobenchmarks:
    def run(self, workload, policy):
        system = build_system(SystemConfig.small(policy=PRESETS[policy]))
        return system.run_workload(workload, verify=True)

    def test_readers_writer(self, policy):
        result = self.run(ReadersWriterSweep(lines=4, rounds=3), policy)
        assert result.ok, result.check_errors[:3]

    def test_migratory(self, policy):
        result = self.run(MigratoryCounter(increments_per_thread=10), policy)
        assert result.ok

    def test_streaming(self, policy):
        # 150 lines/thread x 2 threads per 128-line L2: guaranteed evictions
        result = self.run(StreamingScan(lines_per_thread=150), policy)
        assert result.ok
        dirty = result.stats.get("l2.0.victims.dirty", 0)
        clean = result.stats.get("l2.0.victims.clean", 0)
        assert dirty > 0   # write pass evicts modified lines
        assert clean > 0   # read passes evict clean refills
