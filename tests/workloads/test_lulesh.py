"""Tests for the Lulesh-like hydrodynamics proxy."""

from __future__ import annotations

import pytest

from repro import SystemConfig, build_system
from repro.coherence.policies import PRESETS
from repro.workloads.lulesh import LuleshProxy, step


class TestStencil:
    def test_step_deterministic(self):
        assert step(4, 4, 4) == 5
        assert step(0, 0, 0) == 1

    def test_reference_matches_simulation(self):
        """The embedded reference computation and the simulated system
        must produce the same final mesh (the whole point of the check)."""
        system = build_system(SystemConfig.small())
        result = system.run_workload(LuleshProxy(mesh_cells=64, iterations=3),
                                     verify=True)
        assert result.ok, result.check_errors[:3]


@pytest.mark.parametrize("policy", ["baseline", "llcWB+useL3OnWT", "sharers"])
class TestAcrossPolicies:
    def test_verifies(self, policy):
        system = build_system(SystemConfig.small(policy=PRESETS[policy]))
        result = system.run_workload(LuleshProxy(mesh_cells=64, iterations=3),
                                     verify=True)
        assert result.ok, (policy, result.check_errors[:3])


class TestPaperAlignment:
    def test_limited_benefit_from_state_tracking(self):
        """The paper's observation: Lulesh's bulk-synchronous structure has
        'limited collaborative properties' — the precise directory's win is
        far below the CHAI collaborative range (~45%)."""
        runs = {}
        for policy in ("baseline", "sharers"):
            system = build_system(SystemConfig.benchmark(policy=PRESETS[policy]))
            runs[policy] = system.run_workload(LuleshProxy(), verify=True)
            assert runs[policy].ok
        speedup = runs["sharers"].speedup_over(runs["baseline"])
        assert speedup < 20.0, speedup

    def test_halo_exchange_is_the_only_cross_device_sharing(self):
        system = build_system(SystemConfig.benchmark())
        result = system.run_workload(LuleshProxy(), verify=True)
        assert result.ok
        # per iteration: halo value + flag publish (2 EXCH) plus however
        # many spin reads — thin relative to the compute's memory traffic
        slc = result.stats.get("tcc0.slc_atomics", 0)
        loads = sum(v for k, v in result.stats.items() if k.endswith(".ops.load"))
        assert slc >= 2 * 4
        assert slc < loads / 5
