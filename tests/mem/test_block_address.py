"""Tests for line data and address arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.address import (
    LINE_BYTES,
    WORDS_PER_LINE,
    line_addr,
    make_addr,
    word_index,
)
from repro.mem.block import ZERO_LINE, LineData


class TestAddress:
    def test_line_addr_aligns_down(self):
        assert line_addr(0) == 0
        assert line_addr(63) == 0
        assert line_addr(64) == 64
        assert line_addr(130) == 128

    def test_word_index(self):
        assert word_index(0) == 0
        assert word_index(4) == 1
        assert word_index(63) == 15

    def test_make_addr_roundtrip(self):
        addr = make_addr(5, 3)
        assert line_addr(addr) == 5 * LINE_BYTES
        assert word_index(addr) == 3

    def test_make_addr_rejects_bad_word(self):
        with pytest.raises(ValueError):
            make_addr(0, WORDS_PER_LINE)
        with pytest.raises(ValueError):
            make_addr(0, -1)

    @given(st.integers(min_value=0, max_value=2**40))
    def test_line_addr_idempotent(self, addr):
        assert line_addr(line_addr(addr)) == line_addr(addr)

    @given(
        st.integers(min_value=0, max_value=2**20),
        st.integers(min_value=0, max_value=WORDS_PER_LINE - 1),
    )
    def test_make_addr_decomposition(self, line_no, word):
        addr = make_addr(line_no, word)
        assert line_addr(addr) // LINE_BYTES == line_no
        assert word_index(addr) == word


class TestLineData:
    def test_zero_line_is_all_zero(self):
        assert all(w == 0 for w in ZERO_LINE.words)

    def test_with_word_replaces_one_word(self):
        line = ZERO_LINE.with_word(3, 99)
        assert line.word(3) == 99
        assert line.word(0) == 0
        assert ZERO_LINE.word(3) == 0  # original untouched

    def test_immutable(self):
        with pytest.raises(AttributeError):
            ZERO_LINE.words = ()  # type: ignore[misc]

    def test_equality_and_hash(self):
        a = ZERO_LINE.with_word(1, 5)
        b = LineData([0, 5] + [0] * 14)
        assert a == b
        assert hash(a) == hash(b)
        assert a != ZERO_LINE

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            LineData([1, 2, 3])

    def test_repr_shows_nonzero_words(self):
        line = ZERO_LINE.with_word(2, 7)
        assert "2: 7" in repr(line)

    @given(
        st.integers(min_value=0, max_value=WORDS_PER_LINE - 1),
        st.integers(),
        st.integers(min_value=0, max_value=WORDS_PER_LINE - 1),
        st.integers(),
    )
    def test_with_word_order_independence_for_distinct_words(self, i, v1, j, v2):
        if i == j:
            return
        a = ZERO_LINE.with_word(i, v1).with_word(j, v2)
        b = ZERO_LINE.with_word(j, v2).with_word(i, v1)
        assert a == b
