"""Tests for the set-associative cache array."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mem.address import LINE_BYTES
from repro.mem.block import ZERO_LINE
from repro.mem.cache_array import CacheArray


def addr_of(line_no: int) -> int:
    return line_no * LINE_BYTES


class TestGeometry:
    def test_from_geometry_matches_table2_llc(self):
        """16 MB, 16-way LLC -> 16384 sets of 16 ways."""
        array = CacheArray.from_geometry(16 * 2**20, 16)
        assert array.ways == 16
        assert array.num_sets == 16 * 2**20 // 64 // 16

    def test_from_geometry_tiny_cache_clamps_ways(self):
        array = CacheArray.from_geometry(128, 16)  # only two lines
        assert array.ways == 2
        assert array.num_sets == 1

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheArray(0, 4)


class TestLookupInstall:
    def test_miss_returns_none(self):
        array = CacheArray(4, 2)
        assert array.lookup(addr_of(1)) is None

    def test_install_then_hit(self):
        array = CacheArray(4, 2)
        line, evicted = array.install(addr_of(1), state="S", data=ZERO_LINE)
        assert evicted is None
        hit = array.lookup(addr_of(1))
        assert hit is line
        assert hit.state == "S"

    def test_reinstall_updates_in_place(self):
        array = CacheArray(4, 2)
        first, _ = array.install(addr_of(1), state="S")
        second, evicted = array.install(addr_of(1), state="M", dirty=True)
        assert second is first
        assert evicted is None
        assert first.state == "M"
        assert first.dirty

    def test_set_conflict_evicts(self):
        array = CacheArray(num_sets=2, ways=1)
        array.install(addr_of(0), state="S")  # set 0
        _, evicted = array.install(addr_of(2), state="M")  # also set 0
        assert evicted is not None
        assert evicted.addr == addr_of(0)
        assert array.lookup(addr_of(0)) is None
        assert array.lookup(addr_of(2)) is not None

    def test_eviction_snapshot_is_detached(self):
        array = CacheArray(1, 1)
        array.install(addr_of(0), state="M", data=ZERO_LINE, dirty=True)
        _, evicted = array.install(addr_of(1), state="S")
        assert evicted.state == "M"
        assert evicted.dirty
        assert evicted.data == ZERO_LINE

    def test_invalidate(self):
        array = CacheArray(4, 2)
        array.install(addr_of(3), state="E")
        snapshot = array.invalidate(addr_of(3))
        assert snapshot.state == "E"
        assert array.lookup(addr_of(3)) is None
        assert array.invalidate(addr_of(3)) is None

    def test_contains_and_occupancy(self):
        array = CacheArray(4, 2)
        array.install(addr_of(1), state="S")
        array.install(addr_of(2), state="S")
        assert addr_of(1) in array
        assert addr_of(9) not in array
        assert array.occupancy() == 2

    def test_iter_valid(self):
        array = CacheArray(4, 2)
        for line_no in range(3):
            array.install(addr_of(line_no), state="S")
        addresses = sorted(line.addr for line in array.iter_valid())
        assert addresses == [addr_of(0), addr_of(1), addr_of(2)]


class TestReplacementIntegration:
    def test_lru_order_respected_within_set(self):
        from repro.mem.replacement import LRU

        array = CacheArray(num_sets=1, ways=2, repl=LRU)
        array.install(addr_of(0), state="S")
        array.install(addr_of(1), state="S")
        array.lookup(addr_of(0))  # make line 0 most recent
        _, evicted = array.install(addr_of(2), state="S")
        assert evicted.addr == addr_of(1)

    def test_choose_victim_prefers_invalid_ways(self):
        array = CacheArray(num_sets=1, ways=2)
        array.install(addr_of(0), state="S")
        victim = array.choose_victim(addr_of(1))
        assert not victim.valid

    def test_choose_victim_with_cost_function(self):
        array = CacheArray(num_sets=1, ways=3)
        array.install(addr_of(0), state="O")
        array.install(addr_of(1), state="S")
        array.install(addr_of(2), state="O")
        cost = {"S": 0, "O": 1}
        victim = array.choose_victim(addr_of(3), cost_of=lambda line: cost[line.state])
        assert victim.state == "S"

    def test_choose_victim_does_not_modify(self):
        array = CacheArray(num_sets=1, ways=1)
        array.install(addr_of(0), state="S")
        array.choose_victim(addr_of(1))
        assert array.lookup(addr_of(0)) is not None


class TestProperties:
    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_occupancy_never_exceeds_capacity(self, line_numbers):
        array = CacheArray(num_sets=4, ways=2)
        for line_no in line_numbers:
            array.install(addr_of(line_no), state="S")
        assert array.occupancy() <= len(array)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_most_recent_install_always_present(self, line_numbers):
        array = CacheArray(num_sets=4, ways=2)
        for line_no in line_numbers:
            array.install(addr_of(line_no), state="S")
        assert array.lookup(addr_of(line_numbers[-1])) is not None

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=200))
    def test_index_consistency(self, line_numbers):
        """Every valid line is found by lookup under its own address."""
        array = CacheArray(num_sets=4, ways=2)
        for line_no in line_numbers:
            array.install(addr_of(line_no), state="S")
        for line in array.iter_valid():
            assert array.lookup(line.addr, touch=False) is line
