"""Tests for the DRAM model."""

from __future__ import annotations

from repro.mem.block import ZERO_LINE
from repro.mem.main_memory import MainMemory


def make_memory(sim, clock, latency=100, gap=10):
    return MainMemory(sim, clock, latency_cycles=latency, gap_cycles=gap)


class TestFunctionalStore:
    def test_fresh_memory_reads_zero(self, sim, clock):
        memory = make_memory(sim, clock)
        assert memory.peek(0x1000) == ZERO_LINE

    def test_poke_peek_roundtrip(self, sim, clock):
        memory = make_memory(sim, clock)
        data = ZERO_LINE.with_word(0, 7)
        memory.poke(0x40, data)
        assert memory.peek(0x40) == data

    def test_peek_has_no_timing_side_effects(self, sim, clock):
        memory = make_memory(sim, clock)
        memory.peek(0)
        assert memory.stats["reads"] == 0


class TestTimedChannel:
    def test_read_latency(self, sim, clock):
        memory = make_memory(sim, clock, latency=100)
        done = []
        memory.read(0x40, lambda data: done.append(sim.now))
        sim.run()
        assert done == [100_000]

    def test_read_returns_stored_data(self, sim, clock):
        memory = make_memory(sim, clock)
        data = ZERO_LINE.with_word(1, 11)
        memory.poke(0x40, data)
        results = []
        memory.read(0x40, results.append)
        sim.run()
        assert results == [data]

    def test_write_updates_store(self, sim, clock):
        memory = make_memory(sim, clock)
        data = ZERO_LINE.with_word(2, 5)
        memory.write(0x80, data)
        sim.run()
        assert memory.peek(0x80) == data

    def test_ordered_channel_gap_delays_second_access(self, sim, clock):
        memory = make_memory(sim, clock, latency=100, gap=10)
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now))
        memory.read(0x40, lambda _d: done.append(sim.now))
        sim.run()
        assert done == [100_000, 110_000]

    def test_write_then_read_is_ordered(self, sim, clock):
        """A read issued after a write to the same line sees the new data."""
        memory = make_memory(sim, clock, latency=100, gap=10)
        data = ZERO_LINE.with_word(0, 1)
        results = []
        memory.write(0x40, data)
        memory.read(0x40, results.append)
        sim.run()
        assert results == [data]

    def test_access_counters(self, sim, clock):
        memory = make_memory(sim, clock)
        memory.read(0, lambda _d: None)
        memory.write(0x40, ZERO_LINE)
        memory.write(0x80, ZERO_LINE)
        sim.run()
        assert memory.stats["reads"] == 1
        assert memory.stats["writes"] == 2
        assert memory.accesses == 3

    def test_channel_wait_accumulates(self, sim, clock):
        memory = make_memory(sim, clock, latency=10, gap=10)
        for i in range(3):
            memory.read(i * 64, lambda _d: None)
        sim.run()
        # second waits 10 cycles, third waits 20
        assert memory.stats["channel_wait_ticks"] == 30_000

    def test_pending_work_reported_while_outstanding(self, sim, clock):
        memory = make_memory(sim, clock, latency=100)
        memory.read(0, lambda _d: None)
        assert memory.pending_work() is not None
        sim.run()
        assert memory.pending_work() is None
