"""Tests for the DRAM model."""

from __future__ import annotations

import pytest

from repro.mem.block import ZERO_LINE, LineData
from repro.mem.main_memory import MainMemory
from repro.sim.event_queue import SimulationError


def make_memory(sim, clock, latency=100, gap=10):
    return MainMemory(sim, clock, latency_cycles=latency, gap_cycles=gap)


def make_banked(sim, clock, latency=100, gap=10, banks=2, row_bytes=0,
                row_hit=None, row_miss=None, weights=None,
                queue_depth=0, scheduler="fifo"):
    return MainMemory(
        sim, clock, latency_cycles=latency, gap_cycles=gap,
        num_banks=banks, row_bytes=row_bytes,
        row_hit_latency_cycles=row_hit, row_miss_latency_cycles=row_miss,
        arb_weights=weights, queue_depth=queue_depth, scheduler=scheduler,
    )


class TestFunctionalStore:
    def test_fresh_memory_reads_zero(self, sim, clock):
        memory = make_memory(sim, clock)
        assert memory.peek(0x1000) == ZERO_LINE

    def test_poke_peek_roundtrip(self, sim, clock):
        memory = make_memory(sim, clock)
        data = ZERO_LINE.with_word(0, 7)
        memory.poke(0x40, data)
        assert memory.peek(0x40) == data

    def test_peek_has_no_timing_side_effects(self, sim, clock):
        memory = make_memory(sim, clock)
        memory.peek(0)
        assert memory.stats["reads"] == 0


class TestTimedChannel:
    def test_read_latency(self, sim, clock):
        memory = make_memory(sim, clock, latency=100)
        done = []
        memory.read(0x40, lambda data: done.append(sim.now))
        sim.run()
        assert done == [100_000]

    def test_read_returns_stored_data(self, sim, clock):
        memory = make_memory(sim, clock)
        data = ZERO_LINE.with_word(1, 11)
        memory.poke(0x40, data)
        results = []
        memory.read(0x40, results.append)
        sim.run()
        assert results == [data]

    def test_write_updates_store(self, sim, clock):
        memory = make_memory(sim, clock)
        data = ZERO_LINE.with_word(2, 5)
        memory.write(0x80, data)
        sim.run()
        assert memory.peek(0x80) == data

    def test_ordered_channel_gap_delays_second_access(self, sim, clock):
        memory = make_memory(sim, clock, latency=100, gap=10)
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now))
        memory.read(0x40, lambda _d: done.append(sim.now))
        sim.run()
        assert done == [100_000, 110_000]

    def test_write_then_read_is_ordered(self, sim, clock):
        """A read issued after a write to the same line sees the new data."""
        memory = make_memory(sim, clock, latency=100, gap=10)
        data = ZERO_LINE.with_word(0, 1)
        results = []
        memory.write(0x40, data)
        memory.read(0x40, results.append)
        sim.run()
        assert results == [data]

    def test_access_counters(self, sim, clock):
        memory = make_memory(sim, clock)
        memory.read(0, lambda _d: None)
        memory.write(0x40, ZERO_LINE)
        memory.write(0x80, ZERO_LINE)
        sim.run()
        assert memory.stats["reads"] == 1
        assert memory.stats["writes"] == 2
        assert memory.accesses == 3

    def test_channel_wait_accumulates(self, sim, clock):
        memory = make_memory(sim, clock, latency=10, gap=10)
        for i in range(3):
            memory.read(i * 64, lambda _d: None)
        sim.run()
        # second waits 10 cycles, third waits 20
        assert memory.stats["channel_wait_ticks"] == 30_000

    def test_pending_work_reported_while_outstanding(self, sim, clock):
        memory = make_memory(sim, clock, latency=100)
        memory.read(0, lambda _d: None)
        assert memory.pending_work() is not None
        sim.run()
        assert memory.pending_work() is None


class TestChannelWaitAllPaths:
    """``channel_wait_ticks`` must account every access path — read, write,
    and write_words — on the shared ordered channel."""

    def test_write_then_reads_wait(self, sim, clock):
        memory = make_memory(sim, clock, latency=10, gap=10)
        memory.write(0x0, ZERO_LINE.with_word(0, 1))
        memory.read(0x40, lambda _d: None)
        memory.read(0x80, lambda _d: None)
        sim.run()
        # reads wait 10 and 20 cycles behind the write's channel slot
        assert memory.stats["channel_wait_ticks"] == 30_000

    def test_write_words_occupies_the_channel(self, sim, clock):
        memory = make_memory(sim, clock, latency=10, gap=10)
        memory.write_words(0x0, {0: 1})
        memory.write_words(0x0, {1: 2})
        memory.read(0x0, lambda _d: None)
        sim.run()
        assert memory.stats["channel_wait_ticks"] == 30_000

    def test_mixed_burst_accounts_each_wait(self, sim, clock):
        memory = make_memory(sim, clock, latency=10, gap=10)
        memory.read(0x0, lambda _d: None)        # starts at 0
        memory.write(0x40, ZERO_LINE)            # waits 10
        memory.write_words(0x80, {0: 5})         # waits 20
        memory.read(0xC0, lambda _d: None)       # waits 30
        sim.run()
        assert memory.stats["channel_wait_ticks"] == 60_000

    def test_spaced_accesses_do_not_wait(self, sim, clock):
        memory = make_memory(sim, clock, latency=10, gap=10)
        memory.write(0x0, ZERO_LINE)
        sim.events.schedule(10_000, lambda: memory.write_words(0x0, {0: 1}))
        sim.events.schedule(20_000, lambda: memory.read(0x0, lambda _d: None))
        sim.run()
        assert memory.stats["channel_wait_ticks"] == 0


class TestWriteWordsCommitOrder:
    """The ISSUE satellite: interleaved reads / writes / partial writes to
    one line must observe program order under channel contention."""

    def test_rmw_chain_applies_in_program_order(self, sim, clock):
        memory = make_memory(sim, clock, latency=50, gap=10)
        results = []
        memory.write(0x40, LineData([10] * 16))
        memory.write_words(0x40, {0: 11})
        memory.write_words(0x40, {1: 12})
        memory.read(0x40, results.append)
        sim.run()
        # every write issued before the read is visible, word by word
        assert results[0].words[:3] == (11, 12, 10)
        assert memory.peek(0x40) == results[0]

    def test_read_captures_at_data_return(self, sim, clock):
        """The channel is non-blocking: a write whose channel slot starts
        before an earlier read's data returns is visible to that read —
        the controller merges it, exactly like the seed model."""
        memory = make_memory(sim, clock, latency=50, gap=10)
        results = []
        memory.read(0x40, results.append)       # data returns at cycle 50
        memory.write_words(0x40, {0: 99})       # slot starts at cycle 10
        sim.run()
        assert results[0].words[0] == 99

    def test_rmw_chain_program_order_in_banked_mode(self, sim, clock):
        memory = make_banked(sim, clock, latency=50, gap=10, banks=4)
        results = []
        memory.write(0x40, LineData([10] * 16))
        memory.write_words(0x40, {0: 11})
        memory.write_words(0x40, {1: 12})
        memory.read(0x40, results.append)
        sim.run()
        assert results[0].words[:2] == (11, 12)
        assert results[0].words[2] == 10

    def test_banked_order_holds_across_wrr_classes(self, sim, clock):
        """Arbitration may reorder *timing* across classes, never *values*:
        a read issued after writes from other classes sees all of them."""
        memory = make_banked(
            sim, clock, banks=2, weights={"cpu": 4, "gpu": 2, "dma": 1}
        )
        memory.set_classifier(lambda source: source)
        results = []
        memory.write(0x40, LineData([1] * 16), source="gpu")
        memory.write_words(0x40, {3: 7}, source="dma")
        memory.read(0x40, results.append, source="cpu")
        sim.run()
        assert results[0].words[3] == 7
        assert results[0].words[0] == 1


class TestBankedMemory:
    def test_bank_interleave_follows_line_address(self, sim, clock):
        memory = make_banked(sim, clock, banks=4)
        assert [memory.bank_of(i * 64) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_different_banks_proceed_in_parallel(self, sim, clock):
        memory = make_banked(sim, clock, latency=100, gap=10, banks=2)
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now))   # bank 0
        memory.read(0x40, lambda _d: done.append(sim.now))  # bank 1
        sim.run()
        assert done == [100_000, 100_000]

    def test_same_bank_serializes_on_gap(self, sim, clock):
        memory = make_banked(sim, clock, latency=100, gap=10, banks=2)
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now))   # bank 0
        memory.read(0x80, lambda _d: done.append(sim.now))  # bank 0 again
        sim.run()
        assert done == [100_000, 110_000]
        assert memory.stats["bank_wait_ticks"] == 10_000

    def test_per_bank_access_counters(self, sim, clock):
        memory = make_banked(sim, clock, banks=2)
        memory.read(0x0, lambda _d: None)
        memory.read(0x40, lambda _d: None)
        memory.read(0x80, lambda _d: None)
        sim.run()
        banks = memory.stats.child("banks")
        assert banks["b0.accesses"] == 2
        assert banks["b1.accesses"] == 1

    def test_row_hit_pays_less_than_row_miss(self, sim, clock):
        memory = make_banked(
            sim, clock, banks=1, gap=10, row_bytes=1024,
            row_hit=50, row_miss=200,
        )
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now))    # row 0: miss
        memory.read(0x40, lambda _d: done.append(sim.now))   # row 0: hit
        sim.run()
        # miss: 0 + 200 cycles; hit: granted at gap 10, +50 cycles
        assert sorted(done) == [60_000, 200_000]
        assert memory.stats["row_misses"] == 1
        assert memory.stats["row_hits"] == 1

    def test_row_change_closes_the_open_row(self, sim, clock):
        memory = make_banked(
            sim, clock, banks=1, gap=10, row_bytes=1024,
            row_hit=50, row_miss=200,
        )
        memory.read(0x0, lambda _d: None)      # row 0: miss
        memory.read(1024, lambda _d: None)     # row 1: miss (closes row 0)
        memory.read(0x40, lambda _d: None)     # row 0 again: miss
        sim.run()
        assert memory.stats["row_misses"] == 3
        assert memory.stats["row_hits"] == 0

    def test_banked_write_commits_at_issue(self, sim, clock):
        memory = make_banked(sim, clock, banks=2)
        data = ZERO_LINE.with_word(0, 3)
        memory.write(0x40, data)
        # issue-order commit: visible functionally before any event runs
        assert memory.peek(0x40) == data

    def test_write_callback_not_reentrant(self, sim, clock):
        """Write completion must come through the event queue, never
        synchronously from inside ``write`` itself."""
        memory = make_banked(sim, clock, banks=2)
        fired = []
        memory.write(0x40, ZERO_LINE, callback=lambda: fired.append(sim.now))
        assert fired == []  # nothing ran inside write()
        sim.run()
        assert len(fired) == 1

    def test_classifier_buckets_traffic(self, sim, clock):
        memory = make_banked(sim, clock, banks=2, weights={"cpu": 2, "gpu": 1})
        memory.set_classifier(lambda source: "gpu" if source.startswith("tcc") else "cpu")
        memory.read(0x0, lambda _d: None, source="tcc0")
        memory.read(0x40, lambda _d: None, source="l2.0")
        memory.write(0x80, ZERO_LINE, source="tcc1")
        sim.run()
        classes = memory.stats.child("classes")
        assert classes["gpu"] == 2
        assert classes["cpu"] == 1

    def test_unsourced_access_defaults_to_other(self, sim, clock):
        memory = make_banked(sim, clock, banks=2, weights={"cpu": 2})
        memory.set_classifier(lambda source: "cpu")
        memory.read(0x0, lambda _d: None)
        sim.run()
        assert memory.stats.child("classes")["other"] == 1

    def test_pending_work_in_banked_mode(self, sim, clock):
        memory = make_banked(sim, clock, banks=2)
        memory.read(0, lambda _d: None)
        assert memory.pending_work() is not None
        sim.run()
        assert memory.pending_work() is None

    def test_invalid_bank_count_rejected(self, sim, clock):
        with pytest.raises(SimulationError, match=">= 1 bank"):
            MainMemory(sim, clock, num_banks=0)

    def test_row_bytes_must_be_line_multiple(self, sim, clock):
        with pytest.raises(SimulationError, match="row_bytes"):
            MainMemory(sim, clock, row_bytes=100)

    def test_flat_channel_ignores_source(self, sim, clock):
        """The zero-contention path must not change when callers pass a
        source — bit-identity with the golden stats depends on it."""
        memory = make_memory(sim, clock, latency=10, gap=10)
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now), source="l2.0")
        sim.run()
        assert done == [10_000]
        assert "classes" not in memory.stats.as_dict()


class TestBoundedBanks:
    """``queue_depth`` — bounded per-bank queues with overflow accounting
    and the stall callback the directory uses for back-pressure.

    The admitted depth counts *queued* accesses only: a bank grants its
    first access immediately, so with ``queue_depth = d`` it takes
    ``d + 2`` concurrent same-bank accesses to spill one."""

    def test_overflow_counts_spills_past_the_bound(self, sim, clock):
        memory = make_banked(sim, clock, banks=2, queue_depth=2)
        for i in range(3):
            memory.read(i * 0x80, lambda _d: None)  # all bank 0
        sim.run()
        assert memory.stats.as_dict().get("queue_overflows", 0) == 0
        memory2 = make_banked(sim, clock, banks=2, queue_depth=2)
        for i in range(4):
            memory2.read(i * 0x80, lambda _d: None)
        sim.run()
        assert memory2.stats["queue_overflows"] == 1

    def test_spilled_access_still_completes(self, sim, clock):
        memory = make_banked(sim, clock, latency=100, gap=10,
                             banks=2, queue_depth=1)
        done = []
        for i in range(3):
            memory.read(i * 0x80, lambda _d: done.append(sim.now))
        sim.run()
        # grants at 0 / 10 / 20 cycles: the spilled access is promoted
        # into the bank queue as soon as the second grant frees a slot
        assert done == [100_000, 110_000, 120_000]
        assert memory.stats["queue_overflows"] == 1
        # back-pressure was asserted from the spill (t=0) to the grant
        # that drained the overflow FIFO (t=10 cycles)
        assert memory.stats["stalled_ticks"] == 10_000

    def test_stall_callback_fires_once_per_episode(self, sim, clock):
        memory = make_banked(sim, clock, latency=100, gap=10,
                             banks=2, queue_depth=1)
        events = []
        memory.set_stall_callback(events.append)
        for i in range(5):
            memory.read(i * 0x80, lambda _d: None)
        sim.run()
        # three spills, but one stall episode: True on the first spill,
        # False when the last spilled access is promoted
        assert memory.stats["queue_overflows"] == 3
        assert events == [True, False]
        assert memory.stats["stalled_ticks"] == 30_000

    def test_blocked_snapshot_reflects_the_stall_window(self, sim, clock):
        memory = make_banked(sim, clock, banks=2, queue_depth=1)
        for i in range(3):
            memory.read(i * 0x80, lambda _d: None)
        # the third access spilled at tick 0; the watchdog's starvation
        # probe must see the stall start until the overflow drains
        assert memory.blocked_snapshot() == {"overflow": 0}
        assert "spilled" in memory.describe_queues()
        sim.run()
        assert memory.blocked_snapshot() == {}
        assert memory.describe_queues() == ""

    def test_bounded_queues_need_the_banked_controller(self, sim, clock):
        with pytest.raises(SimulationError, match="banked controller"):
            MainMemory(sim, clock, queue_depth=4)

    def test_negative_queue_depth_rejected(self, sim, clock):
        with pytest.raises(SimulationError, match="queue_depth"):
            MainMemory(sim, clock, num_banks=2, queue_depth=-1)


class TestFrFcfsScheduler:
    """``scheduler="frfcfs"`` — first-ready FCFS bank scheduling on top of
    the open-row model."""

    def make(self, sim, clock, scheduler, queue_depth=0):
        return make_banked(
            sim, clock, gap=10, banks=1, row_bytes=1024,
            row_hit=50, row_miss=200, scheduler=scheduler,
            queue_depth=queue_depth,
        )

    def test_row_hit_is_served_before_an_older_miss(self, sim, clock):
        memory = self.make(sim, clock, "frfcfs")
        done = []
        memory.read(0x0, lambda _d: done.append(("a", sim.now)))    # row 0
        memory.read(1024, lambda _d: done.append(("b", sim.now)))   # row 1
        memory.read(0x40, lambda _d: done.append(("c", sim.now)))   # row 0
        sim.run()
        # FR-FCFS promotes c past b while row 0 is open: a misses (200),
        # c hits (granted at gap 10, +50), b misses last (granted 20, +200)
        assert sorted(done, key=lambda e: e[1]) == [
            ("c", 60_000), ("a", 200_000), ("b", 220_000)
        ]
        assert memory.stats["row_hits"] == 1
        assert memory.stats["row_misses"] == 2
        assert memory._banks[0].fr.promotions == 1

    def test_fifo_services_the_same_pattern_in_order(self, sim, clock):
        memory = self.make(sim, clock, "fifo")
        done = []
        memory.read(0x0, lambda _d: done.append(sim.now))
        memory.read(1024, lambda _d: done.append(sim.now))
        memory.read(0x40, lambda _d: done.append(sim.now))
        sim.run()
        # in arrival order every access changes the open row: all misses
        assert memory.stats["row_misses"] == 3
        assert memory.stats["row_hits"] == 0

    def test_promoted_overflow_access_joins_the_frfcfs_queue(self, sim, clock):
        memory = self.make(sim, clock, "frfcfs", queue_depth=1)
        done = []
        for i in range(3):
            memory.read(i * 0x40, lambda _d: done.append(sim.now))  # row 0
        sim.run()
        assert len(done) == 3
        assert memory.stats["queue_overflows"] == 1
        assert memory.stats["row_hits"] == 2

    def test_frfcfs_requires_the_open_row_model(self, sim, clock):
        with pytest.raises(SimulationError, match="open-row"):
            MainMemory(sim, clock, num_banks=2, scheduler="frfcfs")

    def test_unknown_scheduler_rejected(self, sim, clock):
        with pytest.raises(SimulationError, match="unknown memory scheduler"):
            MainMemory(sim, clock, num_banks=2, scheduler="lifo")
