"""Tests for replacement policies."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.replacement import LRU, StateAwarePLRU, TreePLRU, policy_factory


class TestLRU:
    def test_initial_victim_is_way_zero(self):
        assert LRU(4).victim() == 0

    def test_victim_is_least_recently_touched(self):
        policy = LRU(4)
        for way in (0, 1, 2, 3, 0, 1):
            policy.touch(way)
        assert policy.victim() == 2

    def test_single_way(self):
        policy = LRU(1)
        policy.touch(0)
        assert policy.victim() == 0


class TestTreePLRU:
    def test_untouched_tree_victimizes_way_zero(self):
        assert TreePLRU(4).victim() == 0

    def test_touching_a_way_protects_it(self):
        policy = TreePLRU(4)
        policy.touch(0)
        assert policy.victim() != 0

    def test_round_robin_under_cyclic_touches(self):
        """Touching every way in order leaves the first as PLRU victim."""
        policy = TreePLRU(8)
        for way in range(8):
            policy.touch(way)
        assert policy.victim() == 0

    def test_two_way_behaves_like_lru(self):
        policy = TreePLRU(2)
        policy.touch(0)
        assert policy.victim() == 1
        policy.touch(1)
        assert policy.victim() == 0

    @pytest.mark.parametrize("ways", [2, 3, 4, 6, 8, 16, 32])
    def test_victim_always_in_range(self, ways):
        policy = TreePLRU(ways)
        for way in range(ways):
            policy.touch(way)
            assert 0 <= policy.victim() < ways

    @given(st.integers(min_value=1, max_value=16), st.data())
    def test_victim_never_most_recent_when_multiple_ways(self, ways, data):
        policy = TreePLRU(ways)
        touches = data.draw(
            st.lists(st.integers(min_value=0, max_value=ways - 1), max_size=50)
        )
        for way in touches:
            policy.touch(way)
        victim = policy.victim()
        assert 0 <= victim < ways
        if ways > 1 and touches:
            assert victim != touches[-1]


class TestStateAwarePLRU:
    def test_prefers_cheapest_cost(self):
        costs = {0: 5, 1: 1, 2: 5, 3: 5}
        policy = StateAwarePLRU(4, cost_of=lambda way: costs[way])
        assert policy.victim() == 1

    def test_ties_broken_by_plru(self):
        policy = StateAwarePLRU(4, cost_of=lambda way: 0)
        policy.touch(0)
        victim = policy.victim()
        assert victim != 0

    def test_no_cost_function_falls_back_to_plru(self):
        policy = StateAwarePLRU(4)
        assert policy.victim() == 0


class TestPolicyFactory:
    def test_known_names(self):
        assert policy_factory("lru") is LRU
        assert policy_factory("tree_plru") is TreePLRU

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown replacement policy"):
            policy_factory("random")


class RefTreePLRU:
    """Independent reference model of Tree-PLRU.

    Implemented recursively over an explicit node map (vs the production
    iterative walk over a flat bit array) so the differential test compares
    two genuinely different encodings of the same policy.
    """

    def __init__(self, ways: int) -> None:
        self.ways = ways
        self.leaves = 1
        while self.leaves < ways:
            self.leaves *= 2
        self.lru_side: dict[tuple[int, int], str] = {}  # (lo, hi) -> "left"/"right"

    def _touch(self, lo: int, hi: int, way: int) -> None:
        if hi - lo == 1:
            return
        mid = (lo + hi) // 2
        if way < mid:
            self.lru_side[(lo, hi)] = "right"
            self._touch(lo, mid, way)
        else:
            self.lru_side[(lo, hi)] = "left"
            self._touch(mid, hi, way)

    def touch(self, way: int) -> None:
        self._touch(0, self.leaves, way)

    def _walk(self, lo: int, hi: int) -> int:
        if hi - lo == 1:
            return lo
        mid = (lo + hi) // 2
        if self.lru_side.get((lo, hi), "left") == "left":
            return self._walk(lo, mid)
        return self._walk(mid, hi)

    def victim(self) -> int:
        for _attempt in range(self.leaves):
            leaf = self._walk(0, self.leaves)
            if leaf < self.ways:
                return leaf
            self.touch(leaf)  # padding leaf: mark recent, retry
        raise RuntimeError("reference model failed to find a victim")


class TestTreePLRUDifferential:
    """Randomized differential test against the reference model, covering
    power-of-two and non-power-of-two associativities."""

    @pytest.mark.parametrize("ways", [2, 3, 4, 5, 6, 7, 8, 12, 16])
    def test_matches_reference_on_random_sequences(self, ways):
        import random

        rng = random.Random(1234 + ways)
        for _trial in range(20):
            model = TreePLRU(ways)
            reference = RefTreePLRU(ways)
            for _step in range(100):
                if rng.random() < 0.7:
                    way = rng.randrange(ways)
                    model.touch(way)
                    reference.touch(way)
                else:
                    # victim() may mutate padding state; call on both.
                    assert model.victim() == reference.victim()
            assert model.victim() == reference.victim()

    @given(
        st.integers(min_value=1, max_value=16),
        st.lists(st.tuples(st.booleans(), st.integers(min_value=0, max_value=15)),
                 max_size=60),
    )
    def test_matches_reference_property(self, ways, operations):
        model = TreePLRU(ways)
        reference = RefTreePLRU(ways)
        for is_touch, raw_way in operations:
            if is_touch:
                way = raw_way % ways
                model.touch(way)
                reference.touch(way)
            else:
                assert model.victim() == reference.victim()


class TestPreferredOrder:
    def test_lru_order_is_exact_recency(self):
        from repro.mem.replacement import preferred_order

        policy = LRU(4)
        for way in (2, 0, 3, 1):
            policy.touch(way)
        assert preferred_order(policy) == [2, 0, 3, 1]

    def test_regression_not_just_current_victim_first(self):
        """The old implementation only pulled the current victim to the
        front, leaving the rest in input order."""
        from repro.mem.replacement import preferred_order

        policy = LRU(4)
        for way in (3, 2, 1, 0):
            policy.touch(way)
        # true preference is reverse touch order; old code returned [3,1,2,0]
        # for input [1, 2, 3, 0] (victim first, remainder untouched).
        assert preferred_order(policy, [1, 2, 3, 0]) == [3, 2, 1, 0]

    def test_tree_plru_first_is_victim_and_full_permutation(self):
        from repro.mem.replacement import preferred_order

        policy = TreePLRU(8)
        for way in (0, 3, 5, 1):
            policy.touch(way)
        order = preferred_order(policy)
        assert order[0] == policy.victim()
        assert sorted(order) == list(range(8))
        assert order.index(1) > order.index(2)  # recently touched ranks later

    def test_does_not_disturb_live_state(self):
        from repro.mem.replacement import preferred_order

        policy = TreePLRU(4)
        policy.touch(2)
        before = list(policy._bits)
        preferred_order(policy)
        assert policy._bits == before

    def test_subset_filtering(self):
        from repro.mem.replacement import preferred_order

        policy = LRU(4)
        for way in (1, 0, 3, 2):
            policy.touch(way)
        assert preferred_order(policy, [3, 0]) == [0, 3]

    def test_out_of_range_way_rejected(self):
        from repro.mem.replacement import preferred_order

        with pytest.raises(ValueError, match="out of range"):
            preferred_order(LRU(4), [0, 4])

    def test_state_aware_ranking_orders_by_cost_then_recency(self):
        from repro.mem.replacement import preferred_order

        costs = {0: 1, 1: 0, 2: 1, 3: 0}
        policy = StateAwarePLRU(4, cost_of=lambda way: costs[way])
        order = preferred_order(policy)
        assert sorted(order) == [0, 1, 2, 3]
        assert {order[0], order[1]} == {1, 3}  # cheap ways first
        assert {order[2], order[3]} == {0, 2}


class TestStateAwareFallback:
    def test_fallback_uses_plru_preference_not_lowest_index(self):
        """Regression: when the raw PLRU choice is not a minimum-cost
        candidate, the victim must be the PLRU-preferred candidate, not
        simply the lowest way index."""
        policy = StateAwarePLRU(4, cost_of=lambda way: 1 if way == 0 else 0)
        policy.touch(3)
        # raw PLRU choice is way 0 (expensive); PLRU preference among the
        # cheap candidates {1, 2, 3} is way 2, but the old code returned 1.
        assert policy.victim() == 2

    def test_fallback_is_stateless(self):
        policy = StateAwarePLRU(4, cost_of=lambda way: 1 if way == 0 else 0)
        policy.touch(3)
        assert policy.victim() == policy.victim()

    def test_fallback_matches_preferred_order(self):
        import random

        from repro.mem.replacement import preferred_order

        rng = random.Random(99)
        for _trial in range(25):
            ways = rng.choice([4, 6, 8])
            expensive = set(rng.sample(range(ways), rng.randrange(1, ways - 1)))
            policy = StateAwarePLRU(
                ways, cost_of=lambda way, e=expensive: 1 if way in e else 0
            )
            for _touch in range(rng.randrange(0, 12)):
                policy.touch(rng.randrange(ways))
            victim = policy.victim()
            assert victim not in expensive
            assert victim == preferred_order(
                policy, [w for w in range(ways) if w not in expensive]
            )[0]


class TestStateAwareFactoryRegistration:
    def test_registered_in_policy_factory(self):
        assert policy_factory("state_aware_plru") is StateAwarePLRU

    def test_constructible_through_factory(self):
        policy = policy_factory("state_aware_plru")(8)
        assert isinstance(policy, StateAwarePLRU)
        assert policy.victim() == 0
